//! Declarative attack campaigns: the composition layer of the scenario
//! engine.
//!
//! The paper evaluates one attack at a time; the scenario engine runs
//! **several concurrent campaigns** against one organization — different
//! attack families, staggered start/stop windows, shaped intensities,
//! different target users. This module is the attack half of that
//! declaration: a [`CampaignSpec`] names *which* attack runs
//! ([`AttackKind`]), *when* (`start_day..=end_day`), *how hard over time*
//! ([`Intensity`]), and *at whom* (`targets`), without holding any
//! generator state.
//!
//! The whole §3.1 taxonomy is declaratively reachable:
//!
//! * [`AttackKind::Dictionary`] — Causative Availability Indiscriminate
//!   (§3.2, the lexicon floods);
//! * [`AttackKind::Focused`] — Causative Availability Targeted (§3.3):
//!   the target email is named *declaratively* by a [`MessageRef`]
//!   ("user 3's k-th ham"), which resolves deterministically against the
//!   pure-counter corpus;
//! * [`AttackKind::HamChaff`] — Causative Integrity Targeted (§2.2's
//!   closing remark): innocuous-looking chaff carrying a future campaign's
//!   vocabulary.
//!
//! Because the focused and chaff attacks need per-victim artifacts (the
//! target's tokens, a donor spam's headers, the victim's observable
//! vocabulary), generators can no longer be built context-free:
//! [`AttackKind::build`] takes a [`CampaignEnv`] lending corpus and seed
//! access, and fails with a [`CampaignError`] when a declaration does not
//! resolve (unknown user, out-of-range message, unbounded ramp, …).
//!
//! Composition semantics (enforced by `sb-mailflow`'s day plan, validated
//! here): campaigns are independent schedules — on day `d`, every campaign
//! whose window covers `d` contributes exactly
//! [`CampaignSpec::volume_on`]`(d)` messages, and the contributions
//! interleave with organic traffic in the day's arrival permutation.
//! Overlap needs no special casing; it is just two campaigns with
//! intersecting windows ([`CampaignSpec::overlaps`]).

use crate::attack::AttackGenerator;
use crate::dictionary::{DictionaryAttack, DictionaryKind};
use crate::focused::FocusedAttack;
use crate::ham_attack::HamLabelAttack;
use sb_corpus::{EmailGenerator, Stratum};
use sb_email::Email;
use sb_stats::rng::SeedTree;
use serde::{Deserialize, Serialize};

/// A campaign's send schedule: how many messages it contributes on each
/// day of its active window.
///
/// Offsets are 0-based days since the campaign's `start_day`. Every
/// schedule exposes its volumes two ways — per-day
/// ([`Intensity::volume_on`]) and cumulatively in closed form
/// ([`Intensity::cumulative`]) — and the two are exactly consistent:
/// summing `volume_on` over `0..k` equals `cumulative(k)` for every `k`
/// (property-tested in `tests/prop_attacks.rs`). The mailflow coordinator
/// materializes volumes once per day from this schedule, so weekly reports
/// stay bit-identical across shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intensity {
    /// The same volume every active day (the paper's shape).
    Constant {
        /// Messages per active day.
        per_day: u32,
    },
    /// A linear ramp from `from` (first window day) to `to` (last window
    /// day), rounded by error diffusion so the window total is the exact
    /// closed form `⌊len·(from+to)/2⌋`-style trapezoid. Requires a finite
    /// window (`end_day` set): an open-ended ramp has no last day to reach
    /// `to` on, and [`Intensity::validate`] rejects it.
    LinearRamp {
        /// Volume on the window's first day.
        from: u32,
        /// Volume on the window's last day.
        to: u32,
    },
    /// Burst trains: each `period`-day cycle sends `per_day` messages on
    /// its first `on_days` days and nothing on the rest.
    Bursts {
        /// Cycle length in days (>= 1).
        period: u32,
        /// Sending days at the head of each cycle (1..=period).
        on_days: u32,
        /// Messages per sending day.
        per_day: u32,
    },
}

/// Window length in days of an inclusive `start_day..=end_day` campaign
/// window, when finite.
pub fn window_len(start_day: u32, end_day: Option<u32>) -> Option<u32> {
    end_day.map(|end| end.saturating_sub(start_day).saturating_add(1))
}

/// Cumulative ramp volume: the sum of the first `k` per-day volumes of a
/// `from -> to` ramp over a `window`-day window, in closed form.
///
/// The ideal (real-valued) volume on offset `t` is
/// `from + (to-from)·t/(window-1)`; its ideal prefix sum is
/// `k·from + (to-from)·k(k-1)/2/(window-1)`. Taking the floor of that
/// rational *defines* the integer schedule: day `t` sends
/// `cum(t+1) − cum(t)`, so rounding error diffuses across days and every
/// prefix sum — including the window total — is itself closed-form.
fn ramp_cum(from: u32, to: u32, window: u32, k: u32) -> u64 {
    debug_assert!(k <= window);
    if window <= 1 {
        return u64::from(from) * u64::from(k);
    }
    let diff = i128::from(to) - i128::from(from);
    let tri = i128::from(k) * (i128::from(k) - 1) / 2;
    let base = i128::from(from) * i128::from(k);
    // div_euclid floors for negative diffs (downward ramps) too.
    let extra = (diff * tri).div_euclid(i128::from(window) - 1);
    (base + extra) as u64
}

impl Intensity {
    /// Constant shorthand.
    pub const fn constant(per_day: u32) -> Self {
        Intensity::Constant { per_day }
    }

    /// Messages sent on window offset `t` (0-based days since `start_day`).
    ///
    /// `window` is the campaign's window length in days when it is finite.
    /// A [`Intensity::LinearRamp`] without a window is invalid (see
    /// [`Intensity::validate`]); `volume_on` keeps direct misuse inert by
    /// holding the ramp at `from`.
    pub fn volume_on(&self, t: u32, window: Option<u32>) -> u32 {
        match *self {
            Intensity::Constant { per_day } => per_day,
            Intensity::LinearRamp { from, to } => match window {
                Some(len) if t < len => {
                    (ramp_cum(from, to, len, t + 1) - ramp_cum(from, to, len, t)) as u32
                }
                _ => from,
            },
            Intensity::Bursts {
                period,
                on_days,
                per_day,
            } => {
                if period > 0 && t % period < on_days {
                    per_day
                } else {
                    0
                }
            }
        }
    }

    /// Closed-form sum of [`Intensity::volume_on`] over offsets `0..k`.
    ///
    /// The identity `cumulative(k) == Σ volume_on(t)` holds exactly for
    /// every `k <= window` (and every `k` for window-free schedules) — the
    /// invariant the intensity property test locks.
    pub fn cumulative(&self, k: u32, window: Option<u32>) -> u64 {
        match *self {
            Intensity::Constant { per_day } => u64::from(per_day) * u64::from(k),
            Intensity::LinearRamp { from, to } => match window {
                Some(len) if k <= len => ramp_cum(from, to, len, k),
                _ => u64::from(from) * u64::from(k),
            },
            Intensity::Bursts {
                period,
                on_days,
                per_day,
            } => {
                if period == 0 {
                    return 0;
                }
                let full = u64::from(k / period);
                let rem = k % period;
                (full * u64::from(on_days) + u64::from(rem.min(on_days))) * u64::from(per_day)
            }
        }
    }

    /// Messages sent on 1-based `day` of a campaign windowed
    /// `start_day..=end_day`: 0 outside the inclusive window, the
    /// schedule's volume inside it. The single implementation both the
    /// declarative [`CampaignSpec`] and `sb_mailflow`'s executed plan
    /// delegate to, so validation and execution can never disagree on the
    /// window arithmetic.
    pub fn volume_on_day(&self, start_day: u32, end_day: Option<u32>, day: u32) -> u32 {
        if day < start_day || end_day.is_some_and(|end| day > end) {
            return 0;
        }
        self.volume_on(day - start_day, window_len(start_day, end_day))
    }

    /// Structural validation: burst shapes must be well-formed and ramps
    /// need a finite window. Zero-volume schedules are rejected at the
    /// campaign level ([`CampaignSpec::validate`]), where the effective
    /// window is known.
    pub fn validate(&self, window: Option<u32>) -> Result<(), CampaignError> {
        match *self {
            Intensity::Constant { .. } => Ok(()),
            Intensity::LinearRamp { from, to } => {
                if window.is_none() {
                    Err(CampaignError::UnboundedRamp { from, to })
                } else {
                    Ok(())
                }
            }
            Intensity::Bursts {
                period, on_days, ..
            } => {
                if period == 0 || on_days == 0 || on_days > period {
                    Err(CampaignError::MalformedBursts { period, on_days })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Parse the scenario-grammar form ([`Intensity`]'s `Display` is the
    /// inverse):
    ///
    /// * `constant:<n>` — `n` messages every active day;
    /// * `ramp:<from>-><to>` — linear ramp across the campaign window;
    /// * `bursts:period=<p>,on=<d>,per_day=<n>` — burst trains.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let parse_u32 = |v: &str, what: &str| {
            v.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad {what} {v:?}: {e}"))
        };
        if let Some(n) = s.strip_prefix("constant:") {
            return Ok(Intensity::Constant {
                per_day: parse_u32(n, "constant volume")?,
            });
        }
        if let Some(ramp) = s.strip_prefix("ramp:") {
            let (from, to) = ramp
                .split_once("->")
                .ok_or_else(|| format!("ramp must be ramp:<from>-><to>, got {s:?}"))?;
            return Ok(Intensity::LinearRamp {
                from: parse_u32(from, "ramp start")?,
                to: parse_u32(to, "ramp end")?,
            });
        }
        if let Some(b) = s.strip_prefix("bursts:") {
            let (mut period, mut on_days, mut per_day) = (None, None, None);
            for part in b.split(',') {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("bad bursts component {part:?} (expected key=value)"))?;
                match key.trim() {
                    "period" => period = Some(parse_u32(value, "bursts period")?),
                    "on" => on_days = Some(parse_u32(value, "bursts on-days")?),
                    "per_day" => per_day = Some(parse_u32(value, "bursts volume")?),
                    other => return Err(format!("unknown bursts key {other:?}")),
                }
            }
            return Ok(Intensity::Bursts {
                period: period.ok_or("bursts is missing period=…")?,
                on_days: on_days.ok_or("bursts is missing on=…")?,
                per_day: per_day.ok_or("bursts is missing per_day=…")?,
            });
        }
        Err(format!(
            "unknown intensity {s:?} (expected constant:<n> | ramp:<from>-><to> | \
             bursts:period=<p>,on=<d>,per_day=<n>)"
        ))
    }
}

impl std::fmt::Display for Intensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Intensity::Constant { per_day } => write!(f, "constant:{per_day}"),
            Intensity::LinearRamp { from, to } => write!(f, "ramp:{from}->{to}"),
            Intensity::Bursts {
                period,
                on_days,
                per_day,
            } => write!(f, "bursts:period={period},on={on_days},per_day={per_day}"),
        }
    }
}

/// A declarative name for one corpus message an organization will receive:
/// user `user`'s `nth_ham`-th legitimate email (both 0-based), counting
/// from simulation day 1 in arrival order.
///
/// Resolution is deterministic because corpus messages are pure in their
/// global counter and the mailflow day plan assigns each user a fixed
/// block of each day's ham counters — [`CampaignEnv::resolve_ham`] maps
/// `(user, nth_ham)` to exactly the email the simulation will deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRef {
    /// Target user as an index into the organization's user list.
    pub user: usize,
    /// Which of that user's ham messages (0-based, from day 1).
    pub nth_ham: u32,
}

impl std::fmt::Display for MessageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user:{} ham:{}", self.user, self.nth_ham)
    }
}

/// Why a campaign declaration failed to validate or build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// `start_day` is 0 (days are 1-based).
    StartDayZero,
    /// `end_day` precedes `start_day`.
    EmptyWindow {
        /// Declared first day.
        start_day: u32,
        /// Declared (earlier) last day.
        end_day: u32,
    },
    /// The campaign's window starts after the simulation ends.
    NeverActive {
        /// Declared first day.
        start_day: u32,
        /// Simulated days.
        days: u32,
    },
    /// The schedule sends nothing over the campaign's whole active window.
    ZeroVolume {
        /// The offending schedule.
        intensity: Intensity,
    },
    /// A linear ramp on an open-ended window (no last day to reach `to`).
    UnboundedRamp {
        /// Ramp start volume.
        from: u32,
        /// Ramp end volume.
        to: u32,
    },
    /// Burst shape out of range (`period == 0`, `on_days == 0`, or
    /// `on_days > period`).
    MalformedBursts {
        /// Declared cycle length.
        period: u32,
        /// Declared on-days.
        on_days: u32,
    },
    /// The target list is empty (omit it to target everyone).
    EmptyTargets,
    /// A target user index is out of range.
    TargetOutOfRange {
        /// Offending user index.
        user: usize,
        /// Organization size.
        n_users: usize,
    },
    /// A [`MessageRef`] names a user the organization does not have.
    RefUserOutOfRange {
        /// Offending user index.
        user: usize,
        /// Organization size.
        n_users: usize,
    },
    /// A [`MessageRef`] names a user who receives no ham at all.
    RefUserHasNoHam {
        /// Offending user index.
        user: usize,
    },
    /// A [`MessageRef`]'s message index lies beyond the simulation.
    RefOutOfRange {
        /// The unresolvable reference.
        target: MessageRef,
        /// Ham messages the user receives over the whole simulation.
        available: u64,
    },
    /// A ham-chaff campaign asks for more distinct vocabulary words than
    /// the spam stratum holds (the build would silently duplicate words,
    /// misrepresenting the declared vocabulary size).
    ChaffVocabularyTooLarge {
        /// Declared vocabulary size.
        requested: u32,
        /// Distinct words available.
        available: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::StartDayZero => {
                write!(f, "campaign start_day is 1-based; 0 is invalid")
            }
            CampaignError::EmptyWindow { start_day, end_day } => write!(
                f,
                "campaign window is empty: end_day {end_day} < start_day {start_day}"
            ),
            CampaignError::NeverActive { start_day, days } => write!(
                f,
                "campaign starts on day {start_day}, after the simulation ends (days = {days})"
            ),
            CampaignError::ZeroVolume { intensity } => write!(
                f,
                "schedule {intensity} sends nothing over the campaign's whole active window"
            ),
            CampaignError::UnboundedRamp { from, to } => write!(
                f,
                "ramp:{from}->{to} needs a finite window: set end_day so the ramp has a last day"
            ),
            CampaignError::MalformedBursts { period, on_days } => write!(
                f,
                "bursts shape out of range: period={period}, on={on_days} \
                 (need period >= 1 and 1 <= on <= period)"
            ),
            CampaignError::EmptyTargets => {
                write!(f, "campaign target list is empty (omit it to target everyone)")
            }
            CampaignError::TargetOutOfRange { user, n_users } => write!(
                f,
                "campaign targets user {user}, but the organization has only {n_users} users"
            ),
            CampaignError::RefUserOutOfRange { user, n_users } => write!(
                f,
                "message ref names user {user}, but the organization has only {n_users} users"
            ),
            CampaignError::RefUserHasNoHam { user } => write!(
                f,
                "message ref names a ham of user {user}, who receives no ham traffic"
            ),
            CampaignError::RefOutOfRange { target, available } => write!(
                f,
                "message ref {target} is out of range: the user receives only \
                 {available} ham messages over the whole simulation"
            ),
            CampaignError::ChaffVocabularyTooLarge { requested, available } => write!(
                f,
                "ham-chaff vocabulary of {requested} words exceeds the {available} \
                 distinct spam-stratum words available"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The organization facts campaign validation resolves against: how many
/// users there are, how long the simulation runs, and each user's daily
/// ham rate (the [`MessageRef`] index space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignShape {
    /// Number of users in the organization.
    pub n_users: usize,
    /// Days the simulation runs.
    pub days: u32,
    /// Per-user daily ham volumes, one entry per user.
    pub ham_rates: Vec<u32>,
}

impl CampaignShape {
    /// Validate a [`MessageRef`] against this shape.
    pub fn check_ref(&self, r: MessageRef) -> Result<(), CampaignError> {
        if r.user >= self.n_users {
            return Err(CampaignError::RefUserOutOfRange {
                user: r.user,
                n_users: self.n_users,
            });
        }
        let rate = u64::from(self.ham_rates.get(r.user).copied().unwrap_or(0));
        if rate == 0 {
            return Err(CampaignError::RefUserHasNoHam { user: r.user });
        }
        let available = rate * u64::from(self.days);
        if u64::from(r.nth_ham) >= available {
            return Err(CampaignError::RefOutOfRange { target: r, available });
        }
        Ok(())
    }
}

/// The context an [`AttackKind`] builds its generator against: the
/// organization shape, the pure-counter corpus generator, the corpus
/// counters the bootstrap consumed, and the master seed (for deterministic
/// donor/camouflage choices).
///
/// `sb-mailflow`'s `OrgConfig::campaign_env` derives one of these from an
/// organization configuration; the resolution arithmetic here mirrors that
/// crate's day-plan composition exactly (locked by a mailflow test that
/// delivers a resolved target into the named user's mailbox).
pub struct CampaignEnv<'a> {
    /// Organization shape ([`MessageRef`] validation).
    pub shape: CampaignShape,
    /// The organization's indexed corpus generator.
    pub generator: &'a EmailGenerator,
    /// First post-bootstrap ham counter (day traffic starts here).
    pub ham0: u64,
    /// First post-bootstrap spam counter.
    pub spam0: u64,
    /// The organization's master seed (donor and camouflage sampling
    /// derive from it, never from shared RNG state).
    pub seed: u64,
}

impl CampaignEnv<'_> {
    /// Resolve a [`MessageRef`] to the exact email the simulation will
    /// deliver.
    ///
    /// Mirrors the mailflow day plan: day `d`'s ham counters start at
    /// `ham0 + (d-1)·Σrates`, and within a day user `u` owns the block at
    /// offset `Σ rates[..u]`. User `u`'s `k`-th ham therefore falls on day
    /// `k / rates[u] + 1`, slot `k % rates[u]` of `u`'s block.
    pub fn resolve_ham(&self, r: MessageRef) -> Result<Email, CampaignError> {
        self.shape.check_ref(r)?;
        let rate = u64::from(self.shape.ham_rates[r.user]);
        let total_ham: u64 = self.shape.ham_rates.iter().map(|&h| u64::from(h)).sum();
        let prefix: u64 = self.shape.ham_rates[..r.user]
            .iter()
            .map(|&h| u64::from(h))
            .sum();
        let day = u64::from(r.nth_ham) / rate; // 0-based
        let slot = u64::from(r.nth_ham) % rate;
        Ok(self.generator.ham(self.ham0 + day * total_ham + prefix + slot))
    }

    /// A deterministic header-donor spam (§4.1: focused-attack headers are
    /// copied from an existing spam). Drawn from counters beyond every
    /// index the simulation itself consumes, at an offset derived from the
    /// master seed and `salt` — pure, so every shard and every rebuild of
    /// the same campaign picks the identical donor.
    pub fn donor_spam(&self, salt: u64) -> Email {
        // Far beyond any counter the bootstrap or day traffic can reach
        // (they are bounded by bootstrap + days × daily volume), so the
        // donor is always a fresh spam the pool has never trained on.
        let beyond = self.spam0 + (1 << 40);
        let k = SeedTree::new(self.seed)
            .child("campaign-donor")
            .index(salt)
            .rng()
            .next_below(1 << 32);
        self.generator.spam(beyond + k)
    }
}

/// A buildable attack family, parseable from scenario files. Covers the
/// full §3.1 taxonomy (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// A dictionary attack with the given lexicon (§3.2).
    Dictionary(DictionaryKind),
    /// The focused attack (§3.3) against a declaratively named ham.
    Focused {
        /// Which future ham the attacker targets.
        target: MessageRef,
        /// Token-guessing probability as a percentage (§4.3's `p`;
        /// stored in percent so specs stay `Eq` and round-trip exactly).
        guess_pct: u8,
    },
    /// Ham-looking chaff laundering a future campaign's vocabulary
    /// (§2.2's closing remark, the Causative Integrity Targeted corner).
    HamChaff {
        /// Size of the laundered campaign vocabulary.
        campaign_words: u32,
    },
}

/// Default focused-attack guessing probability (the paper's Figure 3
/// operating point, p = 0.5).
const DEFAULT_GUESS_PCT: u8 = 50;

/// Camouflage words sampled into each chaff email (matches the ham-attack
/// experiment's full-scale default).
const CHAFF_CAMOUFLAGE_PER_EMAIL: usize = 40;

/// Camouflage pool size the chaff samples from.
const CHAFF_CAMOUFLAGE_POOL: usize = 400;

impl AttackKind {
    /// Parse a spec-file attack name:
    ///
    /// * `optimal` — the §3.4 whole-vocabulary attack;
    /// * `aspell` / `aspell-half` — the English-dictionary variants;
    /// * `usenet:K` — the top-`K` Usenet ranking (e.g. `usenet:25000`);
    /// * `focused user:<u> ham:<k> [guess:<pct>]` — the §3.3 focused
    ///   attack on user `u`'s `k`-th ham (0-based; `guess` defaults to
    ///   50%);
    /// * `ham-chaff:<n>` — §2.2's ham-shift chaff laundering an `n`-word
    ///   campaign vocabulary.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if let Some(k) = s.strip_prefix("usenet:") {
            let k: usize = k
                .trim()
                .parse()
                .map_err(|e| format!("bad usenet truncation {k:?}: {e}"))?;
            if k == 0 {
                return Err("usenet truncation must be >= 1".into());
            }
            return Ok(AttackKind::Dictionary(DictionaryKind::UsenetTop(k)));
        }
        if let Some(n) = s.strip_prefix("ham-chaff:") {
            let n: u32 = n
                .trim()
                .parse()
                .map_err(|e| format!("bad ham-chaff vocabulary size {n:?}: {e}"))?;
            if n == 0 {
                return Err("ham-chaff vocabulary must be >= 1 word".into());
            }
            let available = Stratum::SpamSpecific.len();
            if n as usize > available {
                return Err(format!(
                    "ham-chaff vocabulary of {n} words exceeds the {available} \
                     distinct spam-stratum words available"
                ));
            }
            return Ok(AttackKind::HamChaff { campaign_words: n });
        }
        // Keyword must stand alone: `focuseduser:1` or a future
        // `focused-x` kind must fall through to the unknown-kind error,
        // not be swallowed by the key:value loop.
        if s == "focused" || s.starts_with("focused ") {
            let rest = &s["focused".len()..];
            let (mut user, mut nth_ham, mut guess_pct) = (None, None, DEFAULT_GUESS_PCT);
            for part in rest.split_whitespace() {
                let (key, value) = part
                    .split_once(':')
                    .ok_or_else(|| format!("bad focused component {part:?} (expected key:value)"))?;
                match key {
                    "user" => {
                        user = Some(value.parse::<usize>().map_err(|e| {
                            format!("bad focused target user {value:?}: {e}")
                        })?)
                    }
                    "ham" => {
                        nth_ham = Some(value.parse::<u32>().map_err(|e| {
                            format!("bad focused ham index {value:?}: {e}")
                        })?)
                    }
                    "guess" => {
                        guess_pct = value
                            .parse::<u8>()
                            .ok()
                            .filter(|p| *p <= 100)
                            .ok_or_else(|| {
                                format!("bad focused guess percentage {value:?} (expected 0..=100)")
                            })?
                    }
                    other => return Err(format!("unknown focused key {other:?}")),
                }
            }
            return Ok(AttackKind::Focused {
                target: MessageRef {
                    user: user.ok_or("focused attack is missing user:<u>")?,
                    nth_ham: nth_ham.ok_or("focused attack is missing ham:<k>")?,
                },
                guess_pct,
            });
        }
        match s {
            "optimal" => Ok(AttackKind::Dictionary(DictionaryKind::Optimal)),
            "aspell" => Ok(AttackKind::Dictionary(DictionaryKind::Aspell)),
            "aspell-half" => Ok(AttackKind::Dictionary(DictionaryKind::AspellHalf)),
            other => Err(format!(
                "unknown attack kind {other:?} (expected optimal | aspell | aspell-half | \
                 usenet:K | focused user:<u> ham:<k> | ham-chaff:<n>)"
            )),
        }
    }

    /// Report name (dictionary kinds match the underlying generator's
    /// name).
    pub fn name(&self) -> String {
        match self {
            AttackKind::Dictionary(kind) => kind.name(),
            AttackKind::Focused { target, guess_pct } => {
                format!("focused-u{}-h{}-p{guess_pct}", target.user, target.nth_ham)
            }
            AttackKind::HamChaff { campaign_words } => format!("ham-chaff-{campaign_words}"),
        }
    }

    /// The [`MessageRef`] this kind resolves, if any (validation hook).
    pub fn message_ref(&self) -> Option<MessageRef> {
        match self {
            AttackKind::Focused { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Materialize the generator against a [`CampaignEnv`]. Each call
    /// builds a fresh instance, so a spec can be run many times (shard
    /// matrices, repetitions) without sharing state; everything the build
    /// draws from the environment is deterministic in `(spec, env)`.
    pub fn build(
        &self,
        env: &CampaignEnv<'_>,
    ) -> Result<Box<dyn AttackGenerator + Send + Sync>, CampaignError> {
        match self {
            AttackKind::Dictionary(kind) => Ok(Box::new(DictionaryAttack::new(*kind))),
            AttackKind::Focused { target, guess_pct } => {
                let email = env.resolve_ham(*target)?;
                // Donor headers per §4.1, salted by the target so distinct
                // campaigns pick distinct donors.
                let salt = (target.user as u64) << 32 | u64::from(target.nth_ham);
                let donor = env.donor_spam(salt);
                Ok(Box::new(FocusedAttack::new(
                    &email,
                    f64::from(*guess_pct) / 100.0,
                    Some(donor),
                )))
            }
            AttackKind::HamChaff { campaign_words } => {
                // The future campaign's vocabulary: deep spam-stratum words
                // the bootstrap has likely never scored…
                let n = *campaign_words as usize;
                let stratum = Stratum::SpamSpecific;
                if n > stratum.len() {
                    return Err(CampaignError::ChaffVocabularyTooLarge {
                        requested: *campaign_words,
                        available: stratum.len(),
                    });
                }
                let campaign: Vec<String> = (0..n)
                    .map(|i| sb_corpus::word_for(stratum.word((i * 13 + 7_000) % stratum.len())))
                    .collect();
                // …blended with camouflage from the victim organization's
                // own (personal-stratum) vocabulary, so the chaff looks
                // like internal mail.
                let personal = Stratum::Personal;
                let camouflage: Vec<String> = (0..CHAFF_CAMOUFLAGE_POOL)
                    .map(|i| sb_corpus::word_for(personal.word((i * 3) % personal.len())))
                    .collect();
                Ok(Box::new(HamLabelAttack::new(
                    campaign,
                    camouflage,
                    CHAFF_CAMOUFLAGE_PER_EMAIL,
                )))
            }
        }
    }
}

impl std::fmt::Display for AttackKind {
    /// The canonical grammar form — the exact inverse of
    /// [`AttackKind::parse`] (scenario round-tripping relies on it).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackKind::Dictionary(DictionaryKind::Optimal) => write!(f, "optimal"),
            AttackKind::Dictionary(DictionaryKind::Aspell) => write!(f, "aspell"),
            AttackKind::Dictionary(DictionaryKind::AspellHalf) => write!(f, "aspell-half"),
            AttackKind::Dictionary(DictionaryKind::UsenetTop(k)) => write!(f, "usenet:{k}"),
            AttackKind::Focused { target, guess_pct } => {
                write!(f, "focused {target} guess:{guess_pct}")
            }
            AttackKind::HamChaff { campaign_words } => write!(f, "ham-chaff:{campaign_words}"),
        }
    }
}

/// One declared campaign: an attack, its schedule window, its intensity
/// shape, and its target users.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Which attack runs.
    pub attack: AttackKind,
    /// First day (1-based) campaign mail is sent.
    pub start_day: u32,
    /// Last day (inclusive) campaign mail is sent; `None` runs to the end
    /// of the simulation.
    pub end_day: Option<u32>,
    /// The send schedule over the active window.
    pub intensity: Intensity,
    /// Target users as indices into the organization's user list; `None`
    /// spreads the campaign round-robin over every user.
    pub targets: Option<Vec<usize>>,
}

impl CampaignSpec {
    /// An everyone-targeting, never-stopping, constant-rate campaign (the
    /// paper's shape).
    pub fn new(attack: AttackKind, start_day: u32, per_day: u32) -> Self {
        Self {
            attack,
            start_day,
            end_day: None,
            intensity: Intensity::constant(per_day),
            targets: None,
        }
    }

    /// The declared window length in days, when finite.
    pub fn window_len(&self) -> Option<u32> {
        window_len(self.start_day, self.end_day)
    }

    /// Messages this campaign sends on `day` (1-based): 0 outside the
    /// window, the schedule's volume inside it.
    pub fn volume_on(&self, day: u32) -> u32 {
        self.intensity.volume_on_day(self.start_day, self.end_day, day)
    }

    /// Whether the campaign sends mail on `day` (1-based).
    pub fn active_on(&self, day: u32) -> bool {
        self.volume_on(day) > 0
    }

    /// Whether two campaigns have at least one common window day. This is
    /// a *window* predicate: two burst campaigns whose on-days interleave
    /// still overlap.
    pub fn overlaps(&self, other: &CampaignSpec) -> bool {
        let end_a = self.end_day.unwrap_or(u32::MAX);
        let end_b = other.end_day.unwrap_or(u32::MAX);
        self.start_day <= end_b && other.start_day <= end_a
    }

    /// Validate the spec against an organization shape: window sanity,
    /// schedule shape, non-zero volume over the effective window, target
    /// indices, and [`MessageRef`] resolvability.
    pub fn validate(&self, shape: &CampaignShape) -> Result<(), CampaignError> {
        if self.start_day == 0 {
            return Err(CampaignError::StartDayZero);
        }
        if let Some(end) = self.end_day {
            if end < self.start_day {
                return Err(CampaignError::EmptyWindow {
                    start_day: self.start_day,
                    end_day: end,
                });
            }
        }
        if self.start_day > shape.days {
            return Err(CampaignError::NeverActive {
                start_day: self.start_day,
                days: shape.days,
            });
        }
        self.intensity.validate(self.window_len())?;
        // The effective window: declared, clipped by the simulation end.
        let effective = self
            .end_day
            .unwrap_or(shape.days)
            .min(shape.days)
            .saturating_sub(self.start_day)
            + 1;
        if self.intensity.cumulative(effective, self.window_len()) == 0 {
            return Err(CampaignError::ZeroVolume {
                intensity: self.intensity,
            });
        }
        if let Some(targets) = &self.targets {
            if targets.is_empty() {
                return Err(CampaignError::EmptyTargets);
            }
            if let Some(&bad) = targets.iter().find(|&&u| u >= shape.n_users) {
                return Err(CampaignError::TargetOutOfRange {
                    user: bad,
                    n_users: shape.n_users,
                });
            }
        }
        if let Some(r) = self.attack.message_ref() {
            shape.check_ref(r)?;
        }
        if let AttackKind::HamChaff { campaign_words } = self.attack {
            let available = Stratum::SpamSpecific.len();
            if campaign_words as usize > available {
                return Err(CampaignError::ChaffVocabularyTooLarge {
                    requested: campaign_words,
                    available,
                });
            }
        }
        Ok(())
    }
}

/// Validate a whole campaign set (the composition the scenario engine
/// schedules) against an organization shape. On failure, reports which
/// campaign broke (0-based index) alongside the error, so callers can
/// attach source locations.
pub fn validate_campaigns(
    specs: &[CampaignSpec],
    shape: &CampaignShape,
) -> Result<(), (usize, CampaignError)> {
    for (i, spec) in specs.iter().enumerate() {
        spec.validate(shape).map_err(|e| (i, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_corpus::CorpusConfig;
    use sb_stats::rng::Xoshiro256pp;

    fn shape() -> CampaignShape {
        CampaignShape {
            n_users: 5,
            days: 14,
            ham_rates: vec![2, 2, 2, 2, 2],
        }
    }

    fn env(generator: &EmailGenerator) -> CampaignEnv<'_> {
        CampaignEnv {
            shape: shape(),
            generator,
            ham0: 80,
            spam0: 80,
            seed: 7,
        }
    }

    #[test]
    fn parse_covers_the_dictionary_family() {
        assert_eq!(
            AttackKind::parse("usenet:2000"),
            Ok(AttackKind::Dictionary(DictionaryKind::UsenetTop(2_000)))
        );
        assert_eq!(
            AttackKind::parse(" aspell "),
            Ok(AttackKind::Dictionary(DictionaryKind::Aspell))
        );
        assert_eq!(
            AttackKind::parse("aspell-half"),
            Ok(AttackKind::Dictionary(DictionaryKind::AspellHalf))
        );
        assert_eq!(
            AttackKind::parse("optimal"),
            Ok(AttackKind::Dictionary(DictionaryKind::Optimal))
        );
        assert!(AttackKind::parse("usenet:0").is_err());
        assert!(AttackKind::parse("usenet:lots").is_err());
        assert!(AttackKind::parse("dictionary").is_err());
    }

    #[test]
    fn parse_covers_the_new_taxonomy_corners() {
        assert_eq!(
            AttackKind::parse("focused user:3 ham:5"),
            Ok(AttackKind::Focused {
                target: MessageRef { user: 3, nth_ham: 5 },
                guess_pct: 50,
            })
        );
        assert_eq!(
            AttackKind::parse("focused user:0 ham:12 guess:90"),
            Ok(AttackKind::Focused {
                target: MessageRef { user: 0, nth_ham: 12 },
                guess_pct: 90,
            })
        );
        assert_eq!(
            AttackKind::parse("ham-chaff:25"),
            Ok(AttackKind::HamChaff { campaign_words: 25 })
        );
        assert!(AttackKind::parse("focused user:1").is_err(), "missing ham:<k>");
        assert!(AttackKind::parse("focused ham:1").is_err(), "missing user:<u>");
        assert!(AttackKind::parse("focused user:1 ham:2 guess:101").is_err());
        assert!(AttackKind::parse("focused user:1 ham:2 p:50").is_err());
        assert!(AttackKind::parse("ham-chaff:0").is_err());
        // The keyword must stand alone: fused or hyphenated spellings are
        // unknown kinds, not malformed focused components.
        assert!(AttackKind::parse("focuseduser:1 ham:2")
            .unwrap_err()
            .contains("unknown attack kind"));
        assert!(AttackKind::parse("focused-x")
            .unwrap_err()
            .contains("unknown attack kind"));
        // Oversized chaff vocabularies would silently duplicate words.
        assert!(AttackKind::parse("ham-chaff:8000").is_ok());
        assert!(AttackKind::parse("ham-chaff:8001")
            .unwrap_err()
            .contains("exceeds"));
        let big = CampaignSpec::new(AttackKind::HamChaff { campaign_words: 9_000 }, 1, 2);
        assert!(matches!(
            big.validate(&CampaignShape { n_users: 2, days: 5, ham_rates: vec![1, 1] }),
            Err(CampaignError::ChaffVocabularyTooLarge { .. })
        ));
    }

    #[test]
    fn attack_grammar_round_trips_through_display() {
        for text in [
            "optimal",
            "aspell",
            "aspell-half",
            "usenet:2000",
            "focused user:3 ham:5 guess:50",
            "ham-chaff:25",
        ] {
            let kind = AttackKind::parse(text).expect(text);
            assert_eq!(kind.to_string(), text, "canonical form must be stable");
            assert_eq!(AttackKind::parse(&kind.to_string()), Ok(kind));
        }
    }

    #[test]
    fn intensity_grammar_round_trips_through_display() {
        for text in [
            "constant:5",
            "ramp:2->10",
            "ramp:10->2",
            "bursts:period=7,on=2,per_day=9",
        ] {
            let i = Intensity::parse(text).expect(text);
            assert_eq!(i.to_string(), text);
            assert_eq!(Intensity::parse(&i.to_string()), Ok(i));
        }
        assert!(Intensity::parse("ramp:2").is_err());
        assert!(Intensity::parse("bursts:period=7,on=2").is_err());
        assert!(Intensity::parse("bursts:period=7,on=2,per_day=x").is_err());
        assert!(Intensity::parse("surge:9").is_err());
    }

    #[test]
    fn ramp_hits_its_endpoints_and_total() {
        let ramp = Intensity::LinearRamp { from: 2, to: 10 };
        let w = Some(5);
        let volumes: Vec<u32> = (0..5).map(|t| ramp.volume_on(t, w)).collect();
        assert_eq!(volumes, vec![2, 4, 6, 8, 10]);
        assert_eq!(ramp.cumulative(5, w), 30);
        // Downward ramps mirror.
        let down = Intensity::LinearRamp { from: 10, to: 2 };
        let volumes: Vec<u32> = (0..5).map(|t| down.volume_on(t, w)).collect();
        assert_eq!(volumes, vec![10, 8, 6, 4, 2]);
        // Non-divisible ramps error-diffuse but keep the endpoints.
        let odd = Intensity::LinearRamp { from: 0, to: 5 };
        let volumes: Vec<u32> = (0..3).map(|t| odd.volume_on(t, Some(3))).collect();
        assert_eq!(*volumes.first().unwrap(), 0);
        assert_eq!(*volumes.last().unwrap(), 5);
        assert_eq!(volumes.iter().map(|&v| u64::from(v)).sum::<u64>(), odd.cumulative(3, Some(3)));
        // One-day windows hold at `from`.
        assert_eq!(odd.volume_on(0, Some(1)), 0);
    }

    #[test]
    fn bursts_gate_by_cycle_offset() {
        let bursts = Intensity::Bursts { period: 5, on_days: 2, per_day: 6 };
        let volumes: Vec<u32> = (0..12).map(|t| bursts.volume_on(t, None)).collect();
        assert_eq!(volumes, vec![6, 6, 0, 0, 0, 6, 6, 0, 0, 0, 6, 6]);
        assert_eq!(bursts.cumulative(12, None), 6 * 6);
        assert!(bursts.validate(None).is_ok());
        for bad in [
            Intensity::Bursts { period: 0, on_days: 0, per_day: 6 },
            Intensity::Bursts { period: 5, on_days: 0, per_day: 6 },
            Intensity::Bursts { period: 5, on_days: 6, per_day: 6 },
        ] {
            assert!(bad.validate(None).is_err(), "{bad} should be malformed");
        }
    }

    #[test]
    fn built_generator_matches_the_declared_kind() {
        let corpus = CorpusConfig::with_size(160, 0.5);
        let generator = EmailGenerator::new(corpus, 3);
        let env = env(&generator);
        let kind = AttackKind::parse("usenet:500").unwrap();
        let g = kind.build(&env).unwrap();
        assert_eq!(g.name(), kind.name());
        let batch = g.generate(3, &mut Xoshiro256pp::new(1));
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn focused_build_resolves_the_named_ham_deterministically() {
        let corpus = CorpusConfig::with_size(160, 0.5);
        let generator = EmailGenerator::new(corpus, 3);
        let env = env(&generator);
        let target = MessageRef { user: 2, nth_ham: 3 };
        // user 2, rate 2/day: k=3 -> day offset 1, slot 1; prefix = 4.
        let expect = generator.ham(80 + 10 + 4 + 1);
        assert_eq!(env.resolve_ham(target).unwrap(), expect);
        let kind = AttackKind::Focused { target, guess_pct: 100 };
        let g = kind.build(&env).unwrap();
        // Donor headers (§4.1): the attack email carries real spam headers.
        let batch = g.generate(1, &mut Xoshiro256pp::new(2));
        assert!(!batch.groups()[0].0.has_empty_headers());
        // Deterministic: a rebuilt generator emits the identical prototype.
        let again = kind.build(&env).unwrap().generate(1, &mut Xoshiro256pp::new(2));
        assert_eq!(batch.groups()[0].0, again.groups()[0].0);
    }

    #[test]
    fn build_errors_name_the_unresolvable_ref() {
        let corpus = CorpusConfig::with_size(160, 0.5);
        let generator = EmailGenerator::new(corpus, 3);
        let env = env(&generator);
        let bad_user = AttackKind::Focused {
            target: MessageRef { user: 9, nth_ham: 0 },
            guess_pct: 50,
        };
        assert!(matches!(
            bad_user.build(&env),
            Err(CampaignError::RefUserOutOfRange { user: 9, n_users: 5 })
        ));
        let beyond = AttackKind::Focused {
            // rate 2/day × 14 days = 28 hams; index 28 is one past the end.
            target: MessageRef { user: 0, nth_ham: 28 },
            guess_pct: 50,
        };
        assert!(matches!(
            beyond.build(&env),
            Err(CampaignError::RefOutOfRange { available: 28, .. })
        ));
    }

    #[test]
    fn ham_chaff_builds_a_taxonomy_correct_generator() {
        let corpus = CorpusConfig::with_size(160, 0.5);
        let generator = EmailGenerator::new(corpus, 3);
        let env = env(&generator);
        let kind = AttackKind::HamChaff { campaign_words: 20 };
        let g = kind.build(&env).unwrap();
        assert_eq!(g.name(), "ham-chaff-20");
        assert_eq!(
            g.class(),
            crate::taxonomy::AttackClass {
                influence: crate::taxonomy::Influence::Causative,
                violation: crate::taxonomy::Violation::Integrity,
                specificity: crate::taxonomy::Specificity::Targeted,
            }
        );
        let batch = g.generate(4, &mut Xoshiro256pp::new(5));
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn activity_window_is_inclusive() {
        let mut spec = CampaignSpec::new(AttackKind::parse("aspell").unwrap(), 3, 2);
        spec.end_day = Some(5);
        assert!(!spec.active_on(2));
        assert!(spec.active_on(3));
        assert!(spec.active_on(5));
        assert!(!spec.active_on(6));
        // Open-ended campaigns never stop.
        spec.end_day = None;
        assert!(spec.active_on(10_000));
        // Burst off-days are in-window but send nothing.
        spec.intensity = Intensity::Bursts { period: 4, on_days: 1, per_day: 2 };
        assert_eq!(spec.volume_on(3), 2);
        assert_eq!(spec.volume_on(4), 0);
        assert!(!spec.active_on(4));
    }

    #[test]
    fn overlap_is_symmetric_and_window_based() {
        let kind = || AttackKind::parse("optimal").unwrap();
        let mut a = CampaignSpec::new(kind(), 1, 5);
        a.end_day = Some(7);
        let mut b = CampaignSpec::new(kind(), 8, 5);
        b.end_day = Some(14);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        b.start_day = 7;
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // An open-ended campaign overlaps everything after its start.
        let open = CampaignSpec::new(kind(), 3, 1);
        assert!(open.overlaps(&a));
        assert!(open.overlaps(&b));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let kind = || AttackKind::parse("aspell").unwrap();
        let shape = shape();
        let ok = CampaignSpec::new(kind(), 1, 4);
        assert!(ok.validate(&shape).is_ok());
        let mut empty_window = CampaignSpec::new(kind(), 9, 4);
        empty_window.end_day = Some(3);
        assert!(matches!(
            empty_window.validate(&shape),
            Err(CampaignError::EmptyWindow { .. })
        ));
        let late = CampaignSpec::new(kind(), 15, 4);
        assert!(matches!(late.validate(&shape), Err(CampaignError::NeverActive { .. })));
        let mut bad_target = CampaignSpec::new(kind(), 1, 4);
        bad_target.targets = Some(vec![0, 5]);
        assert!(matches!(
            bad_target.validate(&shape),
            Err(CampaignError::TargetOutOfRange { user: 5, .. })
        ));
        let mut six = shape.clone();
        six.n_users = 6;
        assert!(bad_target.validate(&six).is_ok());
        let mut no_targets = CampaignSpec::new(kind(), 1, 4);
        no_targets.targets = Some(vec![]);
        assert!(matches!(no_targets.validate(&shape), Err(CampaignError::EmptyTargets)));
        let day_zero = CampaignSpec::new(kind(), 0, 4);
        assert!(matches!(day_zero.validate(&shape), Err(CampaignError::StartDayZero)));
        let (i, e) = validate_campaigns(&[ok, bad_target], &shape).unwrap_err();
        assert_eq!(i, 1);
        assert!(matches!(e, CampaignError::TargetOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_zero_volume_schedules() {
        let kind = || AttackKind::parse("aspell").unwrap();
        let shape = shape();
        let zero = CampaignSpec::new(kind(), 1, 0);
        assert!(matches!(zero.validate(&shape), Err(CampaignError::ZeroVolume { .. })));
        let mut flat_ramp = CampaignSpec::new(kind(), 1, 0);
        flat_ramp.end_day = Some(5);
        flat_ramp.intensity = Intensity::LinearRamp { from: 0, to: 0 };
        assert!(matches!(
            flat_ramp.validate(&shape),
            Err(CampaignError::ZeroVolume { .. })
        ));
        let mut silent_bursts = CampaignSpec::new(kind(), 1, 0);
        silent_bursts.intensity = Intensity::Bursts { period: 3, on_days: 1, per_day: 0 };
        assert!(matches!(
            silent_bursts.validate(&shape),
            Err(CampaignError::ZeroVolume { .. })
        ));
        // A ramp that *reaches* volume inside the simulation is fine…
        let mut ok_ramp = CampaignSpec::new(kind(), 1, 0);
        ok_ramp.end_day = Some(10);
        ok_ramp.intensity = Intensity::LinearRamp { from: 0, to: 9 };
        assert!(ok_ramp.validate(&shape).is_ok());
        // …and an unbounded ramp is rejected as such.
        let mut unbounded = CampaignSpec::new(kind(), 1, 0);
        unbounded.intensity = Intensity::LinearRamp { from: 0, to: 9 };
        assert!(matches!(
            unbounded.validate(&shape),
            Err(CampaignError::UnboundedRamp { .. })
        ));
    }

    #[test]
    fn validation_rejects_unresolvable_refs() {
        let shape = shape();
        let focused = |user, nth_ham| {
            CampaignSpec::new(
                AttackKind::Focused {
                    target: MessageRef { user, nth_ham },
                    guess_pct: 50,
                },
                1,
                3,
            )
        };
        assert!(focused(1, 0).validate(&shape).is_ok());
        assert!(focused(1, 27).validate(&shape).is_ok());
        assert!(matches!(
            focused(7, 0).validate(&shape),
            Err(CampaignError::RefUserOutOfRange { .. })
        ));
        assert!(matches!(
            focused(1, 28).validate(&shape),
            Err(CampaignError::RefOutOfRange { .. })
        ));
        let mut no_ham = shape.clone();
        no_ham.ham_rates[1] = 0;
        assert!(matches!(
            focused(1, 0).validate(&no_ham),
            Err(CampaignError::RefUserHasNoHam { user: 1 })
        ));
    }
}
