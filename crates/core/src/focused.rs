//! The focused attack (§3.3): Causative Availability Targeted.
//!
//! The attacker knows (part of) a specific legitimate email the victim is
//! about to receive — a competitor's bid, say — and sends attack emails
//! containing the words they can guess. Trained as spam, those words' scores
//! rise and the real target email is filtered on arrival.
//!
//! Knowledge model (§4.3): the attacker guesses each token of the target
//! independently with probability `p`. By default one guess is drawn per
//! attack (the attacker's knowledge is what it is), shared by every attack
//! email; `resample_per_email` models an attacker who varies their guesses.
//! Headers are copied from a randomly chosen existing spam (§4.1).

use crate::attack::{build_attack_email, AttackBatch, AttackGenerator, HeaderMode};
use crate::taxonomy::AttackClass;
use rand::Rng;
use sb_email::Email;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;

/// Configuration of a focused attack against one target email.
#[derive(Debug, Clone)]
pub struct FocusedAttack {
    target_body_tokens: Vec<String>,
    guess_prob: f64,
    header_donor: Option<Email>,
    resample_per_email: bool,
}

impl FocusedAttack {
    /// Attack `target`, guessing each of its body tokens with probability
    /// `guess_prob`. `header_donor` supplies the attack emails' headers
    /// (pass a random spam from the corpus; `None` sends empty headers).
    pub fn new(target: &Email, guess_prob: f64, header_donor: Option<Email>) -> Self {
        assert!((0.0..=1.0).contains(&guess_prob));
        // The attacker guesses the *content* of the target: its body words.
        // Header tokens (message-ids, received chains…) are not guessable.
        let tokenizer = Tokenizer::new();
        let mut tokens = Vec::new();
        tokenizer.tokenize_text(target.body(), &mut tokens);
        tokens.sort_unstable();
        tokens.dedup();
        Self {
            target_body_tokens: tokens,
            guess_prob,
            header_donor,
            resample_per_email: false,
        }
    }

    /// Model an attacker who re-guesses independently for every attack email
    /// instead of fixing one knowledge set.
    pub fn with_resampling(mut self, resample: bool) -> Self {
        self.resample_per_email = resample;
        self
    }

    /// The target's (deduplicated) body tokens — the attacker's guess space.
    pub fn target_tokens(&self) -> &[String] {
        &self.target_body_tokens
    }

    /// The guessing probability `p`.
    pub fn guess_prob(&self) -> f64 {
        self.guess_prob
    }

    /// One independent guess at the target's tokens.
    pub fn guess_tokens(&self, rng: &mut Xoshiro256pp) -> Vec<String> {
        self.target_body_tokens
            .iter()
            .filter(|_| rng.random::<f64>() < self.guess_prob)
            .cloned()
            .collect()
    }

    fn header_mode(&self) -> HeaderMode {
        match &self.header_donor {
            Some(d) => HeaderMode::Donor(d.clone()),
            None => HeaderMode::Empty,
        }
    }
}

impl AttackGenerator for FocusedAttack {
    fn name(&self) -> String {
        format!("focused-p{:.2}", self.guess_prob)
    }

    fn class(&self) -> AttackClass {
        AttackClass::causative_availability_targeted()
    }

    fn generate(&self, n: u32, rng: &mut Xoshiro256pp) -> AttackBatch {
        let header = self.header_mode();
        if self.resample_per_email {
            let groups = (0..n)
                .map(|_| (build_attack_email(&self.guess_tokens(rng), &header), 1))
                .collect();
            AttackBatch::new(groups)
        } else {
            let guess = self.guess_tokens(rng);
            AttackBatch::new(vec![(build_attack_email(&guess, &header), n)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> Email {
        let words: Vec<String> = (0..200).map(|i| format!("bidword{i:03}")).collect();
        Email::builder()
            .from_addr("rival@competitor.example")
            .subject("Bid for the municipal contract")
            .body(words.join(" "))
            .build()
    }

    #[test]
    fn guess_rate_matches_probability() {
        let atk = FocusedAttack::new(&target(), 0.3, None);
        let mut rng = Xoshiro256pp::new(1);
        let mut total = 0usize;
        let reps = 200;
        for _ in 0..reps {
            total += atk.guess_tokens(&mut rng).len();
        }
        let rate = total as f64 / (reps as f64 * atk.target_tokens().len() as f64);
        assert!((rate - 0.3).abs() < 0.03, "guess rate {rate}");
    }

    #[test]
    fn extreme_probabilities() {
        let t = target();
        let mut rng = Xoshiro256pp::new(2);
        let none = FocusedAttack::new(&t, 0.0, None);
        assert!(none.guess_tokens(&mut rng).is_empty());
        let all = FocusedAttack::new(&t, 1.0, None);
        assert_eq!(all.guess_tokens(&mut rng).len(), all.target_tokens().len());
    }

    #[test]
    fn fixed_knowledge_batch_shares_one_prototype() {
        let atk = FocusedAttack::new(&target(), 0.5, None);
        let batch = atk.generate(300, &mut Xoshiro256pp::new(3));
        assert_eq!(batch.groups().len(), 1);
        assert_eq!(batch.len(), 300);
    }

    #[test]
    fn resampled_batch_has_distinct_guesses() {
        let atk = FocusedAttack::new(&target(), 0.5, None).with_resampling(true);
        let batch = atk.generate(10, &mut Xoshiro256pp::new(4));
        assert_eq!(batch.groups().len(), 10);
        let bodies: std::collections::HashSet<&str> = batch
            .groups()
            .iter()
            .map(|(e, _)| e.body())
            .collect();
        assert!(bodies.len() > 1, "resampled guesses should differ");
    }

    #[test]
    fn donor_headers_are_attached() {
        let donor = Email::builder()
            .from_addr("spammer@bulk.example")
            .subject("cheap meds")
            .body("ignored")
            .build();
        let atk = FocusedAttack::new(&target(), 0.5, Some(donor.clone()));
        let batch = atk.generate(1, &mut Xoshiro256pp::new(5));
        let proto = &batch.groups()[0].0;
        assert_eq!(proto.from_addr(), donor.from_addr());
        assert_ne!(proto.body(), donor.body());
    }

    #[test]
    fn attacker_guesses_body_not_headers() {
        let atk = FocusedAttack::new(&target(), 1.0, None);
        // Subject words ("bid", "municipal", …) are not in the guess space.
        assert!(atk
            .target_tokens()
            .iter()
            .all(|t| t.starts_with("bidword")));
    }

    #[test]
    fn taxonomy_and_name() {
        let atk = FocusedAttack::new(&target(), 0.3, None);
        assert_eq!(atk.class(), AttackClass::causative_availability_targeted());
        assert_eq!(atk.name(), "focused-p0.30");
    }

    #[test]
    fn guesses_are_deterministic_under_seed() {
        let atk = FocusedAttack::new(&target(), 0.5, None);
        let a = atk.guess_tokens(&mut Xoshiro256pp::new(6));
        let b = atk.guess_tokens(&mut Xoshiro256pp::new(6));
        assert_eq!(a, b);
    }
}
