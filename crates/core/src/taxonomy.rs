//! The attack taxonomy of §3.1 (Barreno et al.'s three axes).

use serde::{Deserialize, Serialize};

/// Axis 1 — attacker capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Influence {
    /// The attacker influences the *training* data (and thereby the filter).
    Causative,
    /// The attacker only probes a fixed filter with crafted messages.
    Exploratory,
}

/// Axis 2 — type of security violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Violation {
    /// False negatives: spam slips through.
    Integrity,
    /// False positives: ham is filtered away.
    Availability,
}

/// Axis 3 — attack specificity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Specificity {
    /// Degrades performance on one particular type of email.
    Targeted,
    /// Degrades performance on a broad class of email.
    Indiscriminate,
}

/// A point in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttackClass {
    /// Capability axis.
    pub influence: Influence,
    /// Violation axis.
    pub violation: Violation,
    /// Specificity axis.
    pub specificity: Specificity,
}

impl AttackClass {
    /// The dictionary attack's class (§3.2): Causative Availability
    /// Indiscriminate.
    pub const fn causative_availability_indiscriminate() -> Self {
        Self {
            influence: Influence::Causative,
            violation: Violation::Availability,
            specificity: Specificity::Indiscriminate,
        }
    }

    /// The focused attack's class (§3.3): Causative Availability Targeted.
    pub const fn causative_availability_targeted() -> Self {
        Self {
            influence: Influence::Causative,
            violation: Violation::Availability,
            specificity: Specificity::Targeted,
        }
    }
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} {:?} {:?}",
            self.influence, self.violation, self.specificity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_attack_classes() {
        let dict = AttackClass::causative_availability_indiscriminate();
        assert_eq!(dict.influence, Influence::Causative);
        assert_eq!(dict.violation, Violation::Availability);
        assert_eq!(dict.specificity, Specificity::Indiscriminate);
        let focused = AttackClass::causative_availability_targeted();
        assert_eq!(focused.specificity, Specificity::Targeted);
        assert_eq!(
            focused.to_string(),
            "Causative Availability Targeted"
        );
    }
}
