//! The periodic-retraining pipeline of §2.1–§2.2.
//!
//! The paper's threat model assumes an organization that "retrains
//! SpamBayes periodically (e.g., weekly)" on received mail, with the
//! attacker's mail arriving alongside legitimate traffic (the contamination
//! assumption). This module implements that loop so attacks and defenses
//! can be evaluated *longitudinally* rather than on a single poisoned
//! snapshot:
//!
//! * each epoch, a batch of arriving messages (ham + spam + attack) is
//!   labeled (ground truth for legitimate mail; attack mail is genuinely
//!   spam, so it is labeled spam — §2.2) and appended to the training pool;
//! * an optional [`ScreeningPolicy`] (e.g. RONI) can veto messages before
//!   they are trained;
//! * the filter is retrained from the surviving pool each epoch, and
//!   held-out performance is recorded.
//!
//! Substrate notes: every message is tokenized and interned **once** on
//! arrival — the pool stores `Arc<Vec<TokenId>>`, so the per-epoch
//! retrain is a pure id-counting loop and held-out probes are classified
//! through the parallel batch API. Screening goes through
//! [`ScreeningPolicy::admit_batch`], so the RONI screen measures an
//! epoch's spam arrivals in one parallel overlay sweep (read-only against
//! shared trial filters — no database clones, no cache invalidation).
//! Pre-intern recurring probe sets with
//! [`RetrainingPipeline::intern_probes`] to avoid re-tokenizing them
//! every epoch.

use crate::roni::RoniDefense;
use sb_email::{Email, Label};
use sb_filter::{SpamBayes, Verdict};
use sb_intern::TokenId;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Decides whether an arriving message may enter the training pool.
///
/// Policies receive the message's interned token set — the same ids the
/// pipeline will train with — so screening never re-tokenizes.
pub trait ScreeningPolicy {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// `true` to admit the message (given its interned token set and
    /// training label).
    fn admit(&mut self, token_ids: &[TokenId], label: Label) -> bool;

    /// Admission decisions for a whole epoch of arrivals, one per item in
    /// order. The default preserves the sequential one-by-one semantics;
    /// policies whose decisions are independent across candidates (RONI:
    /// the trial splits are fixed at construction) override this to
    /// screen the batch in parallel.
    fn admit_batch(&mut self, items: &[(Arc<Vec<TokenId>>, Label)]) -> Vec<bool> {
        items
            .iter()
            .map(|(ids, label)| self.admit(ids, *label))
            .collect()
    }
}

/// Admit everything (the undefended baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmitAll;

impl ScreeningPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }

    fn admit(&mut self, _token_ids: &[TokenId], _label: Label) -> bool {
        true
    }
}

/// Screen spam-labeled messages through RONI (§5.1). Ham-labeled messages
/// are admitted unconditionally — the paper's attack mail is always
/// spam-labeled, and RONI's statistic is calibrated for that direction.
pub struct RoniScreen {
    roni: RoniDefense,
}

impl RoniScreen {
    /// Wrap a prepared RONI evaluator.
    pub fn new(roni: RoniDefense) -> Self {
        Self { roni }
    }
}

impl ScreeningPolicy for RoniScreen {
    fn name(&self) -> &'static str {
        "roni"
    }

    fn admit(&mut self, token_ids: &[TokenId], label: Label) -> bool {
        match label {
            Label::Ham => true,
            Label::Spam => !self.roni.measure_ids(token_ids).rejected,
        }
    }

    /// Screen the spam-labeled arrivals of an epoch in one parallel
    /// overlay sweep (`RoniDefense::measure_ids_batch`): candidate
    /// measurement is read-only, so workers share the trial filters and
    /// their warm score caches across the whole batch.
    fn admit_batch(&mut self, items: &[(Arc<Vec<TokenId>>, Label)]) -> Vec<bool> {
        let mut admit = vec![true; items.len()];
        let spam_idx: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (_, label))| *label == Label::Spam)
            .map(|(i, _)| i)
            .collect();
        let candidates: Vec<Arc<Vec<TokenId>>> = spam_idx
            .iter()
            .map(|&i| Arc::clone(&items[i].0))
            .collect();
        for (k, m) in self.roni.measure_ids_batch(&candidates).into_iter().enumerate() {
            admit[spam_idx[k]] = !m.rejected;
        }
        admit
    }
}

/// Performance snapshot after one epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0 = after first retraining).
    pub epoch: usize,
    /// Messages admitted to the pool this epoch.
    pub admitted: usize,
    /// Messages vetoed by the screening policy this epoch.
    pub vetoed: usize,
    /// Held-out ham delivered correctly.
    pub ham_ok: usize,
    /// Held-out ham lost (unsure or spam).
    pub ham_lost: usize,
    /// Held-out spam caught.
    pub spam_ok: usize,
    /// Size of the held-out probe set per class.
    pub probe_size: usize,
}

impl EpochReport {
    /// Fraction of held-out ham lost.
    pub fn ham_loss_rate(&self) -> f64 {
        if self.probe_size == 0 {
            0.0
        } else {
            self.ham_lost as f64 / self.probe_size as f64
        }
    }
}

/// The retraining loop.
pub struct RetrainingPipeline<P: ScreeningPolicy> {
    tokenizer: Tokenizer,
    pool: Vec<(Arc<Vec<TokenId>>, Label)>,
    policy: P,
    filter: SpamBayes,
    epoch: usize,
}

impl<P: ScreeningPolicy> RetrainingPipeline<P> {
    /// Start from an initial (trusted) pool and a screening policy.
    pub fn new(initial_pool: &[(Email, Label)], policy: P) -> Self {
        let tokenizer = Tokenizer::new();
        let interner = sb_intern::Interner::global();
        let pool: Vec<(Arc<Vec<TokenId>>, Label)> = initial_pool
            .iter()
            .map(|(e, l)| {
                (
                    Arc::new(interner.intern_set(&tokenizer.token_set(e))),
                    *l,
                )
            })
            .collect();
        let mut pipeline = Self {
            tokenizer,
            pool,
            policy,
            filter: SpamBayes::new(),
            epoch: 0,
        };
        pipeline.retrain();
        pipeline
    }

    /// The current filter.
    pub fn filter(&self) -> &SpamBayes {
        &self.filter
    }

    /// Current training-pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Tokenize + intern a probe set once, for reuse across epochs
    /// (never re-tokenize recurring held-out traffic).
    pub fn intern_probes(&self, probes: &[Email]) -> Vec<Arc<Vec<TokenId>>> {
        let interner = self.filter.interner().clone();
        probes
            .iter()
            .map(|e| Arc::new(interner.intern_set(&self.tokenizer.token_set(e))))
            .collect()
    }

    fn retrain(&mut self) {
        let mut filter = SpamBayes::new();
        for (ids, label) in &self.pool {
            filter.train_ids(ids, *label, 1);
        }
        self.filter = filter;
    }

    /// Ingest one epoch of arriving mail given as emails (tokenizes +
    /// interns each arrival once, then defers to
    /// [`RetrainingPipeline::run_epoch_interned`]).
    pub fn run_epoch(
        &mut self,
        arrivals: &[(Email, Label)],
        probe_ham: &[Email],
        probe_spam: &[Email],
    ) -> EpochReport {
        let interner = self.filter.interner().clone();
        let arrivals_ids: Vec<(Arc<Vec<TokenId>>, Label)> = arrivals
            .iter()
            .map(|(e, l)| {
                (
                    Arc::new(interner.intern_set(&self.tokenizer.token_set(e))),
                    *l,
                )
            })
            .collect();
        let probe_ham_ids = self.intern_probes(probe_ham);
        let probe_spam_ids = self.intern_probes(probe_spam);
        self.run_epoch_interned(&arrivals_ids, &probe_ham_ids, &probe_spam_ids)
    }

    /// Ingest one epoch of pre-interned arrivals (already labeled — the
    /// paper's §2.2 argument: attack mail genuinely is spam, so any
    /// labeling process marks it spam), retrain, and probe on held-out
    /// traffic through the parallel batch classifier.
    pub fn run_epoch_interned(
        &mut self,
        arrivals: &[(Arc<Vec<TokenId>>, Label)],
        probe_ham: &[Arc<Vec<TokenId>>],
        probe_spam: &[Arc<Vec<TokenId>>],
    ) -> EpochReport {
        let mut admitted = 0;
        let mut vetoed = 0;
        let admits = self.policy.admit_batch(arrivals);
        for ((ids, label), ok) in arrivals.iter().zip(admits) {
            if ok {
                self.pool.push((Arc::clone(ids), *label));
                admitted += 1;
            } else {
                vetoed += 1;
            }
        }
        self.retrain();

        let ham_verdicts = self.filter.classify_ids_batch(probe_ham);
        let ham_ok = ham_verdicts
            .iter()
            .filter(|s| s.verdict == Verdict::Ham)
            .count();
        let ham_lost = probe_ham.len() - ham_ok;
        let spam_ok = self
            .filter
            .classify_ids_batch(probe_spam)
            .iter()
            .filter(|s| s.verdict == Verdict::Spam)
            .count();

        let report = EpochReport {
            epoch: self.epoch,
            admitted,
            vetoed,
            ham_ok,
            ham_lost,
            spam_ok,
            probe_size: probe_ham.len(),
        };
        self.epoch += 1;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackGenerator;
    use crate::dictionary::{DictionaryAttack, DictionaryKind};
    use crate::roni::RoniConfig;
    use sb_corpus::{CorpusConfig, TrecCorpus};
    use sb_filter::FilterOptions;
    use sb_stats::rng::Xoshiro256pp;

    type World = (TrecCorpus, Vec<(Email, Label)>, Vec<Email>, Vec<Email>);

    fn world() -> World {
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(300, 0.5), 4242);
        let initial: Vec<(Email, Label)> = corpus
            .emails()
            .iter()
            .map(|m| (m.email.clone(), m.label))
            .collect();
        let probe_ham: Vec<Email> = (500..530).map(|k| corpus.fresh_ham(k)).collect();
        let probe_spam: Vec<Email> = (500..530).map(|k| corpus.fresh_spam(k)).collect();
        (corpus, initial, probe_ham, probe_spam)
    }

    /// One epoch of mixed traffic: `n_benign` fresh ham+spam pairs plus
    /// `n_attack` dictionary-attack emails.
    fn epoch_traffic(
        corpus: &TrecCorpus,
        offset: u64,
        n_benign: u64,
        n_attack: u32,
    ) -> Vec<(Email, Label)> {
        let mut arrivals: Vec<(Email, Label)> = Vec::new();
        for k in 0..n_benign {
            arrivals.push((corpus.fresh_ham(1000 + offset + k), Label::Ham));
            arrivals.push((corpus.fresh_spam(1000 + offset + k), Label::Spam));
        }
        if n_attack > 0 {
            let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
            let batch = attack.generate(n_attack, &mut Xoshiro256pp::new(offset));
            for e in batch.materialize() {
                // Attack mail is genuinely spam: labeled spam (§2.2).
                arrivals.push((e, Label::Spam));
            }
        }
        arrivals
    }

    #[test]
    fn undefended_pipeline_degrades_over_epochs() {
        let (corpus, initial, probe_ham, probe_spam) = world();
        let mut pipeline = RetrainingPipeline::new(&initial, AdmitAll);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for epoch in 0..3u64 {
            let arrivals = epoch_traffic(&corpus, epoch * 50, 10, 5);
            let report = pipeline.run_epoch(&arrivals, &probe_ham, &probe_spam);
            assert_eq!(report.vetoed, 0);
            if first_loss.is_none() {
                first_loss = Some(report.ham_loss_rate());
            }
            last_loss = report.ham_loss_rate();
        }
        // Repeated attack epochs accumulate: ham delivery collapses.
        assert!(
            last_loss > 0.8,
            "pipeline should be poisoned after 3 attack epochs: {last_loss}"
        );
    }

    #[test]
    fn roni_screened_pipeline_survives() {
        let (corpus, initial, probe_ham, probe_spam) = world();
        let roni = RoniDefense::new(
            RoniConfig::default(),
            corpus.dataset(),
            FilterOptions::default(),
            &mut Xoshiro256pp::new(1),
        );
        let mut pipeline = RetrainingPipeline::new(&initial, RoniScreen::new(roni));
        // Pre-intern the recurring probes once, as a production pipeline
        // would.
        let probe_ham_ids = pipeline.intern_probes(&probe_ham);
        let probe_spam_ids = pipeline.intern_probes(&probe_spam);
        let interner = pipeline.filter().interner().clone();
        let tokenizer = Tokenizer::new();
        let mut last = None;
        for epoch in 0..3u64 {
            let arrivals: Vec<(Arc<Vec<TokenId>>, Label)> =
                epoch_traffic(&corpus, epoch * 50, 10, 5)
                    .iter()
                    .map(|(e, l)| {
                        (Arc::new(interner.intern_set(&tokenizer.token_set(e))), *l)
                    })
                    .collect();
            let report =
                pipeline.run_epoch_interned(&arrivals, &probe_ham_ids, &probe_spam_ids);
            // Every attack email is vetoed each epoch.
            assert!(report.vetoed >= 5, "epoch {epoch}: vetoed {}", report.vetoed);
            last = Some(report);
        }
        let last = last.unwrap();
        assert!(
            last.ham_loss_rate() < 0.2,
            "screened pipeline lost {} of ham",
            last.ham_loss_rate()
        );
        // Spam still gets caught (the screen keeps benign spam training).
        assert!(last.spam_ok as f64 / 30.0 > 0.8);
    }

    #[test]
    fn clean_traffic_keeps_baseline_quality() {
        let (corpus, initial, probe_ham, probe_spam) = world();
        let mut pipeline = RetrainingPipeline::new(&initial, AdmitAll);
        let arrivals = epoch_traffic(&corpus, 0, 20, 0);
        let before_pool = pipeline.pool_size();
        let report = pipeline.run_epoch(&arrivals, &probe_ham, &probe_spam);
        assert_eq!(pipeline.pool_size(), before_pool + 40);
        assert!(report.ham_loss_rate() < 0.1, "loss {}", report.ham_loss_rate());
        assert_eq!(report.admitted, 40);
    }
}
