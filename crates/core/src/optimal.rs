//! The optimal attack function (§3.4): the formal framework unifying the
//! dictionary and focused attacks.
//!
//! The attacker's knowledge of the victim's next email is a distribution
//! `p` over words — the probability each word appears in it. Because (a)
//! token scores don't interact and (b) the message score `I` is monotone
//! non-decreasing in each `f(w)`, the attack email maximizing the expected
//! score of the next email simply includes every word with positive
//! probability — or, under a size budget, the *most probable* words first.
//!
//! * uniform knowledge (`p_i` equal for all words) → include everything →
//!   the **dictionary attack**;
//! * point-mass knowledge (`p_i = 1` iff word `i` is in the known target) →
//!   include the target's words → the **focused attack**;
//! * anything in between (e.g. victim-specific jargon distributions) →
//!   the constrained optimal attacks the paper leaves to future work,
//!   exercised here by the `ablation` benchmarks.

use sb_intern::FxHashMap;

/// Attacker knowledge: per-word appearance probabilities for the victim's
/// next email (sparse: absent words have probability 0).
#[derive(Debug, Clone, Default)]
pub struct WordKnowledge {
    probs: FxHashMap<String, f64>,
}

impl WordKnowledge {
    /// No knowledge at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform knowledge over a lexicon (the dictionary attack's model of
    /// "the victim writes English"): every word equally likely.
    pub fn uniform(lexicon: &[String], p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Self {
            probs: lexicon.iter().map(|w| (w.clone(), p)).collect(),
        }
    }

    /// Exact knowledge of a target email's words (the focused attack).
    pub fn point_mass(target_tokens: &[String]) -> Self {
        Self {
            probs: target_tokens.iter().map(|w| (w.clone(), 1.0)).collect(),
        }
    }

    /// Set one word's probability.
    pub fn set(&mut self, word: impl Into<String>, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            self.probs.remove(&word.into());
        } else {
            self.probs.insert(word.into(), p);
        }
    }

    /// The probability assigned to a word.
    pub fn prob(&self, word: &str) -> f64 {
        self.probs.get(word).copied().unwrap_or(0.0)
    }

    /// Number of words with positive probability.
    pub fn support_size(&self) -> usize {
        self.probs.len()
    }

    /// Iterate over `(word, probability)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.probs.iter().map(|(w, &p)| (w.as_str(), p))
    }

    /// Blend two knowledge states: `α·self + (1−α)·other` pointwise. Models
    /// the knowledge spectrum between the dictionary and focused extremes.
    pub fn interpolate(&self, other: &WordKnowledge, alpha: f64) -> WordKnowledge {
        assert!((0.0..=1.0).contains(&alpha));
        let mut probs = FxHashMap::default();
        for (w, &p) in &self.probs {
            probs.insert(w.clone(), alpha * p);
        }
        for (w, &q) in &other.probs {
            *probs.entry(w.clone()).or_insert(0.0) += (1.0 - alpha) * q;
        }
        probs.retain(|_, p| *p > 0.0);
        WordKnowledge { probs }
    }

    /// The §3.4 optimal attack under an optional size budget: all words with
    /// positive probability, most probable first; ties broken by word string
    /// so the attack is deterministic.
    pub fn optimal_attack(&self, budget: Option<usize>) -> Vec<String> {
        let mut words: Vec<(&String, f64)> =
            self.probs.iter().map(|(w, &p)| (w, p)).collect();
        words.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("probabilities are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        let take = budget.unwrap_or(words.len()).min(words.len());
        words[..take].iter().map(|(w, _)| (*w).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{i:03}")).collect()
    }

    #[test]
    fn uniform_knowledge_yields_dictionary_attack() {
        let lexicon = lex(100);
        let k = WordKnowledge::uniform(&lexicon, 0.01);
        let attack = k.optimal_attack(None);
        // All lexicon words included — exactly the dictionary attack.
        assert_eq!(attack.len(), 100);
        let mut sorted = attack.clone();
        sorted.sort();
        let mut expect = lexicon.clone();
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn point_mass_yields_focused_attack() {
        let target = lex(20);
        let k = WordKnowledge::point_mass(&target);
        let attack = k.optimal_attack(None);
        assert_eq!(attack.len(), 20);
        assert!(attack.iter().all(|w| target.contains(w)));
    }

    #[test]
    fn budget_takes_most_probable_words() {
        let mut k = WordKnowledge::none();
        k.set("rare", 0.1);
        k.set("common", 0.9);
        k.set("medium", 0.5);
        assert_eq!(k.optimal_attack(Some(2)), vec!["common", "medium"]);
        assert_eq!(k.optimal_attack(Some(0)), Vec::<String>::new());
        // Budget larger than support is fine.
        assert_eq!(k.optimal_attack(Some(99)).len(), 3);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut k = WordKnowledge::none();
        k.set("bbb", 0.5);
        k.set("aaa", 0.5);
        assert_eq!(k.optimal_attack(Some(1)), vec!["aaa"]);
    }

    #[test]
    fn interpolation_blends_supports() {
        let dict = WordKnowledge::uniform(&lex(10), 0.2);
        let focus = WordKnowledge::point_mass(&lex(3));
        let mid = dict.interpolate(&focus, 0.5);
        // w000..w002 get 0.5·0.2 + 0.5·1.0 = 0.6; others 0.1.
        assert!((mid.prob("w000") - 0.6).abs() < 1e-12);
        assert!((mid.prob("w005") - 0.1).abs() < 1e-12);
        // Under a budget of 3, the known-target words win.
        assert_eq!(mid.optimal_attack(Some(3)), vec!["w000", "w001", "w002"]);
    }

    #[test]
    fn set_zero_removes_word() {
        let mut k = WordKnowledge::none();
        k.set("x", 0.5);
        assert_eq!(k.support_size(), 1);
        k.set("x", 0.0);
        assert_eq!(k.support_size(), 0);
        assert_eq!(k.prob("x"), 0.0);
    }
}
