//! Defense stacking: RONI admission control (§5.1) followed by dynamic
//! threshold calibration (§5.2).
//!
//! The two defenses fail in complementary ways — RONI catches messages with
//! *large individual* training impact (dictionary attack emails) but not
//! attacks whose damage only shows on future mail (focused), while the
//! dynamic threshold repairs *rank-preserving* score shifts but pays with
//! spam-as-unsure inflation. Stacking them is the natural "future work"
//! configuration: screen first so calibration sees a cleaner pool, then
//! calibrate so residual shift is absorbed. The `defense_matrix`
//! experiment quantifies where the stack beats each component.

use crate::roni::{RoniConfig, RoniDefense};
use crate::threshold::{calibrate, CalibratedFilter, ThresholdConfig, TrainItem};
use sb_email::{Dataset, LabeledEmail};
use sb_filter::FilterOptions;
use sb_intern::TokenId;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the stacked defense.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedConfig {
    /// RONI admission-control parameters.
    pub roni: RoniConfig,
    /// Threshold-calibration parameters.
    pub threshold: ThresholdConfig,
}

impl Default for CombinedConfig {
    fn default() -> Self {
        Self {
            roni: RoniConfig::default(),
            threshold: ThresholdConfig::loose(),
        }
    }
}

/// What the stacked defense produced.
pub struct CombinedOutcome {
    /// Indices (into the candidate slice) admitted to training.
    pub admitted: Vec<usize>,
    /// Indices rejected by the RONI screen.
    pub rejected: Vec<usize>,
    /// The calibrated filter trained on trusted + admitted messages.
    pub filter: CalibratedFilter,
}

impl CombinedOutcome {
    /// Fraction of candidates rejected.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.admitted.len() + self.rejected.len();
        if total == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / total as f64
        }
    }
}

/// Run the stacked defense: RONI-screen `candidates` against the `trusted`
/// pool, then train and threshold-calibrate on trusted + admitted.
///
/// `trusted` is the §5.1 "initial pool of emails given to SpamBayes for
/// training" — it must be large enough for the RONI trials
/// (`roni.train_size + roni.val_size`) and is assumed clean.
pub fn defend(
    trusted: &Dataset,
    candidates: &[LabeledEmail],
    cfg: &CombinedConfig,
    opts: FilterOptions,
    rng: &mut Xoshiro256pp,
) -> CombinedOutcome {
    let tokenizer = Tokenizer::new();

    // Phase 1: RONI admission control. Candidates are tokenized and
    // interned once, screened in one parallel overlay sweep, and their id
    // sets reused for calibration below.
    let roni = RoniDefense::new(cfg.roni, trusted, opts, rng);
    let interner = sb_intern::Interner::global();
    let candidate_ids: Vec<Arc<Vec<TokenId>>> = candidates
        .iter()
        .map(|m| Arc::new(interner.intern_set(&tokenizer.token_set(&m.email))))
        .collect();
    let (admitted, rejected) = roni.screen_ids(&candidate_ids);

    // Phase 2: calibrate on trusted + admitted.
    let mut items: Vec<TrainItem> = trusted
        .emails()
        .iter()
        .map(|m| TrainItem::new(tokenizer.token_set(&m.email), m.label))
        .collect();
    for &i in &admitted {
        items.push(TrainItem::from_ids(
            Arc::clone(&candidate_ids[i]),
            candidates[i].label,
        ));
    }
    let filter = calibrate(&items, cfg.threshold, opts, rng);

    CombinedOutcome {
        admitted,
        rejected,
        filter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackGenerator;
    use crate::dictionary::{DictionaryAttack, DictionaryKind};
    use sb_corpus::{CorpusConfig, TrecCorpus};
    use sb_email::Label;
    use sb_filter::Verdict;

    fn trusted_pool(seed: u64, n: usize) -> TrecCorpus {
        TrecCorpus::generate(&CorpusConfig::with_size(n, 0.5), seed)
    }

    #[test]
    fn clean_candidates_are_admitted() {
        let corpus = trusted_pool(1, 200);
        let trusted = corpus.dataset();
        // Fresh clean candidates from the same distribution.
        let candidates: Vec<LabeledEmail> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    LabeledEmail::ham(corpus.fresh_ham(i))
                } else {
                    LabeledEmail::spam(corpus.fresh_spam(i))
                }
            })
            .collect();
        let mut rng = Xoshiro256pp::new(7);
        let out = defend(
            trusted,
            &candidates,
            &CombinedConfig::default(),
            FilterOptions::default(),
            &mut rng,
        );
        assert!(
            out.rejection_rate() <= 0.2,
            "clean mail should pass the screen: {:?} rejected",
            out.rejected
        );
        // The calibrated filter still works.
        let v = out.filter.classify(&corpus.fresh_ham(99));
        assert_ne!(v.verdict, Verdict::Spam);
    }

    #[test]
    fn dictionary_attack_is_rejected_and_filter_survives() {
        let corpus = trusted_pool(2, 200);
        let trusted = corpus.dataset();
        let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(5_000));
        let mut rng = Xoshiro256pp::new(11);
        let batch = attack.generate(10, &mut rng);

        let mut candidates: Vec<LabeledEmail> = batch
            .materialize()
            .into_iter()
            .map(|e| LabeledEmail::new(e, Label::Spam))
            .collect();
        // Mix in clean candidates.
        for i in 0..10 {
            candidates.push(LabeledEmail::ham(corpus.fresh_ham(i)));
        }

        let out = defend(
            trusted,
            &candidates,
            &CombinedConfig::default(),
            FilterOptions::default(),
            &mut rng,
        );
        // Every attack email (indices 0..10) must be rejected.
        for i in 0..10 {
            assert!(
                out.rejected.contains(&i),
                "attack email {i} slipped past RONI"
            );
        }
        // Ham still reaches the inbox under the calibrated filter.
        let mut ham_ok = 0;
        for k in 100..150 {
            if out.filter.classify(&corpus.fresh_ham(k)).verdict == Verdict::Ham {
                ham_ok += 1;
            }
        }
        assert!(ham_ok >= 35, "calibrated filter lost ham: {ham_ok}/50");
    }

    #[test]
    fn outcome_accounting_is_total() {
        let corpus = trusted_pool(3, 150);
        let candidates: Vec<LabeledEmail> = (0..7)
            .map(|i| LabeledEmail::ham(corpus.fresh_ham(i)))
            .collect();
        let mut rng = Xoshiro256pp::new(5);
        let out = defend(
            corpus.dataset(),
            &candidates,
            &CombinedConfig::default(),
            FilterOptions::default(),
            &mut rng,
        );
        let mut all: Vec<usize> = out.admitted.iter().chain(&out.rejected).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_candidates_is_fine() {
        let corpus = trusted_pool(4, 150);
        let mut rng = Xoshiro256pp::new(5);
        let out = defend(
            corpus.dataset(),
            &[],
            &CombinedConfig::default(),
            FilterOptions::default(),
            &mut rng,
        );
        assert!(out.admitted.is_empty() && out.rejected.is_empty());
        assert_eq!(out.rejection_rate(), 0.0);
    }
}
