//! The ham-labeled attack — §2.2's closing remark, built out.
//!
//! The paper restricts its own attacks to spam-labeled training data but
//! notes that "using ham-labeled attack emails could enable more powerful
//! attacks that place spam in a user's inbox" — a **Causative Integrity
//! Targeted** attack in the §3.1 taxonomy. This module implements that
//! extension so the defense experiments can probe it:
//!
//! The attacker plans a future spam campaign with a known vocabulary. Ahead
//! of it, they send innocuous-looking *chaff* emails carrying the campaign
//! vocabulary amid plausible business prose. If any of the victim's
//! labeling paths deposits chaff into training as ham — auto-labeling
//! whatever the current filter delivered to the inbox is the common one —
//! the campaign tokens acquire hammy scores, and the later campaign sails
//! through the filter.
//!
//! Unlike the availability attacks, the chaff must *itself* look ham to the
//! current filter (or it never gets the ham label), which is why it blends
//! camouflage tokens sampled from the victim's observable vocabulary.

use crate::attack::{build_attack_email, AttackBatch, AttackGenerator, HeaderMode};
use crate::taxonomy::AttackClass;
use sb_email::{Email, Label};
use sb_stats::rng::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// Configuration of the chaff emails.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamLabelAttack {
    /// Vocabulary of the future spam campaign (what the attack launders).
    campaign_tokens: Vec<String>,
    /// Plausibly-ham vocabulary blended in so the chaff is delivered (and
    /// auto-labeled) as ham.
    camouflage: Vec<String>,
    /// Camouflage words sampled into each chaff email.
    camouflage_per_email: usize,
}

impl HamLabelAttack {
    /// Build the attack. `campaign_tokens` is the future campaign's
    /// vocabulary; `camouflage` is the ham-ish padding pool (e.g. tokens
    /// scraped from the victim's public writing).
    pub fn new(
        campaign_tokens: Vec<String>,
        camouflage: Vec<String>,
        camouflage_per_email: usize,
    ) -> Self {
        assert!(!campaign_tokens.is_empty(), "campaign vocabulary is empty");
        assert!(
            camouflage.len() >= camouflage_per_email,
            "camouflage pool smaller than per-email sample"
        );
        Self {
            campaign_tokens,
            camouflage,
            camouflage_per_email,
        }
    }

    /// The campaign vocabulary.
    pub fn campaign_tokens(&self) -> &[String] {
        &self.campaign_tokens
    }

    /// Taxonomy position: Causative **Integrity** Targeted.
    pub fn class(&self) -> AttackClass {
        AttackClass {
            influence: crate::taxonomy::Influence::Causative,
            violation: crate::taxonomy::Violation::Integrity,
            specificity: crate::taxonomy::Specificity::Targeted,
        }
    }

    /// The label the attack needs its chaff trained under — the whole point
    /// of the extension.
    pub const fn training_label() -> Label {
        Label::Ham
    }

    /// Generate `n` chaff emails. Each carries the full campaign vocabulary
    /// plus an independent camouflage sample, with empty headers (§2.2's
    /// attacker controls bodies, not headers).
    pub fn generate(&self, n: u32, rng: &mut Xoshiro256pp) -> AttackBatch {
        let mut groups = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let mut words = self.campaign_tokens.clone();
            // Sample camouflage without replacement (partial Fisher–Yates;
            // `next_below` keeps the draw unbiased on the full u64 stream).
            let mut pool = self.camouflage.clone();
            for k in 0..self.camouflage_per_email {
                let j = k + rng.next_below((pool.len() - k) as u64) as usize;
                pool.swap(k, j);
            }
            words.extend_from_slice(&pool[..self.camouflage_per_email]);
            groups.push((build_attack_email(&words, &HeaderMode::Empty), 1));
        }
        AttackBatch::new(groups)
    }

    /// Generate one campaign spam message (what the attacker sends *after*
    /// the poisoning): the campaign vocabulary plus a little unique filler,
    /// the way real campaign blasts vary their padding.
    pub fn campaign_spam(&self, i: u64) -> Email {
        let mut words = self.campaign_tokens.clone();
        words.push(format!("blast{i:05}"));
        build_attack_email(&words, &HeaderMode::Empty)
    }
}

/// The chaff stream as a campaign-schedulable generator (the scenario
/// engine's `ham-chaff:<n>` attack kind). Inside the organization
/// simulation the §2.2 restriction still applies — delivered chaff carries
/// its ground-truth spam label into the pool — so a scheduled chaff
/// campaign measures the attack *under* correct labeling (where it
/// backfires); the unrestricted auto-labeling variant lives in the
/// `hamattack` experiment.
impl AttackGenerator for HamLabelAttack {
    fn name(&self) -> String {
        format!("ham-chaff-{}", self.campaign_tokens.len())
    }

    fn class(&self) -> AttackClass {
        HamLabelAttack::class(self)
    }

    fn generate(&self, n: u32, rng: &mut Xoshiro256pp) -> AttackBatch {
        HamLabelAttack::generate(self, n, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_filter::{SpamBayes, Verdict};

    fn campaign() -> Vec<String> {
        ["replica", "timepiece", "luxury", "wholesale", "bargain"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn camouflage() -> Vec<String> {
        (0..40).map(|i| format!("hamword{i:02}")).collect()
    }

    /// Filter trained on a toy distribution where camouflage words are ham.
    fn victim_filter() -> SpamBayes {
        let mut f = SpamBayes::new();
        let camo = camouflage();
        for i in 0..20 {
            let ham_words: Vec<String> =
                (0..5).map(|k| camo[(i * 2 + k) % camo.len()].clone()).collect();
            f.train(
                &build_attack_email(&ham_words, &HeaderMode::Empty),
                Label::Ham,
            );
            f.train(
                &Email::builder()
                    .body(format!("cheap pills offer blast{i}"))
                    .build(),
                Label::Spam,
            );
        }
        f
    }

    #[test]
    fn taxonomy_is_causative_integrity_targeted() {
        let atk = HamLabelAttack::new(campaign(), camouflage(), 10);
        let class = atk.class();
        assert_eq!(class.influence, crate::taxonomy::Influence::Causative);
        assert_eq!(class.violation, crate::taxonomy::Violation::Integrity);
        assert_eq!(class.specificity, crate::taxonomy::Specificity::Targeted);
        assert_eq!(HamLabelAttack::training_label(), Label::Ham);
    }

    #[test]
    fn chaff_carries_campaign_and_camouflage() {
        let atk = HamLabelAttack::new(campaign(), camouflage(), 10);
        let batch = atk.generate(5, &mut Xoshiro256pp::new(3));
        assert_eq!(batch.len(), 5);
        for (email, _) in batch.groups() {
            assert!(email.has_empty_headers());
            for w in campaign() {
                assert!(email.body().contains(&w), "campaign word {w} missing");
            }
        }
    }

    #[test]
    fn chaff_emails_vary_in_camouflage() {
        let atk = HamLabelAttack::new(campaign(), camouflage(), 10);
        let batch = atk.generate(4, &mut Xoshiro256pp::new(9));
        let bodies: std::collections::HashSet<&str> = batch
            .groups()
            .iter()
            .map(|(e, _)| e.body())
            .collect();
        assert_eq!(bodies.len(), 4, "chaff must not be byte-identical");
    }

    #[test]
    fn chaff_is_delivered_as_ham_by_the_current_filter() {
        // Pre-condition for the attack to work at all: the chaff must not
        // look spammy to the filter it is trying to poison.
        let f = victim_filter();
        let atk = HamLabelAttack::new(campaign(), camouflage(), 15);
        let batch = atk.generate(5, &mut Xoshiro256pp::new(11));
        for (email, _) in batch.groups() {
            let v = f.classify(email);
            assert_ne!(v.verdict, Verdict::Spam, "chaff flagged: {}", v.score);
        }
    }

    #[test]
    fn poisoning_lets_the_campaign_through() {
        let mut f = victim_filter();
        let atk = HamLabelAttack::new(campaign(), camouflage(), 10);

        // Before: the campaign spam is at best unsure (its tokens unknown).
        let before = f.classify(&atk.campaign_spam(0));

        // Chaff trained as ham (the victim's auto-labeling path).
        let batch = atk.generate(30, &mut Xoshiro256pp::new(17));
        for (email, _) in batch.groups() {
            f.train(email, Label::Ham);
        }
        let after = f.classify(&atk.campaign_spam(1));
        assert!(
            after.score < before.score - 0.05,
            "campaign score must drop: {} -> {}",
            before.score,
            after.score
        );
        assert_eq!(
            after.verdict,
            Verdict::Ham,
            "campaign must reach the inbox: score {}",
            after.score
        );
    }

    #[test]
    fn spam_labeled_chaff_backfires() {
        // If the victim labels the chaff correctly (as §2.2's restriction
        // assumes), the campaign gets *more* blocked, not less.
        let mut f = victim_filter();
        let atk = HamLabelAttack::new(campaign(), camouflage(), 10);
        let before = f.classify(&atk.campaign_spam(0));
        let batch = atk.generate(30, &mut Xoshiro256pp::new(23));
        for (email, _) in batch.groups() {
            f.train(email, Label::Spam);
        }
        let after = f.classify(&atk.campaign_spam(1));
        assert!(after.score >= before.score - 1e-9);
        assert_eq!(after.verdict, Verdict::Spam);
    }

    #[test]
    #[should_panic(expected = "campaign vocabulary is empty")]
    fn empty_campaign_rejected() {
        let _ = HamLabelAttack::new(vec![], camouflage(), 5);
    }
}
