//! Dictionary attacks (§3.2): Causative Availability Indiscriminate.
//!
//! Every attack email contains an entire lexicon, so that after training
//! (as spam) *every* lexicon word's score rises and future ham that uses
//! those words is filtered. Three lexicons, in increasing attacker
//! knowledge / effectiveness order (Figure 1):
//!
//! * **Aspell** — the English dictionary (98,568 words): no knowledge of
//!   the victim's actual usage;
//! * **Usenet-K** — the top-K words of the Usenet ranking (the paper uses
//!   K = 90,000, plus truncations for the RONI variants): colloquial usage
//!   knowledge;
//! * **Optimal** — all possible words (§3.4's theoretical optimum,
//!   simulated as the whole vocabulary universe).

use crate::attack::{build_attack_email, AttackBatch, AttackGenerator, HeaderMode};
use crate::taxonomy::AttackClass;
use sb_email::Email;
use sb_stats::rng::Xoshiro256pp;
use std::sync::Arc;

/// Which lexicon the attack floods with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DictionaryKind {
    /// All possible words (the §3.4 optimal attack).
    Optimal,
    /// The full Aspell dictionary surrogate (98,568 words).
    Aspell,
    /// The first half of the Aspell surrogate (a weaker RONI variant).
    AspellHalf,
    /// The `k` top-ranked Usenet words.
    UsenetTop(usize),
}

impl DictionaryKind {
    /// Report name ("optimal", "aspell", "usenet-90k", …).
    pub fn name(self) -> String {
        match self {
            DictionaryKind::Optimal => "optimal".into(),
            DictionaryKind::Aspell => "aspell".into(),
            DictionaryKind::AspellHalf => "aspell-half".into(),
            DictionaryKind::UsenetTop(k) => format!("usenet-{}k", k / 1000),
        }
    }

    /// Materialize the lexicon.
    pub fn lexicon(self) -> Vec<String> {
        match self {
            DictionaryKind::Optimal => sb_corpus::all_words(),
            DictionaryKind::Aspell => sb_corpus::aspell_dictionary(),
            DictionaryKind::AspellHalf => {
                let full = sb_corpus::aspell_dictionary();
                let half = full.len() / 2;
                full.into_iter().take(half).collect()
            }
            DictionaryKind::UsenetTop(k) => sb_corpus::usenet_top(k),
        }
    }

    /// The seven dictionary-attack variants the RONI experiment tests
    /// ("15 repetitions each of seven variants of the dictionary attacks",
    /// §5.1).
    pub fn roni_variants() -> [DictionaryKind; 7] {
        [
            DictionaryKind::Optimal,
            DictionaryKind::Aspell,
            DictionaryKind::AspellHalf,
            DictionaryKind::UsenetTop(90_000),
            DictionaryKind::UsenetTop(50_000),
            DictionaryKind::UsenetTop(25_000),
            DictionaryKind::UsenetTop(10_000),
        ]
    }
}

/// A dictionary attack: a lexicon plus the (empty) header mode.
#[derive(Debug, Clone)]
pub struct DictionaryAttack {
    kind: DictionaryKind,
    prototype: Arc<Email>,
    lexicon_len: usize,
}

impl DictionaryAttack {
    /// Build the attack (materializes the lexicon and the prototype email
    /// once; batches of any size reuse them).
    pub fn new(kind: DictionaryKind) -> Self {
        let lexicon = kind.lexicon();
        let prototype = Arc::new(build_attack_email(&lexicon, &HeaderMode::Empty));
        Self {
            kind,
            prototype,
            lexicon_len: lexicon.len(),
        }
    }

    /// Which lexicon this attack uses.
    pub fn kind(&self) -> DictionaryKind {
        self.kind
    }

    /// Number of words in the lexicon.
    pub fn lexicon_len(&self) -> usize {
        self.lexicon_len
    }

    /// The shared attack-email prototype.
    pub fn prototype(&self) -> &Email {
        &self.prototype
    }
}

impl AttackGenerator for DictionaryAttack {
    fn name(&self) -> String {
        self.kind.name()
    }

    fn class(&self) -> AttackClass {
        AttackClass::causative_availability_indiscriminate()
    }

    fn generate(&self, n: u32, _rng: &mut Xoshiro256pp) -> AttackBatch {
        AttackBatch::new(vec![((*self.prototype).clone(), n)])
    }
}

/// Attack-size helper: the number of attack emails that makes up fraction
/// `frac` of the *contaminated* training set, as in the paper's
/// "1% of 10,000 = 101 messages" arithmetic: solving
/// `a / (n + a) = frac` gives `a = frac·n / (1 − frac)`.
pub fn attack_count_for_fraction(training_set_size: usize, frac: f64) -> u32 {
    assert!((0.0..1.0).contains(&frac), "fraction must be in [0, 1)");
    let a = frac * training_set_size as f64 / (1.0 - frac);
    a.round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_tokenizer::Tokenizer;

    #[test]
    fn paper_attack_sizes() {
        // "By 101 attack emails (1% of 10,000)" — §4.2.
        assert_eq!(attack_count_for_fraction(10_000, 0.01), 101);
        // "at 204 attack emails (2% of the messages)" — §4.2.
        assert_eq!(attack_count_for_fraction(10_000, 0.02), 204);
        assert_eq!(attack_count_for_fraction(10_000, 0.0), 0);
    }

    #[test]
    fn lexicon_sizes_match_paper() {
        assert_eq!(DictionaryKind::Aspell.lexicon().len(), 98_568);
        assert_eq!(DictionaryKind::UsenetTop(90_000).lexicon().len(), 90_000);
        assert_eq!(DictionaryKind::Optimal.lexicon().len(), 150_568);
        assert_eq!(DictionaryKind::AspellHalf.lexicon().len(), 49_284);
    }

    #[test]
    fn batches_are_single_group_with_empty_headers() {
        let atk = DictionaryAttack::new(DictionaryKind::UsenetTop(1_000));
        let mut rng = Xoshiro256pp::new(1);
        let batch = atk.generate(101, &mut rng);
        assert_eq!(batch.len(), 101);
        assert_eq!(batch.groups().len(), 1);
        assert!(batch.groups()[0].0.has_empty_headers());
    }

    #[test]
    fn attack_email_contains_whole_lexicon_as_tokens() {
        let atk = DictionaryAttack::new(DictionaryKind::UsenetTop(2_000));
        let set = Tokenizer::new().token_set(atk.prototype());
        assert_eq!(set.len(), 2_000, "every lexicon word must token-survive");
    }

    #[test]
    fn roni_variant_list_has_seven_distinct_attacks() {
        let variants = DictionaryKind::roni_variants();
        assert_eq!(variants.len(), 7);
        let names: std::collections::HashSet<String> =
            variants.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn taxonomy_classification() {
        let atk = DictionaryAttack::new(DictionaryKind::UsenetTop(1_000));
        assert_eq!(
            atk.class(),
            AttackClass::causative_availability_indiscriminate()
        );
        assert_eq!(atk.name(), "usenet-1k");
    }

    #[test]
    fn generation_ignores_rng() {
        let atk = DictionaryAttack::new(DictionaryKind::UsenetTop(500));
        let b1 = atk.generate(3, &mut Xoshiro256pp::new(1));
        let b2 = atk.generate(3, &mut Xoshiro256pp::new(999));
        assert_eq!(b1.groups()[0].0, b2.groups()[0].0);
    }
}
