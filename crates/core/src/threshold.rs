//! The dynamic threshold defense (§5.2).
//!
//! Distribution-shifting attacks raise *every* score — ham and spam alike —
//! so fixed thresholds (θ0 = 0.15, θ1 = 0.9) misfire while the score
//! *ranking* often survives. This defense re-derives the thresholds from
//! the (possibly contaminated) training data itself:
//!
//! 1. split the training set in half;
//! 2. train a filter `F` on one half, score the other half (validation `V`);
//! 3. with `g(t) = NS,<(t) / (NS,<(t) + NH,>(t))` — `NS,<(t)` spam in `V`
//!    scoring below `t`, `NH,>(t)` ham above `t` — pick θ0 with
//!    `g(θ0) ≈ glow` and θ1 with `g(θ1) ≈ 1 − glow`, for `glow` ∈
//!    {0.05, 0.10} (the paper's Threshold-.05 / Threshold-.10 variants).
//!
//! The deployed classifier is `F` with the recalibrated thresholds, exactly
//! as the paper describes (the filter itself is not retrained on the full
//! set).

use sb_email::Label;
use sb_filter::{FilterOptions, Scored, SpamBayes};
use sb_intern::{FxHashMap, TokenId};
use sb_stats::rng::Xoshiro256pp;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One training item: an interned token set (shared for identical attack
/// emails) and its training label.
#[derive(Debug, Clone)]
pub struct TrainItem {
    /// The deduplicated, interned token set.
    pub ids: Arc<Vec<TokenId>>,
    /// The (possibly attacker-chosen) training label.
    pub label: Label,
}

impl TrainItem {
    /// Convenience constructor: interns the token set on the global table.
    pub fn new(tokens: Vec<String>, label: Label) -> Self {
        Self {
            ids: Arc::new(sb_intern::Interner::global().intern_set(&tokens)),
            label,
        }
    }

    /// Constructor from an already-interned (shared) id set.
    pub fn from_ids(ids: Arc<Vec<TokenId>>, label: Label) -> Self {
        Self { ids, label }
    }
}

/// Defense configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdConfig {
    /// The utility target `glow`: θ0 aims at `g(θ0) = glow`, θ1 at
    /// `g(θ1) = 1 − glow`. Paper variants: 0.05 and 0.10.
    pub g_low: f64,
}

impl ThresholdConfig {
    /// The paper's Threshold-.05 variant.
    pub fn strict() -> Self {
        Self { g_low: 0.05 }
    }

    /// The paper's Threshold-.10 variant.
    pub fn loose() -> Self {
        Self { g_low: 0.10 }
    }
}

/// A filter with dynamically calibrated thresholds.
#[derive(Debug, Clone)]
pub struct CalibratedFilter {
    filter: SpamBayes,
    theta0: f64,
    theta1: f64,
}

impl CalibratedFilter {
    /// The dynamic ham cutoff θ0.
    pub fn theta0(&self) -> f64 {
        self.theta0
    }

    /// The dynamic spam cutoff θ1.
    pub fn theta1(&self) -> f64 {
        self.theta1
    }

    /// The underlying half-trained filter.
    pub fn filter(&self) -> &SpamBayes {
        &self.filter
    }

    /// Classify a pre-tokenized message under the dynamic thresholds.
    /// (The held filter's options already carry θ0/θ1 — see [`calibrate`].)
    pub fn classify_tokens(&self, token_set: &[String]) -> Scored {
        self.filter.classify_tokens(token_set)
    }

    /// Classify a pre-interned message under the dynamic thresholds.
    pub fn classify_ids(&self, ids: &[TokenId]) -> Scored {
        self.filter.classify_ids(ids)
    }

    /// Classify an email under the dynamic thresholds.
    pub fn classify(&self, email: &sb_email::Email) -> Scored {
        let set = self.filter.token_set(email);
        self.classify_tokens(&set)
    }
}

/// Calibrate a dynamic-threshold filter from (possibly contaminated)
/// training items.
pub fn calibrate(
    items: &[TrainItem],
    cfg: ThresholdConfig,
    opts: FilterOptions,
    rng: &mut Xoshiro256pp,
) -> CalibratedFilter {
    assert!(items.len() >= 4, "need at least 4 training items to split");
    assert!((0.0..0.5).contains(&cfg.g_low), "g_low must be in (0, 0.5)");
    let (train_half, val_half) = sb_corpus::split_half(items.len(), rng);

    let mut filter = SpamBayes::new();
    filter.set_options(opts);
    // Identical attack emails share one Arc'd token set; group by pointer so
    // k copies train via the O(|set|) multiplicity path instead of k scans.
    // (Grouping changes nothing semantically: counts are additive.)
    let mut groups: FxHashMap<(*const Vec<TokenId>, Label), u32> = FxHashMap::default();
    for &i in &train_half {
        *groups
            .entry((Arc::as_ptr(&items[i].ids), items[i].label))
            .or_insert(0) += 1;
    }
    // Deterministic training order (counts are additive, but keep ordered
    // iteration anyway so debugging dumps are stable).
    let mut ordered: Vec<(usize, u32)> = Vec::new();
    let mut seen: FxHashMap<(*const Vec<TokenId>, Label), ()> = FxHashMap::default();
    for &i in &train_half {
        let key = (Arc::as_ptr(&items[i].ids), items[i].label);
        if seen.insert(key, ()).is_none() {
            ordered.push((i, groups[&key]));
        }
    }
    for (i, count) in ordered {
        filter.train_ids(&items[i].ids, items[i].label, count);
    }

    // Score the validation half: deduplicate by shared token set
    // (identical attack instances score once and count per instance in
    // g(t)), then classify the distinct sets through the parallel batch
    // API — the score cache shares each token's f(w) across workers.
    let mut uniq: Vec<Arc<Vec<TokenId>>> = Vec::new();
    let mut slot_of: FxHashMap<*const Vec<TokenId>, usize> = FxHashMap::default();
    for &i in &val_half {
        slot_of
            .entry(Arc::as_ptr(&items[i].ids))
            .or_insert_with(|| {
                uniq.push(Arc::clone(&items[i].ids));
                uniq.len() - 1
            });
    }
    let uniq_scores = filter.classify_ids_batch(&uniq);
    let mut scored: Vec<(f64, Label)> = val_half
        .iter()
        .map(|&i| {
            let slot = slot_of[&Arc::as_ptr(&items[i].ids)];
            (uniq_scores[slot].score, items[i].label)
        })
        .collect();
    // sb-lint: allow(panic-path, "classifier scores are finite log-sums; partial_cmp never sees NaN")
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are finite"));

    let (theta0, theta1) = select_thresholds(&scored, cfg.g_low);
    filter.set_options(opts.with_cutoffs(theta0, theta1));
    CalibratedFilter {
        filter,
        theta0,
        theta1,
    }
}

/// Evaluate `g(t)` on candidate thresholds and pick (θ0, θ1).
///
/// Candidates are midpoints between consecutive distinct scores plus the
/// boundaries 0 and 1. `g` is monotone non-decreasing in `t`, so θ0 is the
/// largest candidate with `g ≤ g_low` and θ1 the smallest with
/// `g ≥ 1 − g_low`.
fn select_thresholds(scored_asc: &[(f64, Label)], g_low: f64) -> (f64, f64) {
    let n_spam = scored_asc.iter().filter(|(_, l)| *l == Label::Spam).count();
    let n_ham = scored_asc.len() - n_spam;
    if n_spam == 0 || n_ham == 0 {
        // Degenerate validation split: keep SpamBayes defaults.
        return (0.15, 0.9);
    }
    let mut candidates = vec![0.0f64];
    for w in scored_asc.windows(2) {
        if w[1].0 > w[0].0 {
            candidates.push((w[0].0 + w[1].0) / 2.0);
        }
    }
    candidates.push(1.0);

    // g(t); None when no spam falls below t and no ham above it — a
    // perfectly separating threshold, which qualifies for both θ0 and θ1.
    let g = |t: f64| -> Option<f64> {
        let spam_below = scored_asc
            .iter()
            .filter(|(s, l)| *l == Label::Spam && *s < t)
            .count();
        let ham_above = scored_asc
            .iter()
            .filter(|(s, l)| *l == Label::Ham && *s > t)
            .count();
        let denom = spam_below + ham_above;
        if denom == 0 {
            None
        } else {
            Some(spam_below as f64 / denom as f64)
        }
    };

    let mut theta0 = 0.0f64;
    for &t in &candidates {
        if g(t).is_none_or(|v| v <= g_low) {
            theta0 = theta0.max(t);
        }
    }
    let mut theta1 = 1.0f64;
    for &t in candidates.iter().rev() {
        if g(t).is_none_or(|v| v >= 1.0 - g_low) {
            theta1 = theta1.min(t);
        }
    }
    if theta0 > theta1 {
        let mid = (theta0 + theta1) / 2.0;
        (mid, mid)
    } else {
        (theta0, theta1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_corpus::{CorpusConfig, TrecCorpus};
    use sb_filter::Verdict;
    use sb_tokenizer::Tokenizer;

    fn items_from_corpus(n: usize, seed: u64) -> Vec<TrainItem> {
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(n, 0.5), seed);
        let tk = Tokenizer::new();
        corpus
            .emails()
            .iter()
            .map(|m| TrainItem::new(tk.token_set(&m.email), m.label))
            .collect()
    }

    #[test]
    fn clean_data_yields_ordered_thresholds() {
        let items = items_from_corpus(400, 5);
        let mut rng = Xoshiro256pp::new(1);
        let cal = calibrate(&items, ThresholdConfig::strict(), FilterOptions::default(), &mut rng);
        assert!(cal.theta0() <= cal.theta1());
        assert!((0.0..=1.0).contains(&cal.theta0()));
        assert!((0.0..=1.0).contains(&cal.theta1()));
    }

    #[test]
    fn calibrated_filter_still_separates_clean_traffic() {
        let items = items_from_corpus(400, 6);
        let mut rng = Xoshiro256pp::new(2);
        let cal = calibrate(&items, ThresholdConfig::loose(), FilterOptions::default(), &mut rng);
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(400, 0.5), 6);
        let tk = Tokenizer::new();
        let fresh_ham = corpus.fresh_ham(3);
        let fresh_spam = corpus.fresh_spam(3);
        let vh = cal.classify_tokens(&tk.token_set(&fresh_ham)).verdict;
        let vs = cal.classify_tokens(&tk.token_set(&fresh_spam)).verdict;
        assert_ne!(vh, Verdict::Spam, "clean ham must not be filtered");
        assert_ne!(vs, Verdict::Ham, "clean spam must not reach the inbox");
    }

    #[test]
    fn select_thresholds_on_well_separated_scores() {
        // 10 ham at low scores, 10 spam at high scores.
        let mut scored: Vec<(f64, Label)> = (0..10)
            .map(|i| (0.01 * i as f64, Label::Ham))
            .chain((0..10).map(|i| (0.9 + 0.01 * i as f64, Label::Spam)))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (t0, t1) = select_thresholds(&scored, 0.05);
        // Any threshold in the gap (0.09, 0.9) separates perfectly;
        // θ0 must sit above all ham, θ1 below all spam… conservatively:
        assert!(t0 >= 0.09 - 1e-9, "t0 = {t0}");
        assert!(t1 <= 0.91 + 1e-9, "t1 = {t1}");
        assert!(t0 <= t1);
    }

    #[test]
    fn shifted_scores_still_yield_separating_thresholds() {
        // Simulates the attack's distribution shift: ham now scores
        // 0.50–0.69, spam 0.66–0.98 (overlapping, as post-attack scores
        // are). Static thresholds (0.15/0.9) would filter every ham;
        // dynamic ones must move up and keep an unsure band.
        let mut scored: Vec<(f64, Label)> = (0..20)
            .map(|i| (0.5 + 0.01 * i as f64, Label::Ham))
            .chain((0..20).map(|i| (0.66 + 0.017 * i as f64, Label::Spam)))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (t0, t1) = select_thresholds(&scored, 0.10);
        // The thresholds must move far above the static 0.15.
        assert!(t0 > 0.4, "θ0 = {t0} did not adapt");
        assert!(t1 >= t0);
        assert!(t1 < 1.0, "θ1 = {t1} did not adapt");
    }

    #[test]
    fn degenerate_single_class_validation_falls_back() {
        let scored: Vec<(f64, Label)> = (0..10).map(|i| (0.1 * i as f64, Label::Ham)).collect();
        let (t0, t1) = select_thresholds(&scored, 0.05);
        assert_eq!((t0, t1), (0.15, 0.9));
    }

    #[test]
    fn strict_variant_has_wider_unsure_band_than_loose() {
        // Threshold-.05 "has a wider range for unsure messages than the
        // Threshold-.10 variation" (Fig. 5 caption).
        let items = items_from_corpus(400, 7);
        let strict = calibrate(
            &items,
            ThresholdConfig::strict(),
            FilterOptions::default(),
            &mut Xoshiro256pp::new(3),
        );
        let loose = calibrate(
            &items,
            ThresholdConfig::loose(),
            FilterOptions::default(),
            &mut Xoshiro256pp::new(3),
        );
        let strict_band = strict.theta1() - strict.theta0();
        let loose_band = loose.theta1() - loose.theta0();
        assert!(
            strict_band >= loose_band - 1e-9,
            "strict band {strict_band} vs loose {loose_band}"
        );
    }

    #[test]
    #[should_panic]
    fn too_few_items_rejected() {
        let mut rng = Xoshiro256pp::new(4);
        let _ = calibrate(
            &[TrainItem::new(vec!["a".into()], Label::Ham)],
            ThresholdConfig::strict(),
            FilterOptions::default(),
            &mut rng,
        );
    }
}
