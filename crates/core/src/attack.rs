//! Attack-email construction and the attack interface.
//!
//! The contamination assumption (§2.2) with its two restrictions is encoded
//! here: attackers control **bodies only** — attack emails carry either
//! empty headers (dictionary attacks) or headers copied verbatim from a
//! random existing spam (focused attack, §4.1) — and attack emails are
//! always **trained as spam**.

use crate::taxonomy::AttackClass;
use sb_email::{Email, Label};
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;

/// How attack emails obtain headers (§4.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum HeaderMode {
    /// No headers at all (dictionary attacks).
    #[default]
    Empty,
    /// Headers copied from this existing spam message (focused attack).
    Donor(Email),
}

/// A batch of attack emails, grouped by identical prototypes.
///
/// Dictionary attacks send `n` byte-identical emails: one group with count
/// `n`. Storing groups instead of `n` cloned ~800 KB bodies keeps a
/// 10%-contamination sweep at paper scale in tens of megabytes instead of
/// tens of gigabytes, and lets trainers use the `train_many` multiplicity
/// fast path.
#[derive(Debug, Clone)]
pub struct AttackBatch {
    groups: Vec<(Email, u32)>,
}

impl AttackBatch {
    /// Build from prototype/count pairs.
    pub fn new(groups: Vec<(Email, u32)>) -> Self {
        Self { groups }
    }

    /// The prototype groups.
    pub fn groups(&self) -> &[(Email, u32)] {
        &self.groups
    }

    /// Total number of attack emails in the batch.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|&(_, n)| n as usize).sum()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokenized form: `(token_set, count)` per group. This is what gets
    /// trained (always as spam — the §2.2 restriction).
    pub fn token_groups(&self, tokenizer: &Tokenizer) -> Vec<(Vec<String>, u32)> {
        self.groups
            .iter()
            .map(|(e, n)| (tokenizer.token_set(e), *n))
            .collect()
    }

    /// Interned form: `(id_set, count)` per group — tokenize + intern once
    /// per prototype, then train/untrain by id however many times the
    /// experiment sweeps over the batch.
    pub fn token_id_groups(
        &self,
        tokenizer: &Tokenizer,
        interner: &sb_intern::Interner,
    ) -> Vec<(Vec<sb_intern::TokenId>, u32)> {
        self.groups
            .iter()
            .map(|(e, n)| (interner.intern_set(&tokenizer.token_set(e)), *n))
            .collect()
    }

    /// Materialize every individual email (for mbox export / inspection;
    /// beware memory at paper scale).
    pub fn materialize(&self) -> Vec<Email> {
        let mut out = Vec::with_capacity(self.len());
        for (e, n) in &self.groups {
            for _ in 0..*n {
                out.push(e.clone());
            }
        }
        out
    }

    /// The label attack emails are trained with: always spam (§2.2).
    pub const fn training_label() -> Label {
        Label::Spam
    }
}

/// Common interface of the paper's attacks.
pub trait AttackGenerator {
    /// Short identifier used in reports ("optimal", "usenet-90k", …).
    fn name(&self) -> String;

    /// Where the attack sits in the §3.1 taxonomy.
    fn class(&self) -> AttackClass;

    /// Produce a batch of `n` attack emails. `rng` drives any stochastic
    /// choices (e.g. focused-attack token guessing); dictionary attacks are
    /// deterministic and ignore it.
    fn generate(&self, n: u32, rng: &mut Xoshiro256pp) -> AttackBatch;
}

/// Assemble an attack email from a word list and a header mode.
///
/// Words are joined with spaces and wrapped into ~15-word lines; bodies are
/// exactly what the tokenizer will see (attack words are fixed points of
/// tokenization — validated by the corpus substrate's tests).
pub fn build_attack_email(words: &[String], header: &HeaderMode) -> Email {
    let mut body = String::with_capacity(words.len() * 8);
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            if i % 15 == 0 {
                body.push('\n');
            } else {
                body.push(' ');
            }
        }
        body.push_str(w);
    }
    body.push('\n');
    match header {
        HeaderMode::Empty => {
            let mut e = Email::new();
            e.set_body(body);
            e
        }
        HeaderMode::Donor(donor) => Email::from_parts(donor.headers().to_vec(), body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("word{i:04}")).collect()
    }

    #[test]
    fn empty_header_mode_yields_headerless_email() {
        let e = build_attack_email(&words(30), &HeaderMode::Empty);
        assert!(e.has_empty_headers());
        assert!(e.body().contains("word0000"));
        assert!(e.body().contains("word0029"));
    }

    #[test]
    fn donor_header_mode_copies_headers() {
        let donor = Email::builder()
            .from_addr("spammer@evil.example")
            .subject("donor subject")
            .body("donor body is NOT copied")
            .build();
        let e = build_attack_email(&words(5), &HeaderMode::Donor(donor.clone()));
        assert_eq!(e.from_addr(), donor.from_addr());
        assert_eq!(e.subject(), donor.subject());
        assert!(!e.body().contains("donor body"));
    }

    #[test]
    fn bodies_wrap_lines() {
        let e = build_attack_email(&words(40), &HeaderMode::Empty);
        assert!(e.body().matches('\n').count() >= 3);
    }

    #[test]
    fn attack_words_tokenize_to_themselves() {
        let lexicon: Vec<String> = sb_corpus::usenet_top(50);
        let e = build_attack_email(&lexicon, &HeaderMode::Empty);
        let set = Tokenizer::new().token_set(&e);
        for w in &lexicon {
            assert!(set.contains(w), "lexicon word {w:?} missing after tokenize");
        }
    }

    #[test]
    fn batch_counts_and_token_groups() {
        let proto = build_attack_email(&words(10), &HeaderMode::Empty);
        let batch = AttackBatch::new(vec![(proto.clone(), 7)]);
        assert_eq!(batch.len(), 7);
        assert!(!batch.is_empty());
        let tg = batch.token_groups(&Tokenizer::new());
        assert_eq!(tg.len(), 1);
        assert_eq!(tg[0].1, 7);
        assert_eq!(tg[0].0.len(), 10);
        assert_eq!(batch.materialize().len(), 7);
    }

    #[test]
    fn training_label_is_always_spam() {
        assert_eq!(AttackBatch::training_label(), Label::Spam);
    }
}
