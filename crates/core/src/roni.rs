//! The Reject On Negative Impact (RONI) defense (§5.1).
//!
//! Before admitting a candidate message into the training set, measure its
//! incremental effect: sample small train/validation splits from the clean
//! pool, compare validation performance with and without the candidate, and
//! reject messages whose inclusion costs many previously-correct ham
//! classifications.
//!
//! Paper parameters (Table 1): training sets of 20, validation sets of 50,
//! 5 independent trials; the statistic is the average decrease in
//! correctly-classified ham. The paper reports every dictionary-attack email
//! costing ≥ 6.8 ham-as-ham (of 25) while non-attack spam costs ≤ 4.4 — a
//! separable gap that a simple threshold exploits.
//!
//! ## Overlay measurement
//!
//! Every candidate costs `trials × |val|` classifications; a screened
//! pipeline pays that per *arriving message* per epoch. Candidates are
//! measured through `sb_filter::overlay`: each trial lays a read-only
//! [`sb_filter::OverlayDb`] — the candidate's token counts plus `NS + 1` —
//! over its trained base and sweeps the validation set against the
//! overlay. Compared with the train → sweep → untrain loop this
//! measurement
//!
//! * never mutates a trial's [`sb_filter::TokenDb`], so the base
//!   generation (and its warm score cache) survives an arbitrarily long
//!   [`RoniDefense::screen_ids`] sweep untouched;
//! * is allocation-free in steady state: the candidate delta is built
//!   once (a sorted-id + bitset view) and shared by every trial, and
//!   each worker thread pools one dense score scratch plus one verdict
//!   cache per trial (`MeasureState`), invalidated in O(1) on binding
//!   changes;
//! * skips whole validation messages: a message none of whose
//!   candidate-member tokens is δ-eligible provably classifies exactly
//!   as under the candidate-free `NS + 1` shift, so its cached verdict
//!   is reused across all candidates with that shift;
//! * needs only `&self`, so [`RoniDefense::measure_ids`] fans trials out
//!   on scoped threads and [`RoniDefense::measure_ids_batch`]
//!   parallelizes across candidates **without cloning any trial
//!   database** (the old path cloned every trial's counts per worker);
//! * is bit-identical to the train/untrain path — property-tested below
//!   against [`RoniDefense::measure_ids_train_untrain`], which is kept
//!   (behind `cfg(test)` / the `train-untrain` feature) as the
//!   reference implementation and benchmark baseline.
//!
//! The substrate layers underneath still apply: the pool is tokenized and
//! interned **once** at construction, trials and candidates move
//! `&[TokenId]` only, and each trial's baseline sweep fills its
//! generation-stamped score cache exactly once for the life of the
//! evaluator.

use sb_email::{Dataset, Label};
use sb_filter::{CandidateDelta, FilterOptions, OverlayScratch, ScoreDb, SpamBayes, Verdict};
use sb_intern::{par, AsIdSlice, TokenId};
use std::cell::RefCell;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// RONI parameters (defaults = paper Table 1, RONI column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoniConfig {
    /// Per-trial training-set size.
    pub train_size: usize,
    /// Per-trial validation-set size.
    pub val_size: usize,
    /// Number of independent (train, validation) samples.
    pub trials: usize,
    /// Reject when the mean decrease in correctly-classified ham meets or
    /// exceeds this many messages. The paper sets its threshold inside the
    /// measured separability gap (theirs: ≥ 6.8 attack vs ≤ 4.4
    /// non-attack); ours sits inside the gap measured on the synthetic
    /// corpus by `repro roni` (attack ≥ 5.4 vs non-attack ≤ 4.8).
    pub reject_threshold: f64,
}

impl Default for RoniConfig {
    fn default() -> Self {
        Self {
            train_size: 20,
            val_size: 50,
            trials: 5,
            reject_threshold: 5.1,
        }
    }
}

/// The measured impact of one candidate message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoniMeasurement {
    /// Per-trial decrease in ham classified as ham (positive = harmful).
    pub ham_correct_deltas: Vec<f64>,
    /// Per-trial decrease in spam classified as spam (positive = harmful).
    pub spam_correct_deltas: Vec<f64>,
    /// Mean of `ham_correct_deltas` — the paper's rejection statistic.
    pub mean_ham_impact: f64,
    /// Whether the configured threshold rejects this message.
    pub rejected: bool,
}

/// Error from the train/untrain measurement path: the exact untrain of a
/// just-trained candidate failed, which means the candidate id slice was
/// mutated mid-measurement or the trial database was corrupted. Propagated
/// (rather than panicking) so a malformed candidate cannot take down a
/// screening worker thread. The overlay path cannot fail: it never
/// mutates, so there is nothing to undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoniError {
    /// Untraining the candidate underflowed a count; the offending trial
    /// filter is left with the candidate still trained.
    Untrain(sb_filter::UntrainError),
}

impl std::fmt::Display for RoniError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoniError::Untrain(e) => write!(f, "candidate measurement failed: {e}"),
        }
    }
}

impl std::error::Error for RoniError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoniError::Untrain(e) => Some(e),
        }
    }
}

/// A RONI evaluator bound to a clean email pool.
///
/// Construction tokenizes + interns the pool once and fixes the `trials`
/// (train, validation) splits, so evaluating many candidates (the
/// experiment evaluates hundreds) amortizes all per-pool work. All
/// measurement APIs take `&self`: overlay scoring never mutates the trial
/// filters.
pub struct RoniDefense {
    cfg: RoniConfig,
    trials: Vec<Trial>,
}

struct Trial {
    filter: SpamBayes,
    val: Vec<(Arc<Vec<TokenId>>, Label)>,
    baseline_ham_correct: usize,
    baseline_spam_correct: usize,
}

/// Worker-local reusable measurement state for one trial: the dense
/// overlay score scratch plus a per-validation-message verdict cache.
///
/// The verdict cache is the screening loop's biggest lever: a validation
/// message containing *no* candidate token classifies identically under
/// every candidate with the same class shift (its tokens' overlay scores
/// depend only on the base counts and `NS + 1`), so its verdict is
/// computed once per (trial, base state) and reused for every further
/// candidate — only messages actually intersecting a candidate pay
/// δ-selection and Fisher combining. Train/untrain measurement can never
/// do this: each candidate mutates the base and invalidates everything.
#[derive(Default)]
struct MeasureState {
    scratch: RefCell<OverlayScratch>,
    verdicts: RefCell<VerdictCache>,
}

#[derive(Default)]
struct VerdictCache {
    /// What the cached verdicts are valid for: `(db uid, generation,
    /// ΔNS, ΔNH)` — the same binding the overlay scratch uses.
    key: Option<(u64, u64, u32, u32)>,
    /// One slot per validation message, filled lazily.
    verdicts: Vec<Option<Verdict>>,
}

impl MeasureState {
    /// One pooled state per trial index on this thread, so bindings (and
    /// with them the cached scores and verdicts) persist across
    /// candidates, batch calls, and `RoniDefense` method boundaries.
    fn thread_local_pool(n: usize) -> Vec<std::rc::Rc<MeasureState>> {
        thread_local! {
            static POOL: RefCell<Vec<std::rc::Rc<MeasureState>>> =
                const { RefCell::new(Vec::new()) };
        }
        POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            while pool.len() < n {
                pool.push(std::rc::Rc::new(MeasureState::default()));
            }
            pool[..n].to_vec()
        })
    }
}

impl Trial {
    /// Measure one candidate against this trial: lay the candidate's
    /// overlay over the trained base and sweep the validation set. The
    /// base database is not touched — no generation bump, no cache
    /// invalidation — and with a reused [`MeasureState`] the sweep is
    /// allocation-free and skips classification entirely for validation
    /// messages the candidate does not intersect.
    fn measure(&self, delta: &CandidateDelta, state: &MeasureState) -> (f64, f64) {
        let overlay = delta.over_with(self.filter.db(), &state.scratch);
        let opts = self.filter.options();
        let db = self.filter.db();
        let (d_spam, d_ham) = delta.class_shift();
        let key = (db.uid(), db.generation(), d_spam, d_ham);
        let mut cache = state.verdicts.borrow_mut();
        if cache.key != Some(key) {
            cache.key = Some(key);
            cache.verdicts.clear();
            cache.verdicts.resize(self.val.len(), None);
        }

        let strength = opts.minimum_prob_strength;
        let mut ham_ok = 0usize;
        let mut spam_ok = 0usize;
        for (vi, (ids, label)) in self.val.iter().enumerate() {
            // Exact skip rule: the candidate can only change this
            // message's verdict through δ(E), and it can only change
            // δ(E) through member tokens that are strength-eligible
            // under the candidate score or under the pure-shift score
            // (an eligible-shift member would have sat in the cached
            // δ(E)). Members ineligible under both — e.g. the common
            // words every message shares — leave δ(E), and hence the
            // verdict, exactly as in the cached shift-only run.
            let effective = ids.iter().any(|&id| {
                delta.contains(id)
                    && ((overlay.score_f(id, opts) - 0.5).abs() >= strength
                        || (overlay.shift_f(id, opts) - 0.5).abs() >= strength)
            });
            let verdict = if effective {
                // Candidate-dependent: classify under this overlay.
                sb_filter::score_token_ids(ids, &overlay, opts).verdict
            } else {
                match cache.verdicts[vi] {
                    Some(v) => v,
                    None => {
                        let v = sb_filter::score_token_ids(ids, &overlay, opts).verdict;
                        cache.verdicts[vi] = Some(v);
                        v
                    }
                }
            };
            match (label, verdict) {
                (Label::Ham, Verdict::Ham) => ham_ok += 1,
                (Label::Spam, Verdict::Spam) => spam_ok += 1,
                _ => {}
            }
        }
        (
            self.baseline_ham_correct as f64 - ham_ok as f64,
            self.baseline_spam_correct as f64 - spam_ok as f64,
        )
    }

    /// The legacy measurement: train, sweep (score cache warm within the
    /// post-train generation), untrain exactly. Kept as the reference the
    /// overlay path is property-tested bit-identical against, and as the
    /// benchmark baseline (`crates/bench/benches/roni_defense.rs`).
    #[cfg(any(test, feature = "train-untrain"))]
    fn measure_train_untrain(&mut self, candidate: &[TokenId]) -> Result<(f64, f64), RoniError> {
        self.filter.train_ids(candidate, Label::Spam, 1);
        let (ham_after, spam_after) =
            correct_counts(self.filter.db(), self.filter.options(), &self.val);
        self.filter
            .untrain_ids(candidate, Label::Spam, 1)
            .map_err(RoniError::Untrain)?;
        Ok((
            self.baseline_ham_correct as f64 - ham_after as f64,
            self.baseline_spam_correct as f64 - spam_after as f64,
        ))
    }
}

impl RoniDefense {
    /// Build the evaluator from a clean pool.
    ///
    /// `pool` must contain at least `train_size + val_size` messages; each
    /// trial samples its train and validation sets disjointly.
    pub fn new(
        cfg: RoniConfig,
        pool: &Dataset,
        opts: FilterOptions,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        assert!(
            pool.len() >= cfg.train_size + cfg.val_size,
            "pool of {} too small for {}+{}",
            pool.len(),
            cfg.train_size,
            cfg.val_size
        );
        let tokenizer = Tokenizer::new();
        let interner = sb_intern::Interner::global();
        // Tokenize + intern once; trials share Arc'd id sets.
        let tokenized: Vec<(Arc<Vec<TokenId>>, Label)> = pool
            .emails()
            .iter()
            .map(|m| {
                (
                    Arc::new(interner.intern_set(&tokenizer.token_set(&m.email))),
                    m.label,
                )
            })
            .collect();

        let trials = (0..cfg.trials)
            .map(|_| {
                let picks =
                    sb_corpus::sample_indices(pool.len(), cfg.train_size + cfg.val_size, rng);
                let (train_idx, val_idx) = picks.split_at(cfg.train_size);
                let mut filter = SpamBayes::new();
                filter.set_options(opts);
                for &i in train_idx {
                    // sb-lint: allow(panic-path, "sample_indices draws from 0..pool.len() and tokenized has one entry per pool message")
                    let (ids, label) = &tokenized[i];
                    filter.train_ids(ids, *label, 1);
                }
                let val: Vec<(Arc<Vec<TokenId>>, Label)> = val_idx
                    .iter()
                    // sb-lint: allow(panic-path, "sample_indices draws from 0..pool.len() and tokenized has one entry per pool message")
                    .map(|&i| tokenized[i].clone())
                    .collect();
                // This baseline sweep is the *only* time a trial's score
                // cache is filled; every later overlay measurement reads
                // through it without invalidating.
                let (baseline_ham_correct, baseline_spam_correct) =
                    correct_counts(filter.db(), filter.options(), &val);
                Trial {
                    filter,
                    val,
                    baseline_ham_correct,
                    baseline_spam_correct,
                }
            })
            .collect();
        Self { cfg, trials }
    }

    /// The active configuration.
    pub fn config(&self) -> &RoniConfig {
        &self.cfg
    }

    /// The score-cache generation of each trial's base database —
    /// diagnostics for the overlay invariant: any amount of candidate
    /// measurement must leave these unchanged.
    pub fn trial_generations(&self) -> Vec<u64> {
        self.trials.iter().map(|t| t.filter.db().generation()).collect()
    }

    /// Measure one candidate given as a token set (interned internally;
    /// candidates are always trained as spam per the contamination
    /// assumption, §2.2).
    pub fn measure(&self, candidate_tokens: &[String]) -> RoniMeasurement {
        let ids = sb_intern::Interner::global().intern_set(candidate_tokens);
        self.measure_ids(&ids)
    }

    /// Measure one pre-interned candidate, fanning the independent trials
    /// out on scoped threads (sequential on single-core hosts, where
    /// spawning would be pure overhead). The candidate delta is built once
    /// and shared by every trial; each trial lays its own overlay over it.
    pub fn measure_ids(&self, candidate: &[TokenId]) -> RoniMeasurement {
        let delta = CandidateDelta::spam_candidate(candidate);
        let deltas: Vec<(f64, f64)> = if self.trials.len() > 1 && par::default_threads() > 1 {
            std::thread::scope(|scope| {
                let delta = &delta;
                let handles: Vec<_> = self
                    .trials
                    .iter()
                    .map(|trial| {
                        scope.spawn(move || {
                            let state = MeasureState::thread_local_pool(1);
                            // sb-lint: allow(panic-path, "thread_local_pool(1) returns exactly one state")
                            trial.measure(delta, &state[0])
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // A join error carries the child's panic payload;
                        // re-raise it verbatim (same policy as
                        // `sb_intern::par`) rather than minting a fresh
                        // panic that hides the original message.
                        h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                    })
                    .collect()
            })
        } else {
            // One pooled state per trial: state `i` always pairs with
            // trial `i`, so its binding — and its memoized scores and
            // verdicts — hold across repeated measurements on this
            // thread.
            let states = MeasureState::thread_local_pool(self.trials.len());
            self.trials
                .iter()
                .zip(&states)
                .map(|(t, s)| t.measure(&delta, s))
                .collect()
        };
        measurement_from_deltas(deltas, self.cfg.reject_threshold)
    }

    /// Measure one pre-interned candidate through the legacy train →
    /// sweep → untrain loop. The overlay path is property-tested
    /// bit-identical to this; it exists for that test and for the
    /// overlay-vs-train/untrain benchmark comparison.
    #[cfg(any(test, feature = "train-untrain"))]
    pub fn measure_ids_train_untrain(
        &mut self,
        candidate: &[TokenId],
    ) -> Result<RoniMeasurement, RoniError> {
        let deltas: Result<Vec<(f64, f64)>, RoniError> = self
            .trials
            .iter_mut()
            .map(|t| t.measure_train_untrain(candidate))
            .collect();
        Ok(measurement_from_deltas(deltas?, self.cfg.reject_threshold))
    }

    /// Measure a candidate given as an email.
    pub fn measure_email(&self, email: &sb_email::Email) -> RoniMeasurement {
        let set = Tokenizer::new().token_set(email);
        self.measure(&set)
    }

    /// Measure a batch of pre-interned candidates in parallel. Overlay
    /// measurement is read-only, so every worker shares the same trial
    /// set — no per-worker database clones (the pre-overlay cost was one
    /// O(vocabulary) counts copy plus a cold score cache per trial per
    /// worker). Each candidate's delta is built once for all trials, and
    /// each worker reuses one dense scratch memo across its whole share
    /// of the batch, so steady-state screening does not allocate.
    pub fn measure_ids_batch(
        &self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> Vec<RoniMeasurement> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let threads = par::default_threads().min(candidates.len());
        let threshold = self.cfg.reject_threshold;
        // One contiguous chunk per worker: the scratch memo is per-chunk
        // state, claimed per (candidate, trial) overlay by epoch bumps.
        let chunk_size = candidates.len().div_ceil(threads);
        let chunks: Vec<&[_]> = candidates.chunks(chunk_size).collect();
        let per_chunk = par::parallel_map(chunks.len(), threads, |k| {
            // Per-worker, per-trial states: trial `i`'s binding stays
            // constant across the worker's whole chunk, so after the
            // first candidate every non-candidate token scores from warm
            // slots and every untouched validation message reuses its
            // cached verdict outright.
            let states = MeasureState::thread_local_pool(self.trials.len());
            // sb-lint: allow(panic-path, "parallel_map hands each worker a k in 0..chunks.len()")
            chunks[k]
                .iter()
                .map(|cand| {
                    let delta = CandidateDelta::spam_candidate(cand.ids());
                    let deltas: Vec<(f64, f64)> = self
                        .trials
                        .iter()
                        .zip(&states)
                        .map(|(t, s)| t.measure(&delta, s))
                        .collect();
                    measurement_from_deltas(deltas, threshold)
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Screen a list of candidates; returns `(kept, rejected)` index lists.
    pub fn screen(&self, candidates: &[Vec<String>]) -> (Vec<usize>, Vec<usize>) {
        let interner = sb_intern::Interner::global();
        let ids: Vec<Vec<TokenId>> = candidates.iter().map(|c| interner.intern_set(c)).collect();
        self.screen_ids(&ids)
    }

    /// Screen pre-interned candidates in parallel; returns `(kept,
    /// rejected)` index lists. The trial databases' generations are
    /// unchanged afterwards, however long the sweep.
    pub fn screen_ids(
        &self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> (Vec<usize>, Vec<usize>) {
        let measurements = self.measure_ids_batch(candidates);
        split_verdicts(&measurements)
    }

    /// [`Self::screen_ids`] behind the shared fallible surface. The overlay
    /// sweep is read-only and cannot fail, but callers that must also run
    /// the legacy train-untrain path (where an inexact untrain surfaces as
    /// [`RoniError`]) get one `Result` shape for both — retrain loops match
    /// on it instead of `expect`ing, so a screening failure degrades the
    /// run instead of aborting it.
    pub fn try_screen_ids(
        &self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> Result<(Vec<usize>, Vec<usize>), RoniError> {
        Ok(self.screen_ids(candidates))
    }

    /// Screen through the legacy train → sweep → untrain loop, surfacing
    /// any untrain failure as [`RoniError`] — the same `Result` shape as
    /// [`Self::try_screen_ids`], so the two measurement paths are
    /// interchangeable at the retrain call site.
    #[cfg(any(test, feature = "train-untrain"))]
    pub fn try_screen_ids_train_untrain(
        &mut self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> Result<(Vec<usize>, Vec<usize>), RoniError> {
        let measurements: Result<Vec<RoniMeasurement>, RoniError> = candidates
            .iter()
            .map(|c| self.measure_ids_train_untrain(c.ids()))
            .collect();
        Ok(split_verdicts(&measurements?))
    }
}

/// Partition measurement indices into `(kept, rejected)` lists.
fn split_verdicts(measurements: &[RoniMeasurement]) -> (Vec<usize>, Vec<usize>) {
    let mut kept = Vec::new();
    let mut rejected = Vec::new();
    for (i, m) in measurements.iter().enumerate() {
        if m.rejected {
            rejected.push(i);
        } else {
            kept.push(i);
        }
    }
    (kept, rejected)
}

fn measurement_from_deltas(deltas: Vec<(f64, f64)>, threshold: f64) -> RoniMeasurement {
    let (ham_deltas, spam_deltas): (Vec<f64>, Vec<f64>) = deltas.into_iter().unzip();
    let mean_ham_impact = ham_deltas.iter().sum::<f64>() / ham_deltas.len().max(1) as f64;
    RoniMeasurement {
        rejected: mean_ham_impact >= threshold,
        mean_ham_impact,
        ham_correct_deltas: ham_deltas,
        spam_correct_deltas: spam_deltas,
    }
}

/// Count validation messages classified correctly, per class, against any
/// score source — a trial's trained [`sb_filter::TokenDb`] (baselines) or
/// a candidate overlay (measurements). `Unsure` counts as incorrect for
/// both classes (§2.1: unsure ham is nearly as bad as misfiled ham).
fn correct_counts<D: ScoreDb>(
    db: &D,
    opts: &FilterOptions,
    val: &[(Arc<Vec<TokenId>>, Label)],
) -> (usize, usize) {
    let mut ham_ok = 0;
    let mut spam_ok = 0;
    for (ids, label) in val {
        let v = sb_filter::score_token_ids(ids, db, opts).verdict;
        match (label, v) {
            (Label::Ham, Verdict::Ham) => ham_ok += 1,
            (Label::Spam, Verdict::Spam) => spam_ok += 1,
            _ => {}
        }
    }
    (ham_ok, spam_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_corpus::{CorpusConfig, TrecCorpus};

    fn pool() -> Dataset {
        TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77)
            .dataset()
            .clone()
    }

    #[test]
    fn dictionary_attack_email_is_rejected_normal_spam_is_not() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(1);
        let roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);

        // A (truncated, for test speed) dictionary-attack email.
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let m_attack = roni.measure(&atk_tokens);

        // Fresh ordinary spam messages. At this tiny pool size a single
        // unlucky draw can look harmful, so test the *separation* over a
        // small batch rather than one message (the §5.1 experiment in
        // sb-experiments pins the zero-false-positive claim at scale).
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77);
        let normals: Vec<_> = (0..10)
            .map(|k| roni.measure_email(&corpus.fresh_spam(k)))
            .collect();
        let mean_normal = normals.iter().map(|m| m.mean_ham_impact).sum::<f64>() / 10.0;

        assert!(
            m_attack.mean_ham_impact > mean_normal + 3.0,
            "attack impact {} vs mean normal {}",
            m_attack.mean_ham_impact,
            mean_normal
        );
        assert!(m_attack.rejected, "attack impact {}", m_attack.mean_ham_impact);
        let kept = normals.iter().filter(|m| !m.rejected).count();
        assert!(kept >= 8, "only {kept}/10 ordinary spam kept");
    }

    #[test]
    fn measure_is_side_effect_free() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(2);
        let roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let candidate: Vec<String> = (0..50).map(|i| format!("cand{i}")).collect();
        let a = roni.measure(&candidate);
        let b = roni.measure(&candidate);
        assert_eq!(a, b, "repeated measurement must be identical");
    }

    /// The overlay invariant of the PR: measuring and screening never
    /// bump any trial database's generation.
    #[test]
    fn screening_leaves_base_generations_unchanged() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(8);
        let roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let generations = roni.trial_generations();

        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let interner = sb_intern::Interner::global();
        let mut candidates: Vec<Vec<TokenId>> = (0..8)
            .map(|k| {
                let words: Vec<String> = (0..40).map(|i| format!("gen{k}w{i}")).collect();
                interner.intern_set(&words)
            })
            .collect();
        candidates
            .push(interner.intern_set(&Tokenizer::new().token_set(attack.prototype())));

        let _ = roni.measure_ids(&candidates[0]);
        let (kept, rejected) = roni.screen_ids(&candidates);
        assert_eq!(kept.len() + rejected.len(), candidates.len());
        assert_eq!(
            roni.trial_generations(),
            generations,
            "screening invalidated a trial's score cache"
        );
    }

    #[test]
    fn screen_partitions_candidates() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(3);
        let roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let harmless: Vec<String> = vec!["benign".into(), "words".into(), "only".into()];
        let (kept, rejected) = roni.screen(&[atk_tokens, harmless]);
        assert_eq!(rejected, vec![0]);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn batch_measurement_matches_sequential() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(9);
        let roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let interner = sb_intern::Interner::global();
        let candidates: Vec<Vec<TokenId>> = (0..6)
            .map(|k| {
                let words: Vec<String> = (0..30).map(|i| format!("cand{k}word{i}")).collect();
                interner.intern_set(&words)
            })
            .collect();
        let sequential: Vec<RoniMeasurement> =
            candidates.iter().map(|c| roni.measure_ids(c)).collect();
        let batched = roni.measure_ids_batch(&candidates);
        assert_eq!(sequential, batched, "batch screening must be bit-identical");
    }

    #[test]
    fn train_untrain_path_matches_overlay_on_attack_email() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(10);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let ids = sb_intern::Interner::global()
            .intern_set(&Tokenizer::new().token_set(attack.prototype()));
        let via_overlay = roni.measure_ids(&ids);
        let via_tu = roni.measure_ids_train_untrain(&ids).unwrap();
        assert_eq!(via_overlay, via_tu);
    }

    #[test]
    fn try_screen_surfaces_agree_across_paths() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(12);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let interner = sb_intern::Interner::global();
        let mut candidates: Vec<Vec<TokenId>> = (0..4)
            .map(|k| {
                let words: Vec<String> = (0..25).map(|i| format!("surf{k}word{i}")).collect();
                interner.intern_set(&words)
            })
            .collect();
        candidates
            .push(interner.intern_set(&Tokenizer::new().token_set(attack.prototype())));

        let overlay = roni.try_screen_ids(&candidates).expect("overlay path is infallible");
        let legacy = roni
            .try_screen_ids_train_untrain(&candidates)
            .expect("exact untrain on fresh candidates");
        assert_eq!(overlay, legacy, "the two screening surfaces must partition identically");
        assert_eq!(overlay, roni.screen_ids(&candidates));
    }

    proptest! {
        /// The tentpole equivalence: for arbitrary candidate token sets
        /// (fresh vocabulary, pool vocabulary, or a mix), overlay
        /// measurement is bit-identical — per trial, per statistic — to
        /// the train → sweep → untrain reference path.
        #[test]
        fn overlay_measure_is_bit_identical_to_train_untrain(
            words in proptest::collection::btree_set("[a-h]{2,6}", 0..40),
            from_pool in 0usize..40,
            seed in 1u64..500,
        ) {
            let cfg = RoniConfig {
                train_size: 10,
                val_size: 20,
                trials: 3,
                reject_threshold: 5.1,
            };
            let corpus = TrecCorpus::generate(&CorpusConfig::with_size(60, 0.5), 31);
            let pool = corpus.dataset().clone();
            let mut rng = Xoshiro256pp::new(seed);
            let mut roni =
                RoniDefense::new(cfg, &pool, FilterOptions::default(), &mut rng);
            // Candidates mix fresh vocabulary with real pool vocabulary,
            // so the equivalence is exercised across the verdict-cache
            // skip rule's whole range: untouched messages, messages
            // touched only by δ-ineligible members, and messages whose
            // members force a full rescore.
            let mut candidate: Vec<String> = words.into_iter().collect();
            candidate.extend(
                Tokenizer::new()
                    .token_set(&pool.emails()[seed as usize % pool.len()].email)
                    .into_iter()
                    .take(from_pool),
            );
            candidate.sort_unstable();
            candidate.dedup();
            let ids = sb_intern::Interner::global().intern_set(&candidate);

            let via_overlay = roni.measure_ids(&ids);
            let via_tu = roni.measure_ids_train_untrain(&ids).unwrap();

            prop_assert_eq!(
                via_overlay.mean_ham_impact.to_bits(),
                via_tu.mean_ham_impact.to_bits(),
                "mean impact diverged: {} vs {}",
                via_overlay.mean_ham_impact,
                via_tu.mean_ham_impact
            );
            for (a, b) in via_overlay
                .ham_correct_deltas
                .iter()
                .zip(&via_tu.ham_correct_deltas)
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "ham delta diverged");
            }
            for (a, b) in via_overlay
                .spam_correct_deltas
                .iter()
                .zip(&via_tu.spam_correct_deltas)
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "spam delta diverged");
            }
            prop_assert_eq!(via_overlay.rejected, via_tu.rejected);
        }
    }

    #[test]
    fn config_default_matches_table1() {
        let c = RoniConfig::default();
        assert_eq!(c.train_size, 20);
        assert_eq!(c.val_size, 50);
        assert_eq!(c.trials, 5);
    }

    #[test]
    fn roni_error_display_carries_token() {
        let err = RoniError::Untrain(sb_filter::UntrainError {
            token: Some("poison".into()),
        });
        let msg = err.to_string();
        assert!(msg.contains("poison"), "message: {msg}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    #[should_panic]
    fn pool_too_small_rejected() {
        let tiny = TrecCorpus::generate(&CorpusConfig::with_size(30, 0.5), 1)
            .dataset()
            .clone();
        let mut rng = Xoshiro256pp::new(4);
        let _ = RoniDefense::new(RoniConfig::default(), &tiny, FilterOptions::default(), &mut rng);
    }
}
