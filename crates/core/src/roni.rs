//! The Reject On Negative Impact (RONI) defense (§5.1).
//!
//! Before admitting a candidate message into the training set, measure its
//! incremental effect: sample small train/validation splits from the clean
//! pool, train with and without the candidate, and compare validation
//! performance. A message whose inclusion costs many previously-correct ham
//! classifications is rejected.
//!
//! Paper parameters (Table 1): training sets of 20, validation sets of 50,
//! 5 independent trials; the statistic is the average decrease in
//! correctly-classified ham. The paper reports every dictionary-attack email
//! costing ≥ 6.8 ham-as-ham (of 25) while non-attack spam costs ≤ 4.4 — a
//! separable gap that a simple threshold exploits.
//!
//! Implementation note: the with/without comparison uses the filter's exact
//! `untrain`, so each query costs one train + one untrain + one validation
//! sweep per trial instead of a full retrain.

use sb_email::{Dataset, Label};
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// RONI parameters (defaults = paper Table 1, RONI column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoniConfig {
    /// Per-trial training-set size.
    pub train_size: usize,
    /// Per-trial validation-set size.
    pub val_size: usize,
    /// Number of independent (train, validation) samples.
    pub trials: usize,
    /// Reject when the mean decrease in correctly-classified ham meets or
    /// exceeds this many messages. The paper sets its threshold inside the
    /// measured separability gap (theirs: ≥ 6.8 attack vs ≤ 4.4
    /// non-attack); ours sits inside the gap measured on the synthetic
    /// corpus by `repro roni` (attack ≥ 5.4 vs non-attack ≤ 4.8).
    pub reject_threshold: f64,
}

impl Default for RoniConfig {
    fn default() -> Self {
        Self {
            train_size: 20,
            val_size: 50,
            trials: 5,
            reject_threshold: 5.1,
        }
    }
}

/// The measured impact of one candidate message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoniMeasurement {
    /// Per-trial decrease in ham classified as ham (positive = harmful).
    pub ham_correct_deltas: Vec<f64>,
    /// Per-trial decrease in spam classified as spam (positive = harmful).
    pub spam_correct_deltas: Vec<f64>,
    /// Mean of `ham_correct_deltas` — the paper's rejection statistic.
    pub mean_ham_impact: f64,
    /// Whether the configured threshold rejects this message.
    pub rejected: bool,
}

/// A RONI evaluator bound to a clean email pool.
///
/// Construction pre-tokenizes the pool and fixes the `trials` (train,
/// validation) splits, so evaluating many candidates (the experiment
/// evaluates hundreds) amortizes all per-pool work.
pub struct RoniDefense {
    cfg: RoniConfig,
    trials: Vec<Trial>,
}

struct Trial {
    filter: SpamBayes,
    val: Vec<(Vec<String>, Label)>,
    baseline_ham_correct: usize,
    baseline_spam_correct: usize,
}

impl RoniDefense {
    /// Build the evaluator from a clean pool.
    ///
    /// `pool` must contain at least `train_size + val_size` messages; each
    /// trial samples its train and validation sets disjointly.
    pub fn new(cfg: RoniConfig, pool: &Dataset, opts: FilterOptions, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            pool.len() >= cfg.train_size + cfg.val_size,
            "pool of {} too small for {}+{}",
            pool.len(),
            cfg.train_size,
            cfg.val_size
        );
        let tokenizer = Tokenizer::new();
        let tokenized: Vec<(Vec<String>, Label)> = pool
            .emails()
            .iter()
            .map(|m| (tokenizer.token_set(&m.email), m.label))
            .collect();

        let trials = (0..cfg.trials)
            .map(|_| {
                let picks =
                    sb_corpus::sample_indices(pool.len(), cfg.train_size + cfg.val_size, rng);
                let (train_idx, val_idx) = picks.split_at(cfg.train_size);
                let mut filter = SpamBayes::new();
                filter.set_options(opts);
                for &i in train_idx {
                    let (set, label) = &tokenized[i];
                    filter.train_tokens(set, *label, 1);
                }
                let val: Vec<(Vec<String>, Label)> = val_idx
                    .iter()
                    .map(|&i| tokenized[i].clone())
                    .collect();
                let (baseline_ham_correct, baseline_spam_correct) = correct_counts(&filter, &val);
                Trial {
                    filter,
                    val,
                    baseline_ham_correct,
                    baseline_spam_correct,
                }
            })
            .collect();
        Self { cfg, trials }
    }

    /// The active configuration.
    pub fn config(&self) -> &RoniConfig {
        &self.cfg
    }

    /// Measure one candidate (given as its token set; candidates are always
    /// trained as spam per the contamination assumption, §2.2).
    pub fn measure(&mut self, candidate_tokens: &[String]) -> RoniMeasurement {
        let mut ham_deltas = Vec::with_capacity(self.trials.len());
        let mut spam_deltas = Vec::with_capacity(self.trials.len());
        for trial in &mut self.trials {
            trial.filter.train_tokens(candidate_tokens, Label::Spam, 1);
            let (ham_after, spam_after) = correct_counts(&trial.filter, &trial.val);
            trial
                .filter
                .untrain_tokens(candidate_tokens, Label::Spam, 1)
                .expect("untrain of just-trained candidate cannot fail");
            ham_deltas.push(trial.baseline_ham_correct as f64 - ham_after as f64);
            spam_deltas.push(trial.baseline_spam_correct as f64 - spam_after as f64);
        }
        let mean_ham_impact = ham_deltas.iter().sum::<f64>() / ham_deltas.len() as f64;
        RoniMeasurement {
            rejected: mean_ham_impact >= self.cfg.reject_threshold,
            mean_ham_impact,
            ham_correct_deltas: ham_deltas,
            spam_correct_deltas: spam_deltas,
        }
    }

    /// Measure a candidate given as an email.
    pub fn measure_email(&mut self, email: &sb_email::Email) -> RoniMeasurement {
        let set = Tokenizer::new().token_set(email);
        self.measure(&set)
    }

    /// Screen a list of candidates; returns `(kept, rejected)` index lists.
    pub fn screen(&mut self, candidates: &[Vec<String>]) -> (Vec<usize>, Vec<usize>) {
        let mut kept = Vec::new();
        let mut rejected = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if self.measure(c).rejected {
                rejected.push(i);
            } else {
                kept.push(i);
            }
        }
        (kept, rejected)
    }
}

/// Count validation messages classified correctly, per class. `Unsure`
/// counts as incorrect for both classes (§2.1: unsure ham is nearly as bad
/// as misfiled ham).
fn correct_counts(filter: &SpamBayes, val: &[(Vec<String>, Label)]) -> (usize, usize) {
    let mut ham_ok = 0;
    let mut spam_ok = 0;
    for (set, label) in val {
        let v = filter.classify_tokens(set).verdict;
        match (label, v) {
            (Label::Ham, Verdict::Ham) => ham_ok += 1,
            (Label::Spam, Verdict::Spam) => spam_ok += 1,
            _ => {}
        }
    }
    (ham_ok, spam_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_corpus::{CorpusConfig, TrecCorpus};

    fn pool() -> Dataset {
        TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77)
            .dataset()
            .clone()
    }

    #[test]
    fn dictionary_attack_email_is_rejected_normal_spam_is_not() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(1);
        let mut roni = RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);

        // A (truncated, for test speed) dictionary-attack email.
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let m_attack = roni.measure(&atk_tokens);

        // Fresh ordinary spam messages. At this tiny pool size a single
        // unlucky draw can look harmful, so test the *separation* over a
        // small batch rather than one message (the §5.1 experiment in
        // sb-experiments pins the zero-false-positive claim at scale).
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77);
        let normals: Vec<_> = (0..10)
            .map(|k| roni.measure_email(&corpus.fresh_spam(k)))
            .collect();
        let mean_normal = normals.iter().map(|m| m.mean_ham_impact).sum::<f64>() / 10.0;

        assert!(
            m_attack.mean_ham_impact > mean_normal + 3.0,
            "attack impact {} vs mean normal {}",
            m_attack.mean_ham_impact,
            mean_normal
        );
        assert!(m_attack.rejected, "attack impact {}", m_attack.mean_ham_impact);
        let kept = normals.iter().filter(|m| !m.rejected).count();
        assert!(kept >= 8, "only {kept}/10 ordinary spam kept");
    }

    #[test]
    fn measure_is_side_effect_free() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(2);
        let mut roni = RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let candidate: Vec<String> = (0..50).map(|i| format!("cand{i}")).collect();
        let a = roni.measure(&candidate);
        let b = roni.measure(&candidate);
        assert_eq!(a, b, "repeated measurement must be identical (untrain exactness)");
    }

    #[test]
    fn screen_partitions_candidates() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(3);
        let mut roni = RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let harmless: Vec<String> = vec!["benign".into(), "words".into(), "only".into()];
        let (kept, rejected) = roni.screen(&[atk_tokens, harmless]);
        assert_eq!(rejected, vec![0]);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn config_default_matches_table1() {
        let c = RoniConfig::default();
        assert_eq!(c.train_size, 20);
        assert_eq!(c.val_size, 50);
        assert_eq!(c.trials, 5);
    }

    #[test]
    #[should_panic]
    fn pool_too_small_rejected() {
        let tiny = TrecCorpus::generate(&CorpusConfig::with_size(30, 0.5), 1)
            .dataset()
            .clone();
        let mut rng = Xoshiro256pp::new(4);
        let _ = RoniDefense::new(RoniConfig::default(), &tiny, FilterOptions::default(), &mut rng);
    }
}
