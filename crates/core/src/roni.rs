//! The Reject On Negative Impact (RONI) defense (§5.1).
//!
//! Before admitting a candidate message into the training set, measure its
//! incremental effect: sample small train/validation splits from the clean
//! pool, train with and without the candidate, and compare validation
//! performance. A message whose inclusion costs many previously-correct ham
//! classifications is rejected.
//!
//! Paper parameters (Table 1): training sets of 20, validation sets of 50,
//! 5 independent trials; the statistic is the average decrease in
//! correctly-classified ham. The paper reports every dictionary-attack email
//! costing ≥ 6.8 ham-as-ham (of 25) while non-attack spam costs ≤ 4.4 — a
//! separable gap that a simple threshold exploits.
//!
//! ## Why this module is the hot path — and how the substrate pays for it
//!
//! Every candidate costs `trials × (train + |val| classifications +
//! untrain)`; a screened pipeline pays that per *arriving message* per
//! epoch. Three layers of the interned substrate stack up here:
//!
//! * the pool is tokenized **and interned once** at construction; trials
//!   and candidates move `&[TokenId]` only;
//! * the filter's exact `untrain` plus the generation-stamped score cache
//!   mean each trial's validation sweep computes every distinct token's
//!   `f(w)` once (validation messages share vocabulary heavily);
//! * trials are independent, so [`RoniDefense::measure_ids`] fans them out
//!   on scoped threads, and [`RoniDefense::screen_ids`] additionally
//!   parallelizes across candidates with per-worker trial clones.

use sb_email::{Dataset, Label};
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_intern::{par, AsIdSlice, TokenId};
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// RONI parameters (defaults = paper Table 1, RONI column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoniConfig {
    /// Per-trial training-set size.
    pub train_size: usize,
    /// Per-trial validation-set size.
    pub val_size: usize,
    /// Number of independent (train, validation) samples.
    pub trials: usize,
    /// Reject when the mean decrease in correctly-classified ham meets or
    /// exceeds this many messages. The paper sets its threshold inside the
    /// measured separability gap (theirs: ≥ 6.8 attack vs ≤ 4.4
    /// non-attack); ours sits inside the gap measured on the synthetic
    /// corpus by `repro roni` (attack ≥ 5.4 vs non-attack ≤ 4.8).
    pub reject_threshold: f64,
}

impl Default for RoniConfig {
    fn default() -> Self {
        Self {
            train_size: 20,
            val_size: 50,
            trials: 5,
            reject_threshold: 5.1,
        }
    }
}

/// The measured impact of one candidate message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoniMeasurement {
    /// Per-trial decrease in ham classified as ham (positive = harmful).
    pub ham_correct_deltas: Vec<f64>,
    /// Per-trial decrease in spam classified as spam (positive = harmful).
    pub spam_correct_deltas: Vec<f64>,
    /// Mean of `ham_correct_deltas` — the paper's rejection statistic.
    pub mean_ham_impact: f64,
    /// Whether the configured threshold rejects this message.
    pub rejected: bool,
}

/// A RONI evaluator bound to a clean email pool.
///
/// Construction tokenizes + interns the pool once and fixes the `trials`
/// (train, validation) splits, so evaluating many candidates (the
/// experiment evaluates hundreds) amortizes all per-pool work.
pub struct RoniDefense {
    cfg: RoniConfig,
    trials: Vec<Trial>,
}

#[derive(Clone)]
struct Trial {
    filter: SpamBayes,
    val: Vec<(Arc<Vec<TokenId>>, Label)>,
    baseline_ham_correct: usize,
    baseline_spam_correct: usize,
}

impl Trial {
    /// Measure one candidate against this trial: train, sweep the
    /// validation set (score-cache warm within the post-train
    /// generation), untrain exactly.
    fn measure(&mut self, candidate: &[TokenId]) -> (f64, f64) {
        self.filter.train_ids(candidate, Label::Spam, 1);
        let (ham_after, spam_after) = correct_counts(&self.filter, &self.val);
        self.filter
            .untrain_ids(candidate, Label::Spam, 1)
            .expect("untrain of just-trained candidate cannot fail");
        (
            self.baseline_ham_correct as f64 - ham_after as f64,
            self.baseline_spam_correct as f64 - spam_after as f64,
        )
    }
}

impl RoniDefense {
    /// Build the evaluator from a clean pool.
    ///
    /// `pool` must contain at least `train_size + val_size` messages; each
    /// trial samples its train and validation sets disjointly.
    pub fn new(
        cfg: RoniConfig,
        pool: &Dataset,
        opts: FilterOptions,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        assert!(
            pool.len() >= cfg.train_size + cfg.val_size,
            "pool of {} too small for {}+{}",
            pool.len(),
            cfg.train_size,
            cfg.val_size
        );
        let tokenizer = Tokenizer::new();
        let interner = sb_intern::Interner::global();
        // Tokenize + intern once; trials share Arc'd id sets.
        let tokenized: Vec<(Arc<Vec<TokenId>>, Label)> = pool
            .emails()
            .iter()
            .map(|m| {
                (
                    Arc::new(interner.intern_set(&tokenizer.token_set(&m.email))),
                    m.label,
                )
            })
            .collect();

        let trials = (0..cfg.trials)
            .map(|_| {
                let picks =
                    sb_corpus::sample_indices(pool.len(), cfg.train_size + cfg.val_size, rng);
                let (train_idx, val_idx) = picks.split_at(cfg.train_size);
                let mut filter = SpamBayes::new();
                filter.set_options(opts);
                for &i in train_idx {
                    let (ids, label) = &tokenized[i];
                    filter.train_ids(ids, *label, 1);
                }
                let val: Vec<(Arc<Vec<TokenId>>, Label)> = val_idx
                    .iter()
                    .map(|&i| tokenized[i].clone())
                    .collect();
                let (baseline_ham_correct, baseline_spam_correct) = correct_counts(&filter, &val);
                Trial {
                    filter,
                    val,
                    baseline_ham_correct,
                    baseline_spam_correct,
                }
            })
            .collect();
        Self { cfg, trials }
    }

    /// The active configuration.
    pub fn config(&self) -> &RoniConfig {
        &self.cfg
    }

    /// Measure one candidate given as a token set (interned internally;
    /// candidates are always trained as spam per the contamination
    /// assumption, §2.2).
    pub fn measure(&mut self, candidate_tokens: &[String]) -> RoniMeasurement {
        let ids = sb_intern::Interner::global().intern_set(candidate_tokens);
        self.measure_ids(&ids)
    }

    /// Measure one pre-interned candidate, fanning the independent trials
    /// out on scoped threads (sequential on single-core hosts, where
    /// spawning would be pure overhead).
    pub fn measure_ids(&mut self, candidate: &[TokenId]) -> RoniMeasurement {
        let deltas: Vec<(f64, f64)> = if self.trials.len() > 1 && par::default_threads() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .trials
                    .iter_mut()
                    .map(|trial| scope.spawn(move || trial.measure(candidate)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial thread panicked"))
                    .collect()
            })
        } else {
            self.trials
                .iter_mut()
                .map(|t| t.measure(candidate))
                .collect()
        };
        measurement_from_deltas(deltas, self.cfg.reject_threshold)
    }

    /// Measure a candidate given as an email.
    pub fn measure_email(&mut self, email: &sb_email::Email) -> RoniMeasurement {
        let set = Tokenizer::new().token_set(email);
        self.measure(&set)
    }

    /// Measure a batch of pre-interned candidates in parallel: each
    /// worker clones the trial set once and streams its contiguous share
    /// of candidates through it, so the cost per candidate stays
    /// `trials × (train + sweep + untrain)` while the wall clock divides
    /// by the worker count. On a single-core host no clone is made at
    /// all.
    pub fn measure_ids_batch(
        &mut self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> Vec<RoniMeasurement> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let threads = par::default_threads().min(candidates.len());
        let threshold = self.cfg.reject_threshold;
        if threads == 1 {
            // Single worker: reuse the live trials directly, no clone.
            return candidates
                .iter()
                .map(|cand| {
                    let deltas: Vec<(f64, f64)> = self
                        .trials
                        .iter_mut()
                        .map(|t| t.measure(cand.ids()))
                        .collect();
                    measurement_from_deltas(deltas, threshold)
                })
                .collect();
        }
        // Exactly one contiguous chunk per worker, so the trial-set clone
        // (O(vocabulary) counts + cold score cache per trial) is paid per
        // worker, not per candidate.
        let trials = &self.trials;
        let chunk_size = candidates.len().div_ceil(threads);
        let chunks: Vec<&[_]> = candidates.chunks(chunk_size).collect();
        let per_chunk = par::parallel_map(chunks.len(), threads, |k| {
            let mut local: Vec<Trial> = trials.to_vec();
            chunks[k]
                .iter()
                .map(|cand| {
                    let deltas: Vec<(f64, f64)> = local
                        .iter_mut()
                        .map(|t| t.measure(cand.ids()))
                        .collect();
                    measurement_from_deltas(deltas, threshold)
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Screen a list of candidates; returns `(kept, rejected)` index lists.
    pub fn screen(&mut self, candidates: &[Vec<String>]) -> (Vec<usize>, Vec<usize>) {
        let interner = sb_intern::Interner::global();
        let ids: Vec<Vec<TokenId>> = candidates.iter().map(|c| interner.intern_set(c)).collect();
        self.screen_ids(&ids)
    }

    /// Screen pre-interned candidates in parallel; returns `(kept,
    /// rejected)` index lists.
    pub fn screen_ids(
        &mut self,
        candidates: &[impl AsIdSlice + Sync],
    ) -> (Vec<usize>, Vec<usize>) {
        let measurements = self.measure_ids_batch(candidates);
        let mut kept = Vec::new();
        let mut rejected = Vec::new();
        for (i, m) in measurements.iter().enumerate() {
            if m.rejected {
                rejected.push(i);
            } else {
                kept.push(i);
            }
        }
        (kept, rejected)
    }
}

fn measurement_from_deltas(deltas: Vec<(f64, f64)>, threshold: f64) -> RoniMeasurement {
    let (ham_deltas, spam_deltas): (Vec<f64>, Vec<f64>) = deltas.into_iter().unzip();
    let mean_ham_impact = ham_deltas.iter().sum::<f64>() / ham_deltas.len().max(1) as f64;
    RoniMeasurement {
        rejected: mean_ham_impact >= threshold,
        mean_ham_impact,
        ham_correct_deltas: ham_deltas,
        spam_correct_deltas: spam_deltas,
    }
}

/// Count validation messages classified correctly, per class. `Unsure`
/// counts as incorrect for both classes (§2.1: unsure ham is nearly as bad
/// as misfiled ham).
fn correct_counts(filter: &SpamBayes, val: &[(Arc<Vec<TokenId>>, Label)]) -> (usize, usize) {
    let mut ham_ok = 0;
    let mut spam_ok = 0;
    for (ids, label) in val {
        let v = filter.classify_ids(ids).verdict;
        match (label, v) {
            (Label::Ham, Verdict::Ham) => ham_ok += 1,
            (Label::Spam, Verdict::Spam) => spam_ok += 1,
            _ => {}
        }
    }
    (ham_ok, spam_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_corpus::{CorpusConfig, TrecCorpus};

    fn pool() -> Dataset {
        TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77)
            .dataset()
            .clone()
    }

    #[test]
    fn dictionary_attack_email_is_rejected_normal_spam_is_not() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(1);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);

        // A (truncated, for test speed) dictionary-attack email.
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let m_attack = roni.measure(&atk_tokens);

        // Fresh ordinary spam messages. At this tiny pool size a single
        // unlucky draw can look harmful, so test the *separation* over a
        // small batch rather than one message (the §5.1 experiment in
        // sb-experiments pins the zero-false-positive claim at scale).
        let corpus = TrecCorpus::generate(&CorpusConfig::with_size(200, 0.5), 77);
        let normals: Vec<_> = (0..10)
            .map(|k| roni.measure_email(&corpus.fresh_spam(k)))
            .collect();
        let mean_normal = normals.iter().map(|m| m.mean_ham_impact).sum::<f64>() / 10.0;

        assert!(
            m_attack.mean_ham_impact > mean_normal + 3.0,
            "attack impact {} vs mean normal {}",
            m_attack.mean_ham_impact,
            mean_normal
        );
        assert!(m_attack.rejected, "attack impact {}", m_attack.mean_ham_impact);
        let kept = normals.iter().filter(|m| !m.rejected).count();
        assert!(kept >= 8, "only {kept}/10 ordinary spam kept");
    }

    #[test]
    fn measure_is_side_effect_free() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(2);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let candidate: Vec<String> = (0..50).map(|i| format!("cand{i}")).collect();
        let a = roni.measure(&candidate);
        let b = roni.measure(&candidate);
        assert_eq!(a, b, "repeated measurement must be identical (untrain exactness)");
    }

    #[test]
    fn screen_partitions_candidates() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(3);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let attack = crate::dictionary::DictionaryAttack::new(
            crate::dictionary::DictionaryKind::UsenetTop(10_000),
        );
        let atk_tokens = Tokenizer::new().token_set(attack.prototype());
        let harmless: Vec<String> = vec!["benign".into(), "words".into(), "only".into()];
        let (kept, rejected) = roni.screen(&[atk_tokens, harmless]);
        assert_eq!(rejected, vec![0]);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn batch_measurement_matches_sequential() {
        let pool = pool();
        let mut rng = Xoshiro256pp::new(9);
        let mut roni =
            RoniDefense::new(RoniConfig::default(), &pool, FilterOptions::default(), &mut rng);
        let interner = sb_intern::Interner::global();
        let candidates: Vec<Vec<TokenId>> = (0..6)
            .map(|k| {
                let words: Vec<String> = (0..30).map(|i| format!("cand{k}word{i}")).collect();
                interner.intern_set(&words)
            })
            .collect();
        let sequential: Vec<RoniMeasurement> =
            candidates.iter().map(|c| roni.measure_ids(c)).collect();
        let batched = roni.measure_ids_batch(&candidates);
        assert_eq!(sequential, batched, "batch screening must be bit-identical");
    }

    #[test]
    fn config_default_matches_table1() {
        let c = RoniConfig::default();
        assert_eq!(c.train_size, 20);
        assert_eq!(c.val_size, 50);
        assert_eq!(c.trials, 5);
    }

    #[test]
    #[should_panic]
    fn pool_too_small_rejected() {
        let tiny = TrecCorpus::generate(&CorpusConfig::with_size(30, 0.5), 1)
            .dataset()
            .clone();
        let mut rng = Xoshiro256pp::new(4);
        let _ = RoniDefense::new(RoniConfig::default(), &tiny, FilterOptions::default(), &mut rng);
    }
}
