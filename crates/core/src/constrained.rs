//! The optimal *constrained* attack — §3.4's "future work", built.
//!
//! The paper observes that real attackers sit between the dictionary
//! extreme (uniform knowledge → send everything) and the focused extreme
//! (exact knowledge → send the target's words), and that a knowledge
//! distribution `p` over words should yield an optimal attack under a size
//! budget. This module supplies both halves:
//!
//! * [`estimate_knowledge`] builds a [`WordKnowledge`] from a *sample of
//!   ham the attacker has seen* (empirical per-word appearance
//!   frequencies — "characteristic vocabulary or jargon typical of the
//!   victim"), optionally blended with a base lexicon prior;
//! * [`ConstrainedAttack`] is an [`AttackGenerator`] that sends the `B`
//!   most probable words under that knowledge — by the paper's own
//!   monotonicity argument (token scores don't interact; `I` is monotone in
//!   each `f(w)`), this maximizes the expected spam score of the victim's
//!   next email among all `B`-word attacks.
//!
//! The `constrained` experiment sweeps `B` and shows the efficiency claim
//! the paper sketches: victim-informed budgets reach a given damage level
//! with far fewer tokens than rank-truncated generic dictionaries.
//!
//! ## Which ranking? Two candidates, measured
//!
//! The paper's monotonicity argument says more words never hurt; it does
//! not say which words to keep when only `B` fit. Two rankings are
//! provided and compared by the `constrained` experiment:
//!
//! * **probability ranking** ([`ConstrainedAttack::new`]) — "most probable
//!   words first", the obvious reading of §3.4;
//! * **expected-gain ranking** ([`ConstrainedAttack::damage_ranked`]) —
//!   rank by predicted per-token *evidence shift* under Eq. 1–2, which
//!   correctly identifies the poisonable mid-frequency band: ubiquitous
//!   ham words are pinned below 0.5 by Eq. 1's normalization and score
//!   zero gain (see [`AttackContext`]).
//!
//! The measured outcome is more interesting than either story alone. The
//! gain model's *token-level* predictions hold (its picks flip to spam
//! evidence; probability ranking's head picks never cross 0.5). But at the
//! *message* level, probability ranking does as well or better once the
//! budget is non-tiny: neutralizing the head — dragging every common word
//! from strong ham evidence toward the excluded band — removes more of the
//! ham side of Fisher's ledger than a smaller flipped portfolio adds to
//! the spam side (the per-token model underestimates head damage because
//! it assumes words start with no spam sightings). Both informed rankings
//! beat equal-budget generic dictionaries by a wide margin, which is the
//! §3.4 knowledge-value claim this module exists to test.

use crate::attack::{build_attack_email, AttackBatch, AttackGenerator, HeaderMode};
use crate::optimal::WordKnowledge;
use crate::taxonomy::AttackClass;
use sb_email::Email;
use sb_stats::rng::Xoshiro256pp;
use sb_tokenizer::Tokenizer;
use sb_intern::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Estimate attacker knowledge from an observed ham sample: the empirical
/// probability that each token appears in a message. `min_support` drops
/// tokens seen in fewer messages than that (they carry more noise than
/// signal for small samples).
pub fn estimate_knowledge(
    sample: &[Email],
    tokenizer: &Tokenizer,
    min_support: usize,
) -> WordKnowledge {
    let mut seen_in: FxHashMap<String, usize> = FxHashMap::default();
    for email in sample {
        for token in tokenizer.token_set(email) {
            *seen_in.entry(token).or_insert(0) += 1;
        }
    }
    let n = sample.len().max(1) as f64;
    let mut k = WordKnowledge::none();
    for (token, count) in seen_in {
        if count >= min_support {
            k.set(token, count as f64 / n);
        }
    }
    k
}

/// Blend empirical victim knowledge with a generic lexicon prior:
/// `α·empirical + (1−α)·uniform(lexicon, base_prob)`. Models an attacker
/// who has seen *some* victim mail but hedges with general English.
pub fn blend_with_lexicon(
    empirical: &WordKnowledge,
    lexicon: &[String],
    base_prob: f64,
    alpha: f64,
) -> WordKnowledge {
    let prior = WordKnowledge::uniform(lexicon, base_prob);
    empirical.interpolate(&prior, alpha)
}

/// What the attacker assumes about the victim's training state when
/// predicting a word's poisonability.
///
/// For a word appearing in fraction `q` of the victim's ham,
/// [`AttackContext::expected_gain`] predicts its Eq. 1–2 score before the
/// attack (no spam sightings) and after (every attack email contains it),
/// maps both through a saturating **evidence value** — the clamped distance
/// from 0.5 in units of the δ(E) exclusion band, `clamp((f − 0.5)/min_dev,
/// −1, 1)` — and weights the evidence shift by `q`, the probability the
/// word occurs in the message being protected/attacked. The evidence
/// mapping is what makes the model faithful to Fisher's method: a token
/// whose score moves from 0.0005 to 0.04 is still exactly as strong a ham
/// clue as before, so raw f-shift overvalues ubiquitous words; what counts
/// is leaving the ham-evidence region, crossing the exclusion band, and
/// emerging as spam evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackContext {
    /// Assumed ham messages in the victim's training set.
    pub n_ham: f64,
    /// Assumed spam messages in the victim's training set.
    pub n_spam: f64,
    /// Attack emails the attacker will send.
    pub attack_count: f64,
    /// Robinson prior strength `s` (SpamBayes default 0.45).
    pub prior_strength: f64,
    /// Robinson prior belief `x` (SpamBayes default 0.5).
    pub prior_prob: f64,
    /// Half-width of the δ(E) exclusion band (SpamBayes default 0.1).
    pub min_dev: f64,
}

impl AttackContext {
    /// Context for an attack of `attack_count` emails against a training
    /// set of `n` messages at 50% spam, with SpamBayes constants.
    pub fn typical(training_set_size: usize, attack_count: u32) -> Self {
        Self {
            n_ham: training_set_size as f64 / 2.0,
            n_spam: training_set_size as f64 / 2.0,
            attack_count: f64::from(attack_count),
            prior_strength: 0.45,
            prior_prob: 0.5,
            min_dev: 0.1,
        }
    }

    /// Smoothed token score f(w) from Eq. 1–2 for a word with `nh_w` ham
    /// sightings and `ns_w` spam sightings under (`n_ham`, `n_spam`)
    /// class totals.
    fn f_score(&self, nh_w: f64, ns_w: f64, n_spam: f64) -> f64 {
        let ps = if nh_w == 0.0 && ns_w == 0.0 {
            self.prior_prob
        } else {
            let num = self.n_ham * ns_w;
            let den = num + n_spam * nh_w;
            if den == 0.0 {
                self.prior_prob
            } else {
                num / den
            }
        };
        let n_w = nh_w + ns_w;
        (self.prior_strength * self.prior_prob + n_w * ps) / (self.prior_strength + n_w)
    }

    /// The saturating evidence value of a token score: −1 (strong ham
    /// clue) to +1 (strong spam clue), linear across the exclusion band.
    fn evidence(&self, f: f64) -> f64 {
        ((f - 0.5) / self.min_dev).clamp(-1.0, 1.0)
    }

    /// Expected damage of including a word that appears in fraction `q`
    /// of the victim's ham: `q · (evidence_after − evidence_before) / 2`,
    /// in `[0, 1]`.
    ///
    /// Unimodal in `q`: rare words flip completely but rarely matter;
    /// ubiquitous words always matter but Eq. 1's per-class normalization
    /// keeps them ham evidence no matter how hard they are attacked; the
    /// sweet spot is the mid-frequency band, whose width scales with the
    /// attack size.
    pub fn expected_gain(&self, q: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q));
        let nh_w = q * self.n_ham;
        let before = self.f_score(nh_w, 0.0, self.n_spam);
        let after = self.f_score(nh_w, self.attack_count, self.n_spam + self.attack_count);
        q * (self.evidence(after) - self.evidence(before)) / 2.0
    }

    /// The `budget` words with the highest expected gain under this
    /// context. Ties break by word string for determinism.
    pub fn rank(&self, knowledge: &WordKnowledge, budget: usize) -> Vec<String> {
        let mut scored: Vec<(&str, f64)> = knowledge
            .iter()
            .map(|(w, q)| (w, self.expected_gain(q)))
            .filter(|&(_, g)| g > 0.0)
            .collect();
        scored.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("gains are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        scored.truncate(budget);
        scored.into_iter().map(|(w, _)| w.to_owned()).collect()
    }
}

/// The §3.4 optimal attack under a token budget, as a reusable generator.
#[derive(Debug, Clone)]
pub struct ConstrainedAttack {
    words: Arc<Vec<String>>,
    prototype: Arc<Email>,
    budget: usize,
    label: String,
}

impl ConstrainedAttack {
    /// Build the attack with naive probability ranking: the `budget` most
    /// probable words under `knowledge`. Kept for comparison — see the
    /// module docs for why [`ConstrainedAttack::damage_ranked`] dominates.
    pub fn new(knowledge: &WordKnowledge, budget: usize) -> Self {
        let words = knowledge.optimal_attack(Some(budget));
        Self::from_words(words, budget, format!("constrained-{budget}"))
    }

    /// Build the attack with expected-gain ranking under `ctx` — the
    /// optimal greedy budgeted attack (module docs).
    pub fn damage_ranked(knowledge: &WordKnowledge, ctx: &AttackContext, budget: usize) -> Self {
        let words = ctx.rank(knowledge, budget);
        Self::from_words(words, budget, format!("constrained-gain-{budget}"))
    }

    fn from_words(words: Vec<String>, budget: usize, label: String) -> Self {
        let prototype = Arc::new(build_attack_email(&words, &HeaderMode::Empty));
        Self {
            words: Arc::new(words),
            prototype,
            budget,
            label,
        }
    }

    /// The selected attack words (most probable first).
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// The token budget requested (the realized word count may be smaller
    /// when the knowledge support is smaller than the budget).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The shared attack-email prototype.
    pub fn prototype(&self) -> &Email {
        &self.prototype
    }
}

impl AttackGenerator for ConstrainedAttack {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn class(&self) -> AttackClass {
        // Knowledge in between the extremes: still an availability attack
        // against a broad class of (victim-like) mail.
        AttackClass::causative_availability_indiscriminate()
    }

    fn generate(&self, n: u32, _rng: &mut Xoshiro256pp) -> AttackBatch {
        AttackBatch::new(vec![((*self.prototype).clone(), n)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham(words: &[&str]) -> Email {
        Email::builder().body(words.join(" ")).build()
    }

    fn sample() -> Vec<Email> {
        // "budget" in 4/4 messages, "ledger" in 2/4, "quarterly" in 1/4.
        vec![
            ham(&["budget", "ledger", "quarterly"]),
            ham(&["budget", "ledger", "sync"]),
            ham(&["budget", "notes"]),
            ham(&["budget", "agenda"]),
        ]
    }

    #[test]
    fn estimates_empirical_frequencies() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        assert!((k.prob("budget") - 1.0).abs() < 1e-12);
        assert!((k.prob("ledger") - 0.5).abs() < 1e-12);
        assert!((k.prob("quarterly") - 0.25).abs() < 1e-12);
        assert_eq!(k.prob("neverseen"), 0.0);
    }

    #[test]
    fn min_support_prunes_rare_tokens() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 2);
        assert!(k.prob("budget") > 0.0);
        assert!(k.prob("ledger") > 0.0);
        assert_eq!(k.prob("quarterly"), 0.0, "support-1 token must be pruned");
    }

    #[test]
    fn empty_sample_yields_no_knowledge() {
        let k = estimate_knowledge(&[], &Tokenizer::new(), 1);
        assert_eq!(k.support_size(), 0);
    }

    #[test]
    fn budget_orders_by_probability() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        let atk = ConstrainedAttack::new(&k, 2);
        assert_eq!(atk.words()[0], "budget");
        assert_eq!(atk.words()[1], "ledger");
        assert_eq!(atk.words().len(), 2);
    }

    #[test]
    fn budget_larger_than_support_takes_everything() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        let atk = ConstrainedAttack::new(&k, 10_000);
        assert!(atk.words().len() < 10_000);
        assert!(atk.words().len() >= 6); // budget..agenda + sync + notes
    }

    #[test]
    fn generator_contract() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        let atk = ConstrainedAttack::new(&k, 3);
        let batch = atk.generate(7, &mut Xoshiro256pp::new(1));
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.groups().len(), 1);
        assert!(batch.groups()[0].0.has_empty_headers());
        assert_eq!(atk.name(), "constrained-3");
    }

    #[test]
    fn blending_hedges_with_lexicon() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        let lexicon: Vec<String> = vec!["generic".into(), "budget".into()];
        let blended = blend_with_lexicon(&k, &lexicon, 0.1, 0.5);
        // "budget": 0.5·1.0 + 0.5·0.1 = 0.55; "generic": 0.5·0.1 = 0.05.
        assert!((blended.prob("budget") - 0.55).abs() < 1e-12);
        assert!((blended.prob("generic") - 0.05).abs() < 1e-12);
        // Victim-specific words outrank generic ones under any budget.
        let atk = ConstrainedAttack::new(&blended, 1);
        assert_eq!(atk.words(), ["budget"]);
    }

    #[test]
    fn expected_gain_is_unimodal_and_bounded() {
        // 20 attack emails against a 1,000-message set: the poisonable
        // band sits around q ≈ 2–4% (PS_after crosses 0.5 at
        // q = a(1 − …)/NS′ ≈ 0.03).
        let ctx = AttackContext::typical(1_000, 20);
        // Zero at the extremes: q = 0 never occurs; q = 1 is pinned as ham
        // evidence by Eq. 1's normalization however hard it is attacked.
        assert_eq!(ctx.expected_gain(0.0), 0.0);
        assert!(ctx.expected_gain(1.0).abs() < 1e-12, "{}", ctx.expected_gain(1.0));
        // Positive in the poisonable band…
        let mid = ctx.expected_gain(0.03);
        assert!(mid > 0.01, "{mid}");
        // …which beats both the head and the deep tail.
        assert!(mid > ctx.expected_gain(0.9));
        assert!(mid > ctx.expected_gain(0.0005));
        // Bounded by q.
        for q in [0.001, 0.01, 0.05, 0.2, 0.7] {
            let g = ctx.expected_gain(q);
            assert!((0.0..=q).contains(&g), "gain {g} out of [0, {q}]");
        }
    }

    #[test]
    fn gain_band_widens_with_attack_size() {
        // A 10× larger attack can poison 10×-more-frequent words.
        let small = AttackContext::typical(1_000, 10);
        let large = AttackContext::typical(1_000, 100);
        let q = 0.1; // in 10% of ham
        assert!(small.expected_gain(q) < 0.005, "{}", small.expected_gain(q));
        assert!(
            large.expected_gain(q) > small.expected_gain(q) + 0.01,
            "bigger attacks must widen the band: {} vs {}",
            large.expected_gain(q),
            small.expected_gain(q)
        );
    }

    #[test]
    fn gain_ranking_prefers_mid_frequency_words() {
        let mut k = WordKnowledge::none();
        k.set("ubiquitous", 0.95); // in nearly every ham: unpoisonable
        k.set("midband", 0.03); // the sweet spot for a 20-email attack
        k.set("rare", 0.0005); // flips hard but rarely matters
        let ctx = AttackContext::typical(1_000, 20);
        let ranked = ctx.rank(&k, 3);
        assert_eq!(ranked[0], "midband", "ranking: {ranked:?}");
        // The unpoisonable head word contributes no gain and is dropped.
        assert!(!ranked.contains(&"ubiquitous".to_string()), "{ranked:?}");
        // Probability ranking would have put "ubiquitous" first.
        let naive = k.optimal_attack(Some(1));
        assert_eq!(naive, ["ubiquitous"]);
    }

    #[test]
    fn damage_ranked_attack_differs_from_naive() {
        let k = estimate_knowledge(&sample(), &Tokenizer::new(), 1);
        let ctx = AttackContext::typical(100, 10);
        let naive = ConstrainedAttack::new(&k, 1);
        let smart = ConstrainedAttack::damage_ranked(&k, &ctx, 1);
        // "budget" (q = 1.0) tops the naive ranking; the gain ranking
        // filters it out as unpoisonable and prefers a partial-coverage
        // word instead.
        assert_eq!(naive.words(), ["budget"]);
        assert_ne!(smart.words(), ["budget"], "gain ranking: {:?}", smart.words());
        assert_eq!(smart.name(), "constrained-gain-1");
        assert_eq!(smart.budget(), 1);
    }

    #[test]
    fn constrained_attack_poisons_sampled_vocabulary() {
        use sb_email::Label;
        use sb_filter::SpamBayes;

        let mut filter = SpamBayes::new();
        // Mid-frequency victim vocabulary, like the corpus substrate.
        let vocab = ["quarterly", "budget", "forecast", "ledger"];
        let mut observed = Vec::new();
        for i in 0..20 {
            let w = vocab[i % 4];
            let h = ham(&[w, "common", &format!("filler{i}")]);
            observed.push(h.clone());
            filter.train(&h, Label::Ham);
            filter.train(
                &Email::builder()
                    .body(format!("cheap pills offer blast{i}"))
                    .build(),
                Label::Spam,
            );
        }
        let target = ham(&vocab);
        let before = filter.classify(&target).score;

        let k = estimate_knowledge(&observed, &Tokenizer::new(), 2);
        let atk = ConstrainedAttack::new(&k, 16);
        let batch = atk.generate(60, &mut Xoshiro256pp::new(5));
        for (tokens, count) in batch.token_groups(filter.tokenizer()) {
            filter.train_tokens(&tokens, Label::Spam, count);
        }
        let after = filter.classify(&target).score;
        assert!(
            after > before + 0.2,
            "constrained attack too weak: {before} -> {after}"
        );
    }
}
