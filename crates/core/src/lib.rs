//! # sb-core — the paper's contribution
//!
//! Causative availability attacks on the SpamBayes learner and the two
//! defenses, exactly as described in Nelson et al., *"Exploiting Machine
//! Learning to Subvert Your Spam Filter"*:
//!
//! | Paper | Here |
//! |---|---|
//! | Attack taxonomy (§3.1) | [`taxonomy`] |
//! | Contamination assumption & attack-email rules (§2.2, §4.1) | [`attack`] |
//! | Dictionary attacks: optimal / Aspell / Usenet (§3.2) | [`dictionary`] |
//! | Focused attack with token guessing (§3.3) | [`focused`] |
//! | Optimal attack function, knowledge spectrum (§3.4) | [`optimal`] |
//! | Optimal *constrained* attack (§3.4 future work) | [`constrained`] |
//! | Ham-labeled integrity attack (§2.2 closing remark) | [`ham_attack`] |
//! | Periodic retraining loop (§2.1–§2.2) | [`pipeline`] |
//! | Declarative multi-campaign composition (scenario engine) | [`campaign`] |
//! | RONI defense (§5.1) | [`roni`] |
//! | Dynamic threshold defense (§5.2) | [`threshold`] |
//! | Stacked RONI + threshold defense (future-work config) | [`combined`] |
//!
//! ```
//! use sb_core::dictionary::{DictionaryAttack, DictionaryKind};
//! use sb_core::attack::AttackGenerator;
//! use sb_stats::rng::Xoshiro256pp;
//!
//! // Craft the Usenet dictionary attack at 1% contamination of a
//! // 10,000-message inbox — the paper's headline configuration.
//! let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
//! let n = sb_core::dictionary::attack_count_for_fraction(10_000, 0.01);
//! assert_eq!(n, 101);
//! let batch = attack.generate(n, &mut Xoshiro256pp::new(0));
//! assert_eq!(batch.len(), 101);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod campaign;
pub mod combined;
pub mod constrained;
pub mod dictionary;
pub mod focused;
pub mod ham_attack;
pub mod optimal;
pub mod pipeline;
pub mod roni;
pub mod taxonomy;
pub mod threshold;

pub use attack::{build_attack_email, AttackBatch, AttackGenerator, HeaderMode};
pub use campaign::{
    validate_campaigns, AttackKind, CampaignEnv, CampaignError, CampaignShape, CampaignSpec,
    Intensity, MessageRef,
};
pub use combined::{defend, CombinedConfig, CombinedOutcome};
pub use constrained::{blend_with_lexicon, estimate_knowledge, AttackContext, ConstrainedAttack};
pub use dictionary::{attack_count_for_fraction, DictionaryAttack, DictionaryKind};
pub use focused::FocusedAttack;
pub use ham_attack::HamLabelAttack;
pub use optimal::WordKnowledge;
pub use pipeline::{AdmitAll, EpochReport, RetrainingPipeline, RoniScreen, ScreeningPolicy};
pub use roni::{RoniConfig, RoniDefense, RoniError, RoniMeasurement};
pub use taxonomy::{AttackClass, Influence, Specificity, Violation};
pub use threshold::{calibrate, CalibratedFilter, ThresholdConfig, TrainItem};
