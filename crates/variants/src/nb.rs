//! A multinomial naive Bayes baseline — the textbook learner the
//! Robinson/Fisher family is usually compared against, and the model the
//! related work (Newsome et al.'s correlated outlier attack, §6) reasons
//! about. Included so the transfer experiments can show the attacks are a
//! property of *statistical token learners*, not of SpamBayes specifics.
//!
//! Model: class priors from message counts; per-class token likelihoods
//! from **occurrence counts** with Laplace smoothing over the joint
//! vocabulary; log-space posterior
//!
//! ```text
//! ln P(spam | E) ∝ ln P(spam) + Σ_w n_w(E) · ln P(w | spam)
//! ```
//!
//! The reported score is the normalized posterior `P(spam | E)`, which —
//! unlike Fisher's method — saturates to 0/1 on almost every message of
//! realistic length. The verdict thresholds are therefore meaningful only
//! as "which side of ~certainty"; we use the SpamBayes defaults for
//! uniformity across the zoo.
//!
//! ## An accidental finding: dictionary floods self-dilute against NB
//!
//! The transfer experiment shows multinomial NB does **not** lose ham to
//! the paper's dictionary attack — and the reason is structural. Each
//! attack email adds its full lexicon (tens of thousands of occurrences)
//! to the spam class's token total, so `P(w | spam)` for any *individual*
//! attacked word stays tiny: the flood inflates its own denominator. What
//! the attack does instead is depress `P(w | spam)` for *ordinary* spam
//! vocabulary, so the damage shows up as false *negatives* — an
//! availability attack against the Robinson family degenerates into a mild
//! integrity attack against multinomial NB. Presence-based counting
//! (Eq. 1's per-message sets) is exactly what makes SpamBayes-style
//! learners attackable with word floods. Small, concentrated attacks
//! (focused-style) still transfer to NB — see the module tests.

use crate::StatFilter;
use sb_email::{Email, Label};
use sb_filter::{Scored, Verdict};
use sb_intern::{FxHashMap, Interner, TokenId};
use sb_tokenizer::{Tokenizer, TokenizerOptions};
use serde::{Deserialize, Serialize};

/// Tunables of the naive Bayes baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NbOptions {
    /// Laplace smoothing pseudo-count α.
    pub alpha: f64,
    /// Posterior at or below this is ham.
    pub ham_cutoff: f64,
    /// Posterior above this is spam.
    pub spam_cutoff: f64,
}

impl Default for NbOptions {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            ham_cutoff: 0.15,
            spam_cutoff: 0.9,
        }
    }
}

/// Per-class occurrence totals for one token.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Occ {
    spam: u64,
    ham: u64,
}

/// The multinomial naive Bayes filter.
///
/// Token occurrences are interned (process-global table) and counted in an
/// id-keyed FxHash map — the same substrate the SpamBayes learner uses, so
/// transfer experiments share one string table across the whole zoo.
#[derive(Debug, Clone)]
pub struct MultinomialNb {
    opts: NbOptions,
    tokenizer: Tokenizer,
    interner: Interner,
    counts: FxHashMap<TokenId, Occ>,
    /// Total token occurrences per class.
    total_spam_tokens: u64,
    total_ham_tokens: u64,
    n_spam: u32,
    n_ham: u32,
}

impl Default for MultinomialNb {
    fn default() -> Self {
        Self::new()
    }
}

impl MultinomialNb {
    /// A fresh filter with α = 1 smoothing.
    pub fn new() -> Self {
        Self::with_options(NbOptions::default())
    }

    /// Explicit options.
    pub fn with_options(opts: NbOptions) -> Self {
        assert!(opts.alpha > 0.0, "alpha must be positive");
        Self {
            opts,
            tokenizer: Tokenizer::with_options(TokenizerOptions::default()),
            interner: Interner::global(),
            counts: FxHashMap::default(),
            total_spam_tokens: 0,
            total_ham_tokens: 0,
            n_spam: 0,
            n_ham: 0,
        }
    }

    /// The options in use.
    pub fn options(&self) -> &NbOptions {
        &self.opts
    }

    /// Vocabulary size (distinct tokens seen in training).
    pub fn vocab_size(&self) -> usize {
        self.counts.len()
    }

    /// `ln P(w | class)` with Laplace smoothing, from occurrence counts.
    fn ln_likelihood_occ(&self, occ: Occ, label: Label) -> f64 {
        let v = self.counts.len() as f64;
        let (num, den) = match label {
            Label::Spam => (occ.spam as f64, self.total_spam_tokens as f64),
            Label::Ham => (occ.ham as f64, self.total_ham_tokens as f64),
        };
        ((num + self.opts.alpha) / (den + self.opts.alpha * v.max(1.0))).ln()
    }

    /// `ln P(w | class)` for an interned token.
    fn ln_likelihood(&self, token: TokenId, label: Label) -> f64 {
        self.ln_likelihood_occ(self.counts.get(&token).copied().unwrap_or_default(), label)
    }

    /// The spam posterior `P(spam | E)` of a message. Read-only against
    /// the interner: never-trained probe tokens fall back to the
    /// zero-occurrence Laplace term without being interned (classifying
    /// attacker-chosen vocabulary must not grow the shared table).
    pub fn posterior(&self, email: &Email) -> f64 {
        let tokens = self.tokenizer.tokenize(email);
        self.posterior_lookup(&tokens)
    }

    fn posterior_lookup(&self, tokens: &[String]) -> f64 {
        if self.n_spam == 0 || self.n_ham == 0 {
            return 0.5;
        }
        if tokens.is_empty() {
            return 0.5;
        }
        let n = f64::from(self.n_spam) + f64::from(self.n_ham);
        let mut ln_spam = (f64::from(self.n_spam) / n).ln();
        let mut ln_ham = (f64::from(self.n_ham) / n).ln();
        for t in tokens {
            let occ = self
                .interner
                .get(t)
                .and_then(|id| self.counts.get(&id).copied())
                .unwrap_or_default();
            ln_spam += self.ln_likelihood_occ(occ, Label::Spam);
            ln_ham += self.ln_likelihood_occ(occ, Label::Ham);
        }
        1.0 / (1.0 + (ln_ham - ln_spam).exp())
    }

    /// Tokenize an email into interned occurrence ids (duplicates kept —
    /// the multinomial model counts every occurrence). Interns: use for
    /// training and pre-interned pipelines, not per-probe classification.
    pub fn occurrence_ids(&self, email: &Email) -> Vec<TokenId> {
        self.tokenizer
            .tokenize(email)
            .iter()
            .map(|t| self.interner.intern(t))
            .collect()
    }

    /// The spam posterior from pre-interned occurrence ids.
    pub fn posterior_ids(&self, ids: &[TokenId]) -> f64 {
        if self.n_spam == 0 || self.n_ham == 0 {
            return 0.5;
        }
        if ids.is_empty() {
            return 0.5;
        }
        let n = f64::from(self.n_spam) + f64::from(self.n_ham);
        let mut ln_spam = (f64::from(self.n_spam) / n).ln();
        let mut ln_ham = (f64::from(self.n_ham) / n).ln();
        for &t in ids {
            ln_spam += self.ln_likelihood(t, Label::Spam);
            ln_ham += self.ln_likelihood(t, Label::Ham);
        }
        // P(spam | E) = 1 / (1 + exp(ln_ham − ln_spam))
        1.0 / (1.0 + (ln_ham - ln_spam).exp())
    }
}

impl StatFilter for MultinomialNb {
    fn name(&self) -> &'static str {
        "naive-bayes"
    }

    fn train(&mut self, email: &Email, label: Label) {
        self.train_many(email, label, 1);
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        if n == 0 {
            return;
        }
        let ids = self.occurrence_ids(email);
        let added = (ids.len() as u64) * u64::from(n);
        for t in ids {
            let occ = self.counts.entry(t).or_default();
            match label {
                Label::Spam => occ.spam += u64::from(n),
                Label::Ham => occ.ham += u64::from(n),
            }
        }
        match label {
            Label::Spam => {
                self.total_spam_tokens += added;
                self.n_spam += n;
            }
            Label::Ham => {
                self.total_ham_tokens += added;
                self.n_ham += n;
            }
        }
    }

    fn classify(&self, email: &Email) -> Scored {
        // Tokenize once: the tokens drive both the posterior and the clue
        // count (every token occurrence contributes in NB); lookup-only
        // against the interner.
        let ids = self.tokenizer.tokenize(email);
        let score = self.posterior_lookup(&ids);
        let verdict = if score <= self.opts.ham_cutoff {
            Verdict::Ham
        } else if score > self.opts.spam_cutoff {
            Verdict::Spam
        } else {
            Verdict::Unsure
        };
        Scored {
            score,
            verdict,
            n_clues: ids.len(),
        }
    }

    fn training_counts(&self) -> (u32, u32) {
        (self.n_spam, self.n_ham)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(b: &str) -> Email {
        Email::builder().body(b).build()
    }

    fn trained() -> MultinomialNb {
        let mut f = MultinomialNb::new();
        for i in 0..20 {
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
            f.train(&body(&format!("meeting agenda notes item{i}")), Label::Ham);
        }
        f
    }

    #[test]
    fn untrained_posterior_is_half() {
        let f = MultinomialNb::new();
        assert_eq!(f.posterior(&body("anything")), 0.5);
    }

    #[test]
    fn empty_message_posterior_is_half() {
        let f = trained();
        assert_eq!(f.posterior(&Email::new()), 0.5);
    }

    #[test]
    fn classifies_spam_and_ham() {
        let f = trained();
        let s = f.classify(&body("cheap pills offer"));
        assert_eq!(s.verdict, Verdict::Spam);
        let h = f.classify(&body("meeting agenda notes"));
        assert_eq!(h.verdict, Verdict::Ham);
    }

    #[test]
    fn posterior_saturates_on_long_messages() {
        let f = trained();
        let long: String = (0..30).map(|_| "pills cheap ").collect();
        let p = f.posterior(&body(&long));
        assert!(p > 0.999, "expected saturation: {p}");
    }

    #[test]
    fn priors_shift_the_posterior() {
        let mut f = MultinomialNb::new();
        // 3:1 spam prior with identical token evidence.
        for _ in 0..30 {
            f.train(&body("shared words"), Label::Spam);
        }
        for _ in 0..10 {
            f.train(&body("shared words"), Label::Ham);
        }
        let p = f.posterior(&body("shared words"));
        assert!(p > 0.5, "prior must tip the balance: {p}");
    }

    #[test]
    fn alpha_zero_rejected() {
        let result = std::panic::catch_unwind(|| {
            MultinomialNb::with_options(NbOptions {
                alpha: 0.0,
                ..NbOptions::default()
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn vocab_grows_with_training() {
        let mut f = MultinomialNb::new();
        assert_eq!(f.vocab_size(), 0);
        f.train(&body("alpha beta gamma"), Label::Spam);
        assert_eq!(f.vocab_size(), 3);
        f.train(&body("alpha delta"), Label::Ham);
        assert_eq!(f.vocab_size(), 4);
    }

    #[test]
    fn dictionary_poisoning_flips_ham() {
        // Mid-frequency ham vocabulary (each word in 5 of 20 ham messages):
        // the realistic shape the dictionary attack exploits.
        let vocab = ["quarterly", "budget", "forecast", "ledger"];
        let mut f = MultinomialNb::new();
        for i in 0..20 {
            let w = vocab[i % 4];
            f.train(&body(&format!("{w} common filler{i}")), Label::Ham);
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
        }
        let target = body("quarterly budget forecast ledger");
        assert_eq!(f.classify(&target).verdict, Verdict::Ham);
        f.train_many(&target, Label::Spam, 200);
        let h = f.classify(&target);
        assert_eq!(h.verdict, Verdict::Spam, "score {}", h.score);
    }
}
