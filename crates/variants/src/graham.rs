//! Paul Graham's *A Plan for Spam* classifier (2002) — the ancestor of the
//! SpamBayes/BogoFilter family and the simplest member of the zoo.
//!
//! Differences from the Robinson/Fisher learner the paper attacks:
//!
//! * **occurrence counts**, not message-presence counts (a token appearing
//!   five times in one ham message counts five);
//! * ham occurrences are **doubled** ("to bias against false positives");
//! * tokens seen fewer than 5 times score a fixed 0.4 (mild ham lean);
//! * known tokens score `min(1, b/nbad) / (min(1, 2g/ngood) + min(1, b/nbad))`
//!   clamped to `[0.01, 0.99]`;
//! * the **15** most extreme clues are combined with plain naive-Bayes odds
//!   `Πp / (Πp + Π(1−p))` — no chi-square;
//! * the decision is **binary** at 0.9 (no unsure band). We map it onto the
//!   workspace's tri-state [`Verdict`] with an empty unsure band so the
//!   transfer experiments can report it uniformly.
//!
//! The attack-relevant consequence of these choices: naive-Bayes odds
//! saturate much faster than Fisher's chi-square, so a handful of poisoned
//! tokens drives the combined score to ~1.0 — Graham's filter is *more*
//! fragile under the dictionary attack than SpamBayes, not less.

use crate::StatFilter;
use sb_email::{Email, Label};
use sb_filter::{Scored, Verdict};
use sb_intern::{FxHashMap, FxHashSet, Interner, TokenId};
use sb_tokenizer::{Tokenizer, TokenizerOptions};
use serde::{Deserialize, Serialize};

/// Tunables of the Graham classifier (defaults per the essay).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrahamOptions {
    /// Multiplier applied to ham occurrence counts (essay: 2).
    pub ham_bias: f64,
    /// Tokens with fewer total occurrences score [`Self::unknown_prob`]
    /// (essay: 5).
    pub min_occurrences: u32,
    /// Score of unknown / rare tokens (essay: 0.4).
    pub unknown_prob: f64,
    /// Clamp for known-token scores (essay: [0.01, 0.99]).
    pub clamp: (f64, f64),
    /// Number of most-interesting clues combined (essay: 15).
    pub max_clues: usize,
    /// Spam decision threshold on the combined probability (essay: 0.9).
    pub spam_threshold: f64,
}

impl Default for GrahamOptions {
    fn default() -> Self {
        Self {
            ham_bias: 2.0,
            min_occurrences: 5,
            unknown_prob: 0.4,
            clamp: (0.01, 0.99),
            max_clues: 15,
            spam_threshold: 0.9,
        }
    }
}

/// Occurrence counts for one token.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Occ {
    spam: u32,
    ham: u32,
}

/// The *A Plan for Spam* filter.
///
/// Occurrence counts are interned (process-global table) and keyed by
/// `TokenId` in an FxHash map, like the rest of the zoo.
#[derive(Debug, Clone)]
pub struct GrahamFilter {
    opts: GrahamOptions,
    tokenizer: Tokenizer,
    interner: Interner,
    counts: FxHashMap<TokenId, Occ>,
    n_spam: u32,
    n_ham: u32,
}

impl Default for GrahamFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl GrahamFilter {
    /// A fresh filter with essay defaults.
    pub fn new() -> Self {
        Self::with_options(GrahamOptions::default())
    }

    /// A filter with explicit options. Tokenization is the workspace default
    /// profile (Graham's own tokenizer rules — alphanumerics plus dashes,
    /// apostrophes and dollar signs — are close enough that the shared
    /// tokenizer keeps the comparison about the *learner*).
    pub fn with_options(opts: GrahamOptions) -> Self {
        assert!(opts.max_clues >= 1, "max_clues must be >= 1");
        assert!(opts.ham_bias > 0.0, "ham_bias must be positive");
        Self {
            opts,
            tokenizer: Tokenizer::with_options(TokenizerOptions::default()),
            interner: Interner::global(),
            counts: FxHashMap::default(),
            n_spam: 0,
            n_ham: 0,
        }
    }

    /// The options in use.
    pub fn options(&self) -> &GrahamOptions {
        &self.opts
    }

    /// Token occurrences as interned ids, **not** deduplicated: Graham
    /// counts every occurrence. Interns — used on the train path only;
    /// classification looks tokens up read-only so probe vocabulary
    /// cannot grow the shared table.
    fn occurrences(&self, email: &Email) -> Vec<TokenId> {
        self.tokenizer
            .tokenize(email)
            .iter()
            .map(|t| self.interner.intern(t))
            .collect()
    }

    /// The per-token spam probability p(w) of the essay.
    pub fn token_prob(&self, token: &str) -> f64 {
        match self.interner.get(token) {
            Some(id) => self.token_prob_id(id),
            None => self.opts.unknown_prob,
        }
    }

    /// The per-token spam probability from an interned id.
    pub fn token_prob_id(&self, token: TokenId) -> f64 {
        let occ = self.counts.get(&token).copied().unwrap_or_default();
        let total = occ.spam + occ.ham;
        if total < self.opts.min_occurrences || self.n_spam == 0 || self.n_ham == 0 {
            return self.opts.unknown_prob;
        }
        let g = (self.opts.ham_bias * f64::from(occ.ham) / f64::from(self.n_ham)).min(1.0);
        let b = (f64::from(occ.spam) / f64::from(self.n_spam)).min(1.0);
        let p = b / (g + b);
        p.clamp(self.opts.clamp.0, self.opts.clamp.1)
    }

    /// Combine clue probabilities with naive-Bayes odds.
    fn combine(clues: &[f64]) -> f64 {
        if clues.is_empty() {
            return 0.5;
        }
        // Work in log space: products of 15 probabilities underflow f64 only
        // in pathological configurations, but log space costs nothing.
        let ln_p: f64 = clues.iter().map(|p| p.ln()).sum();
        let ln_q: f64 = clues.iter().map(|p| (1.0 - p).ln()).sum();
        // p / (p + q) = 1 / (1 + exp(ln_q - ln_p))
        1.0 / (1.0 + (ln_q - ln_p).exp())
    }

    /// The most interesting clues for a message: the `max_clues` tokens with
    /// scores furthest from 0.5, deterministic under ties. Read-only
    /// against the interner — never-trained tokens score
    /// `unknown_prob` (identical to the sub-floor case) without being
    /// interned.
    pub fn interesting_clues(&self, email: &Email) -> Vec<(String, f64)> {
        let mut seen: Vec<(String, f64)> = Vec::new();
        let mut dedup: FxHashSet<String> = FxHashSet::default();
        for t in self.tokenizer.tokenize(email) {
            if dedup.insert(t.clone()) {
                let p = match self.interner.get(&t) {
                    Some(id) => self.token_prob_id(id),
                    None => self.opts.unknown_prob,
                };
                seen.push((t, p));
            }
        }
        seen.sort_unstable_by(|a, b| {
            let da = (a.1 - 0.5).abs();
            let db = (b.1 - 0.5).abs();
            db.partial_cmp(&da)
                .expect("probabilities are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        seen.truncate(self.opts.max_clues);
        seen
    }
}

impl StatFilter for GrahamFilter {
    fn name(&self) -> &'static str {
        "graham"
    }

    fn train(&mut self, email: &Email, label: Label) {
        for t in self.occurrences(email) {
            let occ = self.counts.entry(t).or_default();
            match label {
                Label::Spam => occ.spam += 1,
                Label::Ham => occ.ham += 1,
            }
        }
        match label {
            Label::Spam => self.n_spam += 1,
            Label::Ham => self.n_ham += 1,
        }
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        if n == 0 {
            return;
        }
        for t in self.occurrences(email) {
            let occ = self.counts.entry(t).or_default();
            match label {
                Label::Spam => occ.spam += n,
                Label::Ham => occ.ham += n,
            }
        }
        match label {
            Label::Spam => self.n_spam += n,
            Label::Ham => self.n_ham += n,
        }
    }

    fn classify(&self, email: &Email) -> Scored {
        let clues = self.interesting_clues(email);
        let probs: Vec<f64> = clues.iter().map(|&(_, p)| p).collect();
        let score = Self::combine(&probs);
        let verdict = if score > self.opts.spam_threshold {
            Verdict::Spam
        } else {
            Verdict::Ham
        };
        Scored {
            score,
            verdict,
            n_clues: probs.len(),
        }
    }

    fn training_counts(&self) -> (u32, u32) {
        (self.n_spam, self.n_ham)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(b: &str) -> Email {
        Email::builder().body(b).build()
    }

    fn trained() -> GrahamFilter {
        let mut f = GrahamFilter::new();
        for i in 0..20 {
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
            f.train(&body(&format!("meeting agenda notes item{i}")), Label::Ham);
        }
        f
    }

    #[test]
    fn unknown_tokens_score_point_four() {
        let f = trained();
        assert_eq!(f.token_prob("neverseen"), 0.4);
    }

    #[test]
    fn rare_tokens_score_point_four() {
        let mut f = trained();
        // Seen, but below the 5-occurrence floor.
        f.train(&body("sporadic"), Label::Spam);
        assert_eq!(f.token_prob("sporadic"), 0.4);
    }

    #[test]
    fn pure_spam_token_clamps_to_099() {
        let f = trained();
        assert_eq!(f.token_prob("pills"), 0.99);
    }

    #[test]
    fn pure_ham_token_clamps_to_001() {
        let f = trained();
        assert_eq!(f.token_prob("agenda"), 0.01);
    }

    #[test]
    fn ham_bias_doubles_ham_evidence() {
        let mut f = GrahamFilter::new();
        // "both" appears once per message in 10 spam and 10 ham.
        for _ in 0..10 {
            f.train(&body("both"), Label::Spam);
            f.train(&body("both"), Label::Ham);
        }
        // b = 1, g = min(1, 2·1) = 1 → p = 0.5… but with doubling g would
        // saturate at 1: p = 1/(1+1) = 0.5. Check the asymmetric case too.
        assert!((f.token_prob("both") - 0.5).abs() < 1e-12);
        let mut f2 = GrahamFilter::new();
        // 5 spam / 10 messages, 5 ham / 20 messages: b = 0.5, raw g = 0.25,
        // doubled g = 0.5 → p = 0.5 instead of 0.667 without the bias.
        for i in 0..10 {
            let t = if i < 5 { "tilt other" } else { "other" };
            f2.train(&body(t), Label::Spam);
        }
        for i in 0..20 {
            let t = if i < 5 { "tilt filler" } else { "filler" };
            f2.train(&body(t), Label::Ham);
        }
        assert!((f2.token_prob("tilt") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classifies_spam_and_ham() {
        let f = trained();
        let s = f.classify(&body("cheap pills offer"));
        assert_eq!(s.verdict, Verdict::Spam);
        assert!(s.score > 0.99);
        let h = f.classify(&body("meeting agenda notes"));
        assert_eq!(h.verdict, Verdict::Ham);
        assert!(h.score < 0.01);
    }

    #[test]
    fn empty_message_scores_half_ham() {
        let f = trained();
        let s = f.classify(&Email::new());
        assert_eq!(s.score, 0.5);
        // 0.5 <= 0.9 → below the binary spam threshold.
        assert_eq!(s.verdict, Verdict::Ham);
        assert_eq!(s.n_clues, 0);
    }

    #[test]
    fn max_clues_caps_evidence() {
        let f = trained();
        let long = (0..100)
            .map(|_| "pills")
            .collect::<Vec<_>>()
            .join(" ");
        let s = f.classify(&body(&long));
        assert!(s.n_clues <= f.options().max_clues);
    }

    #[test]
    fn occurrence_counting_weights_repeats() {
        let mut f = GrahamFilter::new();
        // "echo" appears 5 times in a single spam message: crosses the
        // occurrence floor immediately.
        f.train(&body("echo echo echo echo echo"), Label::Spam);
        f.train(&body("calm words here"), Label::Ham);
        assert_eq!(f.token_prob("echo"), 0.99);
    }

    #[test]
    fn combine_is_odds_product() {
        // Two 0.9 clues: odds 81:1 → p = 81/82.
        let p = GrahamFilter::combine(&[0.9, 0.9]);
        assert!((p - 81.0 / 82.0).abs() < 1e-12);
        // Symmetric clues cancel.
        assert!((GrahamFilter::combine(&[0.9, 0.1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dictionary_poisoning_flips_ham() {
        // Ham vocabulary appearing in *every* ham message is pinned at or
        // below 0.5 by the per-class frequency normalization (same effect as
        // Eq. 1 in SpamBayes) — the attack flips *mid-frequency* tokens,
        // which is what real ham vocabulary consists of. Each of the four
        // business words below appears in 5 of 20 ham messages.
        let vocab = ["quarterly", "budget", "forecast", "ledger"];
        let mut f = GrahamFilter::new();
        for i in 0..20 {
            let w = vocab[i % 4];
            f.train(&body(&format!("{w} common filler{i}")), Label::Ham);
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
        }
        let target = body("quarterly budget forecast ledger");
        assert_eq!(f.classify(&target).verdict, Verdict::Ham);
        // §3.2 applied to Graham: the vocabulary trained as spam, en masse.
        f.train_many(&target, Label::Spam, 200);
        let h = f.classify(&target);
        assert_eq!(
            h.verdict,
            Verdict::Spam,
            "poisoned ham must flip: score {}",
            h.score
        );
    }

    #[test]
    fn all_ham_tokens_resist_poisoning() {
        // The flip side of the above: a token in 100% of ham has g = 1, so
        // p = b/(1+b) ≤ 0.5 no matter how much the attacker trains. Graham's
        // ham-side frequency normalization is an accidental (partial)
        // defense the paper's Eq. 1 shares.
        let mut f = trained(); // "meeting" in all 20 ham messages
        f.train_many(&body("meeting"), Label::Spam, 500);
        assert!(f.token_prob("meeting") <= 0.5 + 1e-12);
    }
}
