//! A SpamAssassin-flavoured pair of filters: the **Bayes component** in
//! isolation, and the **full rule engine** that uses the learner "only as
//! one component of a broader filtering strategy" (the paper's §1 caveat).
//!
//! ## [`SaBayes`] — the Bayes component
//!
//! SpamAssassin 3.x's Bayes subsystem is the same Robinson × chi-square
//! construction the paper attacks, with its own constants and tokenizer:
//! case-preserving tokens up to 15 characters, header-prefixed tokens, and
//! a 0.538 unknown-token probability with a weak 0.1 prior strength. Its
//! verdict surface is the `BAYES_XX` bucket ladder rather than two cutoffs;
//! for the shared tri-state [`Verdict`] scale we map buckets ≥ `BAYES_95`
//! to spam and ≤ `BAYES_05` to ham (documented approximation).
//!
//! ## [`SaFull`] — the broader filtering strategy
//!
//! The full engine sums **static rule points** (invariant to training-set
//! poisoning) with the Bayes bucket's points and compares against
//! `required_score` = 5.0. The static rules here are a representative
//! subset of the stock ruleset's spam indicators (drug spam vocabulary,
//! shouting subjects, raw-IP URLs, …) with scores in the stock range.
//!
//! The attack-relevant consequence, which the transfer experiment verifies:
//! even a fully poisoned Bayes state contributes at most
//! `BAYES_99 + BAYES_999` = **3.7 points** — short of the 5.0 needed — so
//! legitimate mail with no static rule hits *survives* a dictionary attack
//! that renders every pure learner in the zoo unusable. Poisoning degrades
//! SaFull from "ham" to "closer to the line", not to "filtered".

use crate::StatFilter;
use sb_email::{Email, Label};
use sb_filter::classify::score_token_set;
use sb_filter::{FilterOptions, Scored, TokenDb, Verdict};
use sb_tokenizer::{Tokenizer, TokenizerOptions};
use serde::{Deserialize, Serialize};

/// Constants of the SpamAssassin-flavoured Bayes component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaOptions {
    /// Unknown-token probability (`bayes x`; stock 0.538).
    pub unknown_prob: f64,
    /// Prior strength (stock 0.1 — weak, like bogofilter).
    pub prior_strength: f64,
    /// Tokens within this distance of 0.5 are ignored.
    pub min_prob_strength: f64,
    /// Maximum clues combined (stock `bayes` uses 150, like SpamBayes).
    pub max_clues: usize,
    /// Points a message needs to be marked spam by the full engine
    /// (stock `required_score`).
    pub required_score: f64,
    /// Width of the "marginal" band below `required_score` that the full
    /// engine reports as unsure on the tri-state scale (our mapping knob,
    /// not a stock option; stock SA is binary).
    pub marginal_band: f64,
}

impl Default for SaOptions {
    fn default() -> Self {
        Self {
            unknown_prob: 0.538,
            prior_strength: 0.1,
            min_prob_strength: 0.1,
            max_clues: 150,
            required_score: 5.0,
            marginal_band: 1.0,
        }
    }
}

impl SaOptions {
    /// Engine options for the shared Robinson/Fisher core. The Bayes
    /// component's own ham/spam cutoffs on the `[0,1]` scale correspond to
    /// the `BAYES_05` / `BAYES_95` bucket edges.
    pub fn to_filter_options(self) -> FilterOptions {
        FilterOptions {
            unknown_word_strength: self.prior_strength,
            unknown_word_prob: self.unknown_prob,
            minimum_prob_strength: self.min_prob_strength,
            max_discriminators: self.max_clues,
            ham_cutoff: 0.05,
            spam_cutoff: 0.95,
        }
    }
}

/// The SA-flavoured tokenizer profile: case kept, 15-char limit, no skip
/// tokens, headers mined.
fn sa_tokenizer() -> Tokenizer {
    Tokenizer::with_options(TokenizerOptions {
        max_word_size: 15,
        generate_long_skips: false,
        lowercase: false,
        ..TokenizerOptions::default()
    })
}

/// The Bayes component in isolation.
#[derive(Debug, Clone)]
pub struct SaBayes {
    db: TokenDb,
    opts: SaOptions,
    filter_opts: FilterOptions,
    tokenizer: Tokenizer,
}

impl Default for SaBayes {
    fn default() -> Self {
        Self::new()
    }
}

impl SaBayes {
    /// A fresh Bayes component with stock-flavoured constants.
    pub fn new() -> Self {
        Self::with_options(SaOptions::default())
    }

    /// Explicit constants.
    pub fn with_options(opts: SaOptions) -> Self {
        let filter_opts = opts.to_filter_options();
        filter_opts
            .validate()
            .expect("SaOptions must translate to valid engine options");
        Self {
            db: TokenDb::new(),
            opts,
            filter_opts,
            tokenizer: sa_tokenizer(),
        }
    }

    /// The constants in use.
    pub fn options(&self) -> &SaOptions {
        &self.opts
    }

    /// The `BAYES_XX` bucket for a Bayes probability, and its stock score
    /// contribution in points (SA 3.3 scoreset 3 values).
    pub fn bayes_bucket(p: f64) -> (&'static str, f64) {
        debug_assert!((0.0..=1.0).contains(&p));
        match p {
            p if p < 0.01 => ("BAYES_00", -1.9),
            p if p < 0.05 => ("BAYES_05", -0.5),
            p if p < 0.20 => ("BAYES_20", 0.0),
            p if p < 0.40 => ("BAYES_40", 0.0),
            p if p < 0.60 => ("BAYES_50", 0.8),
            p if p < 0.80 => ("BAYES_60", 1.5),
            p if p < 0.95 => ("BAYES_80", 2.0),
            p if p < 0.99 => ("BAYES_95", 3.0),
            p if p < 0.999 => ("BAYES_99", 3.5),
            // BAYES_999 stacks +0.2 on top of BAYES_99 in the stock rules.
            _ => ("BAYES_999", 3.7),
        }
    }

    fn token_set(&self, email: &Email) -> Vec<String> {
        self.tokenizer.token_set(email)
    }
}

impl StatFilter for SaBayes {
    fn name(&self) -> &'static str {
        "sa-bayes"
    }

    fn train(&mut self, email: &Email, label: Label) {
        let set = self.token_set(email);
        self.db.train(&set, label);
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        let set = self.token_set(email);
        self.db.train_many(&set, label, n);
    }

    fn classify(&self, email: &Email) -> Scored {
        let set = self.token_set(email);
        score_token_set(&set, &self.db, &self.filter_opts)
    }

    fn training_counts(&self) -> (u32, u32) {
        (self.db.n_spam(), self.db.n_ham())
    }
}

/// One static heuristic rule of the [`SaFull`] engine.
///
/// A representative subset of the stock ruleset: enough shapes (subject,
/// body vocabulary, URL, formatting) to exercise the "broader strategy"
/// behaviour without shipping thousands of regexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticRule {
    /// Subject is (almost) all capitals.
    SubjAllCaps,
    /// Three or more exclamation marks in the subject or body.
    ManyExclaims,
    /// Pharmaceutical spam vocabulary in the body.
    DrugVocab,
    /// "free" plus a money/offer word.
    FreeOffer,
    /// "click here" / "click below" call to action.
    ClickHere,
    /// URL with a raw IP address host.
    UrlRawIp,
    /// Currency amounts with many digits (advance-fee shapes).
    BigMoney,
    /// Lottery / prize vocabulary.
    Lottery,
}

impl StaticRule {
    /// Every rule, in evaluation order.
    pub const ALL: [StaticRule; 8] = [
        StaticRule::SubjAllCaps,
        StaticRule::ManyExclaims,
        StaticRule::DrugVocab,
        StaticRule::FreeOffer,
        StaticRule::ClickHere,
        StaticRule::UrlRawIp,
        StaticRule::BigMoney,
        StaticRule::Lottery,
    ];

    /// Stock-flavoured rule name.
    pub fn name(self) -> &'static str {
        match self {
            StaticRule::SubjAllCaps => "SUBJ_ALL_CAPS",
            StaticRule::ManyExclaims => "PLING_PLING",
            StaticRule::DrugVocab => "DRUGS_ERECTILE",
            StaticRule::FreeOffer => "FREE_OFFER",
            StaticRule::ClickHere => "CLICK_BELOW",
            StaticRule::UrlRawIp => "NUMERIC_HTTP_ADDR",
            StaticRule::BigMoney => "ADVANCE_FEE",
            StaticRule::Lottery => "LOTTERY_SCAM",
        }
    }

    /// Points contributed on a hit (stock-range values).
    pub fn points(self) -> f64 {
        match self {
            StaticRule::SubjAllCaps => 1.5,
            StaticRule::ManyExclaims => 1.2,
            StaticRule::DrugVocab => 2.5,
            StaticRule::FreeOffer => 1.0,
            StaticRule::ClickHere => 1.0,
            StaticRule::UrlRawIp => 2.0,
            StaticRule::BigMoney => 1.0,
            StaticRule::Lottery => 2.0,
        }
    }

    /// Evaluate the rule against a message.
    pub fn matches(self, email: &Email) -> bool {
        let subject = email.subject().unwrap_or("");
        let body = email.body();
        match self {
            StaticRule::SubjAllCaps => {
                let letters: Vec<char> = subject.chars().filter(|c| c.is_alphabetic()).collect();
                letters.len() >= 6 && letters.iter().all(|c| c.is_uppercase())
            }
            StaticRule::ManyExclaims => {
                subject.matches('!').count() + body.matches('!').count() >= 3
            }
            StaticRule::DrugVocab => {
                let lower = body.to_lowercase();
                ["viagra", "cialis", "pills", "pharmacy", "prescription"]
                    .iter()
                    .any(|w| lower.contains(w))
            }
            StaticRule::FreeOffer => {
                let lower = body.to_lowercase();
                lower.contains("free")
                    && ["offer", "money", "gift", "trial"].iter().any(|w| lower.contains(w))
            }
            StaticRule::ClickHere => {
                let lower = body.to_lowercase();
                lower.contains("click here") || lower.contains("click below")
            }
            StaticRule::UrlRawIp => {
                // http://<digits>.<digits>... — a raw-IP host.
                body.split("http://").skip(1).any(|rest| {
                    let host: String = rest.chars().take_while(|c| !"/ \n\t".contains(*c)).collect();
                    let parts: Vec<&str> = host.split('.').collect();
                    parts.len() == 4 && parts.iter().all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
                })
            }
            StaticRule::BigMoney => body
                .split(['$', '£'])
                .skip(1)
                .any(|rest| rest.chars().take_while(|c| c.is_ascii_digit() || *c == ',').filter(|c| c.is_ascii_digit()).count() >= 5),
            StaticRule::Lottery => {
                let lower = body.to_lowercase();
                ["lottery", "jackpot", "you have won", "prize claim"]
                    .iter()
                    .any(|w| lower.contains(w))
            }
        }
    }
}

/// One rule hit in a [`SaFull`] report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleHit {
    /// Rule name (`SUBJ_ALL_CAPS`, `BAYES_99`, …).
    pub rule: String,
    /// Points contributed.
    pub points: f64,
}

/// The full engine: static rules + the Bayes bucket.
#[derive(Debug, Clone)]
pub struct SaFull {
    bayes: SaBayes,
}

impl Default for SaFull {
    fn default() -> Self {
        Self::new()
    }
}

impl SaFull {
    /// A fresh engine with stock-flavoured constants.
    pub fn new() -> Self {
        Self::with_options(SaOptions::default())
    }

    /// Explicit constants (shared with the embedded Bayes component).
    pub fn with_options(opts: SaOptions) -> Self {
        Self {
            bayes: SaBayes::with_options(opts),
        }
    }

    /// The embedded Bayes component.
    pub fn bayes(&self) -> &SaBayes {
        &self.bayes
    }

    /// Full scoring: every rule hit plus the Bayes bucket, and the total.
    pub fn score_report(&self, email: &Email) -> (Vec<RuleHit>, f64) {
        let mut hits = Vec::new();
        let mut total = 0.0;
        for rule in StaticRule::ALL {
            if rule.matches(email) {
                let points = rule.points();
                total += points;
                hits.push(RuleHit {
                    rule: rule.name().to_owned(),
                    points,
                });
            }
        }
        // The Bayes component only fires once it has seen both classes
        // (stock SA requires a minimum of trained messages before BAYES_*
        // rules activate).
        let (n_spam, n_ham) = self.bayes.training_counts();
        if n_spam > 0 && n_ham > 0 {
            let p = self.bayes.classify(email).score;
            let (bucket, points) = SaBayes::bayes_bucket(p);
            if points != 0.0 {
                total += points;
                hits.push(RuleHit {
                    rule: bucket.to_owned(),
                    points,
                });
            }
        }
        (hits, total)
    }
}

impl StatFilter for SaFull {
    fn name(&self) -> &'static str {
        "sa-full"
    }

    fn train(&mut self, email: &Email, label: Label) {
        self.bayes.train(email, label);
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        self.bayes.train_many(email, label, n);
    }

    fn classify(&self, email: &Email) -> Scored {
        let (hits, points) = self.score_report(email);
        let required = self.bayes.options().required_score;
        let marginal = self.bayes.options().marginal_band;
        let verdict = if points >= required {
            Verdict::Spam
        } else if points >= required - marginal {
            Verdict::Unsure
        } else {
            Verdict::Ham
        };
        // Map points onto [0, 1] for the shared scale: required_score ↦ the
        // conventional 0.9 spam cutoff, linear in between, saturating at 1.
        let score = (points.max(0.0) / required * 0.9).min(1.0);
        Scored {
            score,
            verdict,
            n_clues: hits.len(),
        }
    }

    fn training_counts(&self) -> (u32, u32) {
        self.bayes.training_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(b: &str) -> Email {
        Email::builder().body(b).build()
    }

    fn trained_bayes() -> SaBayes {
        let mut f = SaBayes::new();
        for i in 0..20 {
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
            f.train(&body(&format!("meeting agenda notes item{i}")), Label::Ham);
        }
        f
    }

    #[test]
    fn bayes_component_classifies() {
        let f = trained_bayes();
        assert_eq!(f.classify(&body("cheap pills offer")).verdict, Verdict::Spam);
        assert_eq!(f.classify(&body("meeting agenda notes")).verdict, Verdict::Ham);
    }

    #[test]
    fn bucket_ladder_is_monotone() {
        let probs = [0.001, 0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97, 0.995, 0.9999];
        let mut last = f64::NEG_INFINITY;
        for p in probs {
            let (_, pts) = SaBayes::bayes_bucket(p);
            assert!(pts >= last, "bucket points not monotone at p = {p}");
            last = pts;
        }
        assert_eq!(SaBayes::bayes_bucket(0.9999), ("BAYES_999", 3.7));
        assert_eq!(SaBayes::bayes_bucket(0.001), ("BAYES_00", -1.9));
    }

    #[test]
    fn static_rules_fire_on_their_shapes() {
        let caps = Email::builder().subject("BUY THIS NOW").body("x").build();
        assert!(StaticRule::SubjAllCaps.matches(&caps));
        assert!(!StaticRule::SubjAllCaps.matches(&body("quiet")));

        assert!(StaticRule::ManyExclaims.matches(&body("wow!!! amazing")));
        assert!(StaticRule::DrugVocab.matches(&body("generic VIAGRA here")));
        assert!(StaticRule::FreeOffer.matches(&body("free trial offer")));
        assert!(StaticRule::ClickHere.matches(&body("please Click Here now")));
        assert!(StaticRule::UrlRawIp.matches(&body("visit http://10.1.2.3/buy")));
        assert!(!StaticRule::UrlRawIp.matches(&body("visit http://example.org/buy")));
        assert!(StaticRule::BigMoney.matches(&body("claim $1,500,000 today")));
        assert!(StaticRule::Lottery.matches(&body("the national lottery board")));
    }

    #[test]
    fn clean_ham_scores_zero_points() {
        let f = SaFull::new();
        let (hits, points) = f.score_report(&body("quarterly budget review attached"));
        assert!(hits.is_empty(), "unexpected hits: {hits:?}");
        assert_eq!(points, 0.0);
    }

    #[test]
    fn bayes_rule_needs_both_classes() {
        let mut f = SaFull::new();
        f.train(&body("cheap pills offer"), Label::Spam);
        // Only spam trained: the BAYES_* rule must not fire.
        let (hits, _) = f.score_report(&body("cheap pills offer"));
        assert!(hits.iter().all(|h| !h.rule.starts_with("BAYES")));
    }

    #[test]
    fn spam_with_rule_hits_crosses_required_score() {
        let mut f = SaFull::new();
        for i in 0..20 {
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
            f.train(&body(&format!("meeting agenda notes item{i}")), Label::Ham);
        }
        let spam = Email::builder()
            .subject("WINNER TODAY")
            .body("free offer! click here! cheap pills from http://10.0.0.1/shop")
            .build();
        let s = f.classify(&spam);
        assert_eq!(s.verdict, Verdict::Spam, "score {}", s.score);
    }

    #[test]
    fn poisoned_bayes_alone_cannot_condemn_clean_ham() {
        // The paper's §1 caveat, in miniature: poison the Bayes state so the
        // Bayes probability of ham vocabulary is high, and verify the full
        // engine still delivers a rule-clean ham message. Mid-frequency
        // vocabulary (each word in 5 of 20 ham) — the shape the dictionary
        // attack actually flips.
        let vocab = ["quarterly", "budget", "forecast", "ledger"];
        let mut f = SaFull::new();
        for i in 0..20 {
            let w = vocab[i % 4];
            f.train(&body(&format!("{w} common filler{i}")), Label::Ham);
            f.train(&body(&format!("cheap pills offer blast{i}")), Label::Spam);
        }
        let target = body("quarterly budget forecast ledger");
        assert_eq!(f.classify(&target).verdict, Verdict::Ham);
        // Dictionary attack over the ham vocabulary, trained as spam.
        f.train_many(&target, Label::Spam, 200);
        // The Bayes component alone is thoroughly poisoned…
        let bayes_p = f.bayes().classify(&target).score;
        assert!(bayes_p > 0.8, "bayes not poisoned: {bayes_p}");
        // …but its bucket contributes at most 3.7 < 5.0 points: the full
        // engine must not mark the rule-clean message spam.
        let s = f.classify(&target);
        assert_ne!(s.verdict, Verdict::Spam, "static rules failed to save ham");
    }

    #[test]
    fn full_engine_scored_scale_is_bounded() {
        let f = SaFull::new();
        let wild = Email::builder()
            .subject("FREE MONEY WINNER")
            .body("free offer!!! click here lottery jackpot $1,000,000 viagra http://1.2.3.4/x")
            .build();
        let s = f.classify(&wild);
        assert!(s.score <= 1.0 && s.score >= 0.0);
        assert_eq!(s.verdict, Verdict::Spam);
    }
}
