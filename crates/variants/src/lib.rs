//! # sb-variants — the other statistical filters the paper names
//!
//! The paper attacks SpamBayes but argues (§1 footnote 1, §7) that the same
//! causative availability attacks apply to every filter built on the same
//! statistical core — naming **BogoFilter** and the **Bayes component of
//! SpamAssassin** explicitly, and noting that "the primary difference between
//! the learning elements of these three filters is in their tokenization
//! methods". It also cautions that SpamAssassin "uses the learner only as
//! one component of a broader filtering strategy", which blunts the attack.
//!
//! This crate makes both claims testable by reimplementing the family:
//!
//! | Filter | Module | Learning core | Decision |
//! |---|---|---|---|
//! | Paul Graham's *A Plan for Spam* (2002) | [`graham`] | per-token naive Bayes odds, 15 strongest clues | binary at 0.9 |
//! | BogoFilter (≈0.9x defaults) | [`bogofilter`] | Robinson geometric-mean scores + Fisher chi-square | tri-state at 0.45 / 0.99 |
//! | SpamAssassin Bayes component (3.x) | [`spamassassin`] | chi-square combining, case-kept tokens | `BAYES_XX` score buckets |
//! | SpamAssassin full rule engine | [`spamassassin`] | static heuristic rules **+** the Bayes bucket | points vs `required_score = 5.0` |
//! | Multinomial naive Bayes baseline | [`nb`] | token-frequency likelihoods, Laplace smoothing | posterior thresholds |
//!
//! All of them implement [`StatFilter`], the minimal train/classify surface
//! the attack-transfer experiments need; `sb_filter::SpamBayes` implements it
//! too, so experiments can sweep the whole zoo uniformly (see
//! `sb-experiments::figures::transfer`).
//!
//! ## What transfers and what doesn't
//!
//! The dictionary attack poisons *token statistics*; every filter above
//! trusts token statistics, so every *pure* learner in the zoo is expected to
//! degrade. The full SpamAssassin engine is the designed exception: its
//! static rules are invariant to training-set contamination and the Bayes
//! bucket contributes at most 3.7 of the 5.0 points needed to mark a message
//! spam, so poisoned ham stays deliverable — reproducing the paper's caveat.
//!
//! ```
//! use sb_email::{Email, Label};
//! use sb_variants::{GrahamFilter, StatFilter};
//!
//! let mut g = GrahamFilter::new();
//! for i in 0..10 {
//!     g.train(&Email::builder().body(format!("cheap pills offer {i}")).build(), Label::Spam);
//!     g.train(&Email::builder().body(format!("meeting agenda notes {i}")).build(), Label::Ham);
//! }
//! let v = g.classify(&Email::builder().body("cheap pills now").build());
//! assert_eq!(v.verdict, sb_filter::Verdict::Spam);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bogofilter;
pub mod graham;
pub mod nb;
pub mod spamassassin;

pub use bogofilter::{BogoFilter, BogoOptions};
pub use graham::{GrahamFilter, GrahamOptions};
pub use nb::{MultinomialNb, NbOptions};
pub use spamassassin::{RuleHit, SaBayes, SaFull, SaOptions, StaticRule};

use sb_email::{Email, Label};
use sb_filter::{Scored, SpamBayes};

/// The minimal surface a statistical spam filter exposes to the
/// attack-transfer experiments: train on labelled messages, classify new
/// ones onto the common `[0, 1]` score / tri-state verdict scale.
///
/// Implementations own their tokenizer — the paper's point is precisely that
/// these filters differ in tokenization, so token sets cannot be shared
/// across filters.
pub trait StatFilter {
    /// Short identifier used in reports ("spambayes", "graham", …).
    fn name(&self) -> &'static str;

    /// Learn one labelled message.
    fn train(&mut self, email: &Email, label: Label);

    /// Learn `n` byte-identical copies of a message (the dictionary-attack
    /// fast path: tokenize once, count `n` times). Implementations override
    /// the default loop when they can do better.
    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        for _ in 0..n {
            self.train(email, label);
        }
    }

    /// Score and classify a message. `score` is on `[0, 1]` with 1 = surely
    /// spam; `verdict` applies the filter's own decision thresholds.
    fn classify(&self, email: &Email) -> Scored;

    /// Number of (spam, ham) training messages seen.
    fn training_counts(&self) -> (u32, u32);
}

impl StatFilter for SpamBayes {
    fn name(&self) -> &'static str {
        "spambayes"
    }

    fn train(&mut self, email: &Email, label: Label) {
        SpamBayes::train(self, email, label);
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        let set = self.token_set(email);
        self.train_tokens(&set, label, n);
    }

    fn classify(&self, email: &Email) -> Scored {
        SpamBayes::classify(self, email)
    }

    fn training_counts(&self) -> (u32, u32) {
        SpamBayes::training_counts(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_filter::Verdict;

    fn spam(i: usize) -> Email {
        Email::builder()
            .subject("Act now")
            .body(format!("cheap pills offer winner{i} click here"))
            .build()
    }

    fn ham(i: usize) -> Email {
        Email::builder()
            .subject("Project sync")
            .body(format!("meeting agenda notes budget item{i}"))
            .build()
    }

    /// Every filter in the zoo learns the same toy distribution.
    fn zoo() -> Vec<Box<dyn StatFilter>> {
        vec![
            Box::new(SpamBayes::new()),
            Box::new(GrahamFilter::new()),
            Box::new(BogoFilter::new()),
            Box::new(SaBayes::new()),
            Box::new(SaFull::new()),
            Box::new(MultinomialNb::new()),
        ]
    }

    #[test]
    fn all_filters_learn_the_toy_distribution() {
        for mut f in zoo() {
            for i in 0..25 {
                f.train(&spam(i), Label::Spam);
                f.train(&ham(i), Label::Ham);
            }
            let s = f.classify(&spam(99));
            let h = f.classify(&ham(99));
            assert!(
                s.score > h.score,
                "{}: spam score {} not above ham score {}",
                f.name(),
                s.score,
                h.score
            );
            assert_ne!(
                h.verdict,
                Verdict::Spam,
                "{}: clean ham classified spam",
                f.name()
            );
        }
    }

    #[test]
    fn train_many_matches_training_loop() {
        for (mut a, mut b) in zoo().into_iter().zip(zoo()) {
            for i in 0..5 {
                a.train(&ham(i), Label::Ham);
                b.train(&ham(i), Label::Ham);
            }
            a.train_many(&spam(0), Label::Spam, 9);
            for _ in 0..9 {
                b.train(&spam(0), Label::Spam);
            }
            let e = spam(1);
            let (sa, sb) = (a.classify(&e), b.classify(&e));
            assert!(
                (sa.score - sb.score).abs() < 1e-12,
                "{}: fast path diverges: {} vs {}",
                a.name(),
                sa.score,
                sb.score
            );
            assert_eq!(a.training_counts(), b.training_counts(), "{}", a.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = zoo().iter().map(|f| f.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate filter names: {names:?}");
    }

    #[test]
    fn untrained_filters_do_not_call_spam() {
        for f in zoo() {
            let v = f.classify(&ham(0));
            assert_ne!(v.verdict, Verdict::Spam, "{} spams blind", f.name());
            assert_eq!(f.training_counts(), (0, 0));
        }
    }
}
