//! A BogoFilter-flavoured learner: same Robinson × Fisher statistical core
//! as SpamBayes (the paper's footnote 1 — "the primary difference … is in
//! their tokenization methods"), with BogoFilter's default constants and its
//! token rules.
//!
//! Differences from the SpamBayes configuration, per the bogofilter 0.9x
//! defaults this emulates:
//!
//! * prior `x` = `robx` = **0.52** (vs 0.5) and prior strength `s` = `robs`
//!   = **0.0178** (vs 0.45) — a far weaker prior, so single sightings move
//!   scores hard;
//! * **no clue cap**: every token outside the `min_dev` band participates
//!   (SpamBayes stops at 150);
//! * decision cutoffs `ham_cutoff` = **0.45**, `spam_cutoff` = **0.99**;
//! * tokenization keeps case and emits no `skip:` placeholders
//!   ([`TokenizerOptions::bogofilter_flavor`]).
//!
//! Omitted BogoFilter features, documented for honesty: the ESF
//! (effective-size-factor) correction, token degeneration, and multi-corpus
//! wordlists. None of them changes which *side* a poisoned token lands on,
//! which is what the transfer experiment measures.
//!
//! The attack-relevant consequence of the weak prior: a dictionary token
//! trained once as spam jumps from 0.52 to ≈0.99 immediately (SpamBayes
//! needs the sighting to fight `s` = 0.45), so BogoFilter degrades *at
//! least* as fast as SpamBayes under the §3.2 attacks.

use crate::StatFilter;
use sb_email::{Email, Label};
use sb_filter::classify::score_token_set;
use sb_filter::{FilterOptions, Scored, TokenDb};
use sb_tokenizer::{Tokenizer, TokenizerOptions};
use serde::{Deserialize, Serialize};

/// BogoFilter's learner constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BogoOptions {
    /// `robx`: the score of a never-seen token (default 0.52).
    pub robx: f64,
    /// `robs`: prior strength (default 0.0178).
    pub robs: f64,
    /// `min_dev`: tokens with `|f(w) − 0.5|` below this are ignored
    /// (default 0.1).
    pub min_dev: f64,
    /// Scores at or below this are ham (default 0.45).
    pub ham_cutoff: f64,
    /// Scores above this are spam (default 0.99).
    pub spam_cutoff: f64,
}

impl Default for BogoOptions {
    fn default() -> Self {
        Self {
            robx: 0.52,
            robs: 0.0178,
            min_dev: 0.1,
            ham_cutoff: 0.45,
            spam_cutoff: 0.99,
        }
    }
}

impl BogoOptions {
    /// Translate to the shared Robinson/Fisher engine's options. The engine
    /// and formulas are identical (Eqs. 1–4 of the paper); only constants
    /// and the missing clue cap differ.
    pub fn to_filter_options(self) -> FilterOptions {
        FilterOptions {
            unknown_word_strength: self.robs,
            unknown_word_prob: self.robx,
            minimum_prob_strength: self.min_dev,
            max_discriminators: usize::MAX,
            ham_cutoff: self.ham_cutoff,
            spam_cutoff: self.spam_cutoff,
        }
    }
}

/// The BogoFilter-flavoured filter.
#[derive(Debug, Clone)]
pub struct BogoFilter {
    db: TokenDb,
    opts: BogoOptions,
    filter_opts: FilterOptions,
    tokenizer: Tokenizer,
}

impl Default for BogoFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl BogoFilter {
    /// A fresh filter with bogofilter defaults.
    pub fn new() -> Self {
        Self::with_options(BogoOptions::default())
    }

    /// A filter with explicit constants.
    pub fn with_options(opts: BogoOptions) -> Self {
        let filter_opts = opts.to_filter_options();
        filter_opts
            .validate()
            .expect("BogoOptions must translate to valid engine options");
        Self {
            db: TokenDb::new(),
            opts,
            filter_opts,
            tokenizer: Tokenizer::with_options(TokenizerOptions::bogofilter_flavor()),
        }
    }

    /// The constants in use.
    pub fn options(&self) -> &BogoOptions {
        &self.opts
    }

    /// The smoothed score f(w) of one token under bogofilter constants.
    pub fn token_score(&self, token: &str) -> f64 {
        sb_filter::score::token_score(&self.db, token, &self.filter_opts)
    }

    fn token_set(&self, email: &Email) -> Vec<String> {
        self.tokenizer.token_set(email)
    }
}

impl StatFilter for BogoFilter {
    fn name(&self) -> &'static str {
        "bogofilter"
    }

    fn train(&mut self, email: &Email, label: Label) {
        let set = self.token_set(email);
        self.db.train(&set, label);
    }

    fn train_many(&mut self, email: &Email, label: Label, n: u32) {
        let set = self.token_set(email);
        self.db.train_many(&set, label, n);
    }

    fn classify(&self, email: &Email) -> Scored {
        let set = self.token_set(email);
        score_token_set(&set, &self.db, &self.filter_opts)
    }

    fn training_counts(&self) -> (u32, u32) {
        (self.db.n_spam(), self.db.n_ham())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_filter::Verdict;

    fn body(b: &str) -> Email {
        Email::builder().body(b).build()
    }

    fn trained() -> BogoFilter {
        let mut f = BogoFilter::new();
        for i in 0..20 {
            f.train(&body(&format!("Cheap Pills Offer blast{i}")), Label::Spam);
            f.train(&body(&format!("Meeting Agenda Notes item{i}")), Label::Ham);
        }
        f
    }

    #[test]
    fn defaults_are_bogofilter_constants() {
        let o = BogoOptions::default();
        assert_eq!(o.robx, 0.52);
        assert_eq!(o.robs, 0.0178);
        assert_eq!(o.min_dev, 0.1);
        assert_eq!(o.ham_cutoff, 0.45);
        assert_eq!(o.spam_cutoff, 0.99);
        assert_eq!(o.to_filter_options().max_discriminators, usize::MAX);
    }

    #[test]
    fn unknown_token_scores_robx() {
        let f = trained();
        assert!((f.token_score("NeverSeen") - 0.52).abs() < 1e-12);
    }

    #[test]
    fn case_is_preserved() {
        let f = trained();
        // Trained as "Pills" (case kept); the lowercase variant is unknown.
        assert!(f.token_score("Pills") > 0.9);
        assert!((f.token_score("pills") - 0.52).abs() < 1e-12);
    }

    #[test]
    fn weak_prior_moves_fast() {
        let mut f = BogoFilter::new();
        // Token stays within the 12-char limit (longer words are dropped
        // under the bogofilter profile, which emits no skip tokens).
        f.train(&body("Sighting filler words"), Label::Spam);
        f.train(&body("Calm other words"), Label::Ham);
        // One spam sighting with s = 0.0178: f(w) ≈ (0.0178·0.52 + 1·1.0) /
        // (0.0178 + 1) ≈ 0.9916. SpamBayes' s = 0.45 would give ≈ 0.845.
        let fw = f.token_score("Sighting");
        assert!(fw > 0.98, "weak prior must move hard: {fw}");
    }

    #[test]
    fn overlong_words_are_dropped_not_skipped() {
        let mut f = BogoFilter::new();
        f.train(&body("Supercalifragilistic filler"), Label::Spam);
        f.train(&body("Calm words"), Label::Ham);
        // 20 chars > 12: dropped entirely; stays at the robx prior.
        assert!((f.token_score("Supercalifragilistic") - 0.52).abs() < 1e-12);
    }

    #[test]
    fn classifies_spam_and_ham() {
        let f = trained();
        let s = f.classify(&body("Cheap Pills Offer"));
        assert_eq!(s.verdict, Verdict::Spam, "score {}", s.score);
        let h = f.classify(&body("Meeting Agenda Notes"));
        assert_eq!(h.verdict, Verdict::Ham, "score {}", h.score);
    }

    #[test]
    fn tri_state_band_is_between_045_and_099() {
        let f = trained();
        // A balanced message (one spammy + one hammy token) sits in the band.
        let m = f.classify(&body("Pills Agenda"));
        assert_eq!(m.verdict, Verdict::Unsure, "score {}", m.score);
    }

    #[test]
    fn no_clue_cap() {
        let mut f = BogoFilter::new();
        let many: String = (0..400).map(|i| format!("tok{i} ")).collect();
        f.train(&body(&many), Label::Spam);
        f.train(&body("ham words here"), Label::Ham);
        let s = f.classify(&body(&many));
        // All 400 tokens participate (SpamBayes would cap at 150).
        assert!(s.n_clues > 150, "clue cap leaked in: {}", s.n_clues);
    }

    #[test]
    fn dictionary_poisoning_flips_ham() {
        let mut f = trained();
        let attack = body("Meeting Agenda Notes Budget Review");
        f.train_many(&attack, Label::Spam, 40);
        let h = f.classify(&body("Meeting Agenda Notes"));
        assert_ne!(
            h.verdict,
            Verdict::Ham,
            "poisoned ham must stop being deliverable: score {}",
            h.score
        );
    }
}
