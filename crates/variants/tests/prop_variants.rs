//! Property tests for the filter zoo: every variant must uphold the basic
//! contracts of a statistical filter no matter what bytes it is fed.

use proptest::prelude::*;
use sb_email::{Email, Label};
use sb_filter::SpamBayes;
use sb_variants::{BogoFilter, GrahamFilter, MultinomialNb, SaBayes, SaFull, StatFilter};

fn zoo() -> Vec<Box<dyn StatFilter>> {
    vec![
        Box::new(SpamBayes::new()),
        Box::new(GrahamFilter::new()),
        Box::new(BogoFilter::new()),
        Box::new(SaBayes::new()),
        Box::new(SaFull::new()),
        Box::new(MultinomialNb::new()),
    ]
}

/// Arbitrary text bodies: printable-ish ASCII plus some unicode and control
/// characters to shake the tokenizers.
fn arb_body() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{00e9}\u{4e2d}\n\t]{0,400}").unwrap()
}

fn arb_subject() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,60}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scores stay on [0, 1] and classification never panics, for any input.
    #[test]
    fn scores_bounded_on_arbitrary_input(
        bodies in proptest::collection::vec((arb_body(), any::<bool>()), 1..12),
        probe in arb_body(),
        subject in arb_subject(),
    ) {
        for mut f in zoo() {
            for (body, is_spam) in &bodies {
                let label = if *is_spam { Label::Spam } else { Label::Ham };
                f.train(&Email::builder().subject(subject.clone()).body(body.clone()).build(), label);
            }
            let s = f.classify(&Email::builder().body(probe.clone()).build());
            prop_assert!((0.0..=1.0).contains(&s.score),
                "{}: score out of range: {}", f.name(), s.score);
        }
    }

    /// Training more spam copies of a message never lowers its spam score
    /// (monotone contamination — the mechanism behind every attack in the
    /// paper).
    #[test]
    fn more_spam_training_never_lowers_score(
        body in "[a-z]{3,10}( [a-z]{3,10}){2,10}",
        reps in 1u32..20,
    ) {
        for mut f in zoo() {
            // A little balanced background so priors are defined.
            for i in 0..5 {
                f.train(&Email::builder().body(format!("background spamword{i}")).build(), Label::Spam);
                f.train(&Email::builder().body(format!("background hamword{i}")).build(), Label::Ham);
            }
            let e = Email::builder().body(body.clone()).build();
            let before = f.classify(&e).score;
            f.train_many(&e, Label::Spam, reps);
            let after = f.classify(&e).score;
            prop_assert!(after >= before - 1e-9,
                "{}: spam training lowered score {} -> {}", f.name(), before, after);
        }
    }

    /// train_many(n) is exactly n single trains, for every filter.
    #[test]
    fn train_many_equivalence(
        body in "[a-z]{3,8}( [a-z]{3,8}){0,6}",
        n in 1u32..12,
    ) {
        for (mut a, mut b) in zoo().into_iter().zip(zoo()) {
            let e = Email::builder().body(body.clone()).build();
            a.train_many(&e, Label::Spam, n);
            for _ in 0..n {
                b.train(&e, Label::Spam);
            }
            // Counts must agree; scores must agree on the trained message.
            prop_assert_eq!(a.training_counts(), b.training_counts());
            let (sa, sb) = (a.classify(&e).score, b.classify(&e).score);
            prop_assert!((sa - sb).abs() < 1e-12, "{}: {} vs {}", a.name(), sa, sb);
        }
    }

    /// Classification is a pure function: classifying twice gives the same
    /// answer and does not mutate the filter.
    #[test]
    fn classify_is_pure(
        train_body in "[a-z]{3,8}( [a-z]{3,8}){0,6}",
        probe in arb_body(),
    ) {
        for mut f in zoo() {
            f.train(&Email::builder().body(train_body.clone()).build(), Label::Spam);
            f.train(&Email::builder().body("some calm text here").build(), Label::Ham);
            let e = Email::builder().body(probe.clone()).build();
            let first = f.classify(&e);
            let second = f.classify(&e);
            prop_assert_eq!(first.score.to_bits(), second.score.to_bits(), "{}", f.name());
            prop_assert_eq!(first.verdict, second.verdict, "{}", f.name());
        }
    }
}

/// Deterministic (non-proptest) cross-variant check: the dictionary attack
/// transfers to every pure learner, at small scale.
///
/// Ham vocabulary is *mid-frequency* (each word in 5 of 20 ham messages):
/// tokens appearing in every ham message are pinned at or below 0.5 by the
/// per-class normalization every learner in the zoo shares, so the attack's
/// leverage — like in the paper's corpus — is the long tail of words each
/// present in a fraction of legitimate mail.
#[test]
fn dictionary_attack_transfers_to_pure_learners() {
    let vocab = ["quarterly", "budget", "forecast", "ledger"];
    for mut f in zoo() {
        for i in 0..20 {
            let w = vocab[i % 4];
            f.train(
                &Email::builder()
                    .body(format!("cheap pills offer winner{i} click"))
                    .build(),
                Label::Spam,
            );
            f.train(
                &Email::builder()
                    .body(format!("{w} common filler{i}"))
                    .build(),
                Label::Ham,
            );
        }
        let target = Email::builder().body(vocab.join(" ")).build();
        let before = f.classify(&target);
        assert_eq!(
            before.verdict,
            sb_filter::Verdict::Ham,
            "{}: clean baseline must deliver ham",
            f.name()
        );
        // Poison: the ham vocabulary trained as spam, 200 copies.
        f.train_many(&target, Label::Spam, 200);
        let after = f.classify(&target);
        if f.name() == "sa-full" {
            // The designed exception: static rules keep clean ham deliverable.
            assert_ne!(
                after.verdict,
                sb_filter::Verdict::Spam,
                "sa-full must resist pure-Bayes poisoning"
            );
        } else {
            assert_ne!(
                after.verdict,
                sb_filter::Verdict::Ham,
                "{}: attack failed to move ham out of the inbox (score {})",
                f.name(),
                after.score
            );
        }
    }
}
