//! Property tests: parsing is total, rendering round-trips canonical
//! messages, and mbox I/O is lossless for arbitrary message sets.

use proptest::prelude::*;
use sb_email::{mbox, parse_email, render_email, Email};
use std::io::Cursor;

/// Header names: RFC-ish tokens (no whitespace, no colon, no control chars).
fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

/// Header values: printable, no newlines, not starting with whitespace
/// (canonical form after unfolding).
fn header_value() -> impl Strategy<Value = String> {
    "[!-~][ -~]{0,60}".prop_map(|s| s.trim_end().to_owned())
}

/// Bodies: any printable text incl. newlines. When the message has headers,
/// parse is unambiguous regardless of body shape.
fn body_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[ -~]{0,70}", 0..8).prop_map(|lines| lines.join("\n"))
}

fn canonical_email() -> impl Strategy<Value = Email> {
    (
        proptest::collection::vec((header_name(), header_value()), 1..6),
        body_text(),
    )
        .prop_map(|(headers, body)| Email::from_parts(headers, body))
}

proptest! {
    #[test]
    fn parse_never_panics_on_arbitrary_input(raw in "\\PC{0,400}") {
        let _ = parse_email(&raw);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_email(&text);
    }

    #[test]
    fn render_parse_roundtrip(email in canonical_email()) {
        let rendered = render_email(&email);
        let back = parse_email(&rendered);
        prop_assert_eq!(back, email);
    }

    #[test]
    fn mbox_roundtrip(emails in proptest::collection::vec(canonical_email(), 0..6)) {
        // mbox is line-oriented: bodies gain a trailing newline if missing,
        // so canonicalize first, then require exact round-trip.
        let canon: Vec<Email> = emails
            .into_iter()
            .map(|e| {
                let mut body = e.body().to_owned();
                if !body.is_empty() && !body.ends_with('\n') {
                    body.push('\n');
                }
                // Collapse duplicate trailing blank lines which the format
                // cannot distinguish from the message terminator.
                while body.ends_with("\n\n") {
                    body.pop();
                }
                Email::from_parts(e.headers().to_vec(), body)
            })
            .collect();
        let bytes = mbox::write_mbox(&canon).unwrap();
        let back = mbox::read_mbox(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(back, canon);
    }

    #[test]
    fn parse_output_headers_are_wellformed(raw in "\\PC{0,300}") {
        let e = parse_email(&raw);
        for (name, _) in e.headers() {
            prop_assert!(!name.is_empty());
            prop_assert!(!name.contains(' '));
            prop_assert!(!name.contains(':'));
        }
    }
}
