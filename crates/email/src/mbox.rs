//! Streaming mbox reader/writer (mboxrd quoting convention).
//!
//! The TREC corpus ships as directories of single messages, but a realistic
//! mail pipeline needs mailbox files; the experiment harness uses this module
//! to persist generated corpora and attack mailboxes for inspection.
//!
//! Format: each message starts with a postmark line `From <addr> <date>`;
//! body lines that themselves start with one or more `>` followed by
//! `From ` are quoted with one more `>` on write and unquoted on read
//! (the *mboxrd* convention, which is reversible — unlike mboxo).

use crate::error::EmailError;
use crate::message::Email;
use crate::parse::parse_email;
use crate::render::render_email;
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{BufRead, Write};

/// The postmark used when the message has no `From:` header to echo.
const DEFAULT_POSTMARK: &str = "From MAILER-DAEMON Thu Jan  1 00:00:00 1970";

/// Write messages to an mbox stream.
#[derive(Debug)]
pub struct MboxWriter<W: Write> {
    inner: W,
    count: usize,
}

impl<W: Write> MboxWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        Self { inner, count: 0 }
    }

    /// Append one message.
    pub fn write_email(&mut self, email: &Email) -> Result<(), EmailError> {
        let addr = email
            .from_addr()
            .map(extract_addr)
            .unwrap_or_else(|| "MAILER-DAEMON".to_owned());
        if addr == "MAILER-DAEMON" {
            writeln!(self.inner, "{DEFAULT_POSTMARK}")?;
        } else {
            writeln!(self.inner, "From {addr} Thu Jan  1 00:00:00 1970")?;
        }
        let rendered = render_email(email);
        // split_inclusive avoids the phantom empty segment split('\n') yields
        // after a trailing newline; bodies without a final newline gain one
        // (the format is line-oriented and cannot represent the difference).
        for line in rendered.split_inclusive('\n') {
            let text = line.strip_suffix('\n').unwrap_or(line);
            if is_from_line_modulo_quoting(text) {
                self.inner.write_all(b">")?;
            }
            self.inner.write_all(text.as_bytes())?;
            self.inner.write_all(b"\n")?;
        }
        // Blank line terminates the message.
        self.inner.write_all(b"\n")?;
        self.count += 1;
        Ok(())
    }

    /// Messages written so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Flush and recover the inner writer.
    pub fn finish(mut self) -> Result<W, EmailError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// `true` for `From `-lines and their quoted forms (`>From `, `>>From `, …).
fn is_from_line_modulo_quoting(line: &str) -> bool {
    line.trim_start_matches('>').starts_with("From ")
}

/// Pull a bare address out of a `From:` header value
/// (`"Alice" <a@b>` → `a@b`; `a@b` → `a@b`).
fn extract_addr(value: &str) -> String {
    if let (Some(l), Some(r)) = (value.find('<'), value.rfind('>')) {
        if l < r {
            return value[l + 1..r].to_owned();
        }
    }
    value
        .split_whitespace()
        .find(|w| w.contains('@'))
        .unwrap_or("MAILER-DAEMON")
        .to_owned()
}

/// Streaming mbox reader: an iterator over parsed messages.
#[derive(Debug)]
pub struct MboxReader<R: BufRead> {
    inner: R,
    line_no: usize,
    /// Buffered postmark of the next message (already consumed from input).
    pending_postmark: bool,
    done: bool,
}

impl<R: BufRead> MboxReader<R> {
    /// Wrap a buffered reader positioned at the start of an mbox stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            line_no: 0,
            pending_postmark: false,
            done: false,
        }
    }

    fn read_line(&mut self, buf: &mut String) -> Result<usize, EmailError> {
        buf.clear();
        let n = self.inner.read_line(buf)?;
        if n > 0 {
            self.line_no += 1;
        }
        Ok(n)
    }

    fn next_message(&mut self) -> Result<Option<Email>, EmailError> {
        if self.done {
            return Ok(None);
        }
        let mut line = String::new();

        // Find the opening postmark (unless the previous call already ate it).
        if !self.pending_postmark {
            loop {
                let n = self.read_line(&mut line)?;
                if n == 0 {
                    self.done = true;
                    return Ok(None);
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    continue; // inter-message padding
                }
                if trimmed.starts_with("From ") {
                    break;
                }
                return Err(EmailError::MalformedMbox {
                    line: self.line_no,
                    reason: format!("expected `From ` postmark, got {trimmed:?}"),
                });
            }
        }
        self.pending_postmark = false;

        // Accumulate message bytes until the next postmark or EOF.
        let mut buf = BytesMut::new();
        loop {
            let n = self.read_line(&mut line)?;
            if n == 0 {
                self.done = true;
                break;
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.starts_with("From ") {
                self.pending_postmark = true;
                break;
            }
            // Un-quote mboxrd: ">From ..." → "From ...", ">>From" → ">From".
            if is_from_line_modulo_quoting(trimmed) && trimmed.starts_with('>') {
                buf.put_slice(&trimmed.as_bytes()[1..]);
            } else {
                buf.put_slice(trimmed.as_bytes());
            }
            buf.put_u8(b'\n');
        }

        let raw: Bytes = buf.freeze();
        let mut text = String::from_utf8_lossy(&raw).into_owned();
        // Drop the blank terminator line the writer appends.
        if text.ends_with("\n\n") {
            text.truncate(text.len() - 1);
        }
        Ok(Some(parse_email(&text)))
    }
}

impl<R: BufRead> Iterator for MboxReader<R> {
    type Item = Result<Email, EmailError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_message().transpose()
    }
}

/// Read an entire mbox into memory.
pub fn read_mbox<R: BufRead>(reader: R) -> Result<Vec<Email>, EmailError> {
    MboxReader::new(reader).collect()
}

/// Write a slice of messages as an mbox byte vector.
pub fn write_mbox(emails: &[Email]) -> Result<Vec<u8>, EmailError> {
    let mut w = MboxWriter::new(Vec::new());
    for e in emails {
        w.write_email(e)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Email;
    use std::io::Cursor;

    fn sample(i: usize) -> Email {
        Email::builder()
            .from_addr(format!("user{i}@example.org"))
            .subject(format!("message {i}"))
            .body(format!("line one of {i}\nline two\n"))
            .build()
    }

    #[test]
    fn roundtrip_multiple_messages() {
        let msgs: Vec<Email> = (0..5).map(sample).collect();
        let bytes = write_mbox(&msgs).unwrap();
        let back = read_mbox(Cursor::new(bytes)).unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn from_lines_in_body_are_quoted_reversibly() {
        let tricky = Email::builder()
            .from_addr("a@b")
            .subject("tricky")
            .body("From the top\n>From quoted already\n>>From deeper\nnormal\n")
            .build();
        let bytes = write_mbox(std::slice::from_ref(&tricky)).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        // All three get one more level of quoting on the wire.
        assert!(text.contains("\n>From the top\n"));
        assert!(text.contains("\n>>From quoted already\n"));
        assert!(text.contains("\n>>>From deeper\n"));
        let back = read_mbox(Cursor::new(bytes)).unwrap();
        assert_eq!(back, vec![tricky]);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(read_mbox(Cursor::new(Vec::<u8>::new())).unwrap().is_empty());
    }

    #[test]
    fn garbage_before_postmark_is_an_error() {
        let err = read_mbox(Cursor::new(b"not a postmark\n".to_vec())).unwrap_err();
        match err {
            EmailError::MalformedMbox { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn headerless_attack_email_roundtrips() {
        // The paper's dictionary-attack emails have empty headers (§4.1).
        let mut atk = Email::new();
        atk.set_body("word1 word2 word3\n");
        let bytes = write_mbox(std::slice::from_ref(&atk)).unwrap();
        let back = read_mbox(Cursor::new(bytes)).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back[0].has_empty_headers());
        assert_eq!(back[0].body(), "word1 word2 word3\n");
    }

    #[test]
    fn writer_counts() {
        let mut w = MboxWriter::new(Vec::new());
        w.write_email(&sample(0)).unwrap();
        w.write_email(&sample(1)).unwrap();
        assert_eq!(w.count(), 2);
    }

    #[test]
    fn extract_addr_variants() {
        assert_eq!(extract_addr("Alice <a@b.c>"), "a@b.c");
        assert_eq!(extract_addr("a@b.c"), "a@b.c");
        assert_eq!(extract_addr("nothing here"), "MAILER-DAEMON");
    }
}
