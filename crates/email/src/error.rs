//! Error type for email I/O.

use std::fmt;

/// Errors produced by mbox I/O. (Message parsing itself is total and never
/// fails: malformed input degrades to a body-only message.)
#[derive(Debug)]
pub enum EmailError {
    /// Underlying I/O failure while reading or writing a mailbox.
    Io(std::io::Error),
    /// The mbox stream was malformed beyond recovery (e.g. content before
    /// the first `From ` separator line).
    MalformedMbox {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for EmailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmailError::Io(e) => write!(f, "I/O error: {e}"),
            EmailError::MalformedMbox { line, reason } => {
                write!(f, "malformed mbox at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for EmailError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmailError::Io(e) => Some(e),
            EmailError::MalformedMbox { .. } => None,
        }
    }
}

impl From<std::io::Error> for EmailError {
    fn from(e: std::io::Error) -> Self {
        EmailError::Io(e)
    }
}
