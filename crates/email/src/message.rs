//! The in-memory email model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth label of a training or test message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Legitimate mail.
    Ham,
    /// Unsolicited mail.
    Spam,
}

impl Label {
    /// The other label.
    pub fn flip(self) -> Label {
        match self {
            Label::Ham => Label::Spam,
            Label::Spam => Label::Ham,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Ham => write!(f, "ham"),
            Label::Spam => write!(f, "spam"),
        }
    }
}

/// A flat email: an ordered list of header fields plus a body.
///
/// Headers preserve order and duplicates (real mail has several `Received:`
/// lines); lookup is case-insensitive on the field name, returning the first
/// match, like typical MUA behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Email {
    headers: Vec<(String, String)>,
    body: String,
}

impl Email {
    /// An empty message (no headers, empty body).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a message fluently.
    pub fn builder() -> EmailBuilder {
        EmailBuilder::default()
    }

    /// Construct directly from parts.
    pub fn from_parts(headers: Vec<(String, String)>, body: String) -> Self {
        Self { headers, body }
    }

    /// All header fields in order.
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    /// The message body.
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Mutable access to the body.
    pub fn body_mut(&mut self) -> &mut String {
        &mut self.body
    }

    /// Replace the body.
    pub fn set_body(&mut self, body: impl Into<String>) {
        self.body = body.into();
    }

    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for a header name (case-insensitive), in order.
    pub fn header_all(&self, name: &str) -> Vec<&str> {
        self.headers
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Append a header field.
    pub fn push_header(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.headers.push((name.into(), value.into()));
    }

    /// Remove all headers with the given name; returns how many were removed.
    pub fn remove_header(&mut self, name: &str) -> usize {
        let before = self.headers.len();
        self.headers.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.headers.len()
    }

    /// Replace all occurrences of a header with a single value.
    pub fn set_header(&mut self, name: &str, value: impl Into<String>) {
        self.remove_header(name);
        self.push_header(name.to_owned(), value);
    }

    /// Convenience accessor for `Subject:`.
    pub fn subject(&self) -> Option<&str> {
        self.header("Subject")
    }

    /// Convenience accessor for `From:`.
    pub fn from_addr(&self) -> Option<&str> {
        self.header("From")
    }

    /// True when the message has no headers at all (the paper's dictionary
    /// attack emails are sent with empty headers, §4.1).
    pub fn has_empty_headers(&self) -> bool {
        self.headers.is_empty()
    }

    /// Approximate wire size in bytes (headers + separators + body).
    pub fn wire_len(&self) -> usize {
        self.headers
            .iter()
            .map(|(n, v)| n.len() + 2 + v.len() + 1)
            .sum::<usize>()
            + 1
            + self.body.len()
    }
}

/// Fluent builder for [`Email`].
#[derive(Debug, Default, Clone)]
pub struct EmailBuilder {
    headers: Vec<(String, String)>,
    body: String,
}

impl EmailBuilder {
    /// Append any header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Set `From:`.
    pub fn from_addr(self, value: impl Into<String>) -> Self {
        self.header("From", value)
    }

    /// Set `To:`.
    pub fn to_addr(self, value: impl Into<String>) -> Self {
        self.header("To", value)
    }

    /// Set `Subject:`.
    pub fn subject(self, value: impl Into<String>) -> Self {
        self.header("Subject", value)
    }

    /// Set the body.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Finish building.
    pub fn build(self) -> Email {
        Email {
            headers: self.headers,
            body: self.body,
        }
    }
}

/// An email together with its ground-truth label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledEmail {
    /// The message.
    pub email: Email,
    /// Ground truth.
    pub label: Label,
}

impl LabeledEmail {
    /// Pair a message with its label.
    pub fn new(email: Email, label: Label) -> Self {
        Self { email, label }
    }

    /// Shorthand for a ham message.
    pub fn ham(email: Email) -> Self {
        Self::new(email, Label::Ham)
    }

    /// Shorthand for a spam message.
    pub fn spam(email: Email) -> Self {
        Self::new(email, Label::Spam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let e = Email::builder()
            .from_addr("alice@example.org")
            .to_addr("bob@example.org")
            .subject("quarterly bid")
            .body("numbers attached")
            .build();
        assert_eq!(e.from_addr(), Some("alice@example.org"));
        assert_eq!(e.subject(), Some("quarterly bid"));
        assert_eq!(e.body(), "numbers attached");
        assert_eq!(e.headers().len(), 3);
    }

    #[test]
    fn header_lookup_is_case_insensitive_first_match() {
        let mut e = Email::new();
        e.push_header("Received", "first");
        e.push_header("received", "second");
        assert_eq!(e.header("RECEIVED"), Some("first"));
        assert_eq!(e.header_all("Received"), vec!["first", "second"]);
    }

    #[test]
    fn set_header_replaces_all() {
        let mut e = Email::new();
        e.push_header("X-Flag", "a");
        e.push_header("X-Flag", "b");
        e.set_header("x-flag", "c");
        assert_eq!(e.header_all("X-Flag"), vec!["c"]);
    }

    #[test]
    fn remove_header_counts() {
        let mut e = Email::new();
        e.push_header("A", "1");
        e.push_header("B", "2");
        e.push_header("a", "3");
        assert_eq!(e.remove_header("A"), 2);
        assert_eq!(e.headers().len(), 1);
        assert_eq!(e.remove_header("missing"), 0);
    }

    #[test]
    fn label_flip() {
        assert_eq!(Label::Ham.flip(), Label::Spam);
        assert_eq!(Label::Spam.flip(), Label::Ham);
        assert_eq!(Label::Ham.to_string(), "ham");
    }

    #[test]
    fn empty_headers_flag() {
        assert!(Email::new().has_empty_headers());
        let e = Email::builder().subject("s").build();
        assert!(!e.has_empty_headers());
    }

    #[test]
    fn wire_len_counts_all_parts() {
        let e = Email::builder().header("A", "b").body("cd").build();
        // "A: b\n" = 5, separator "\n" = 1, body = 2
        assert_eq!(e.wire_len(), 8);
    }
}
