//! # sb-email — email substrate
//!
//! A small, robust RFC-2822-lite email model used by every other crate in
//! the reproduction:
//!
//! * [`message`] — [`Email`], [`Label`] (ham/spam), [`LabeledEmail`] and a
//!   builder;
//! * [`parse`] — a tolerant wire-format parser (header folding, missing
//!   bodies, arbitrary bytes survive as lossy UTF-8);
//! * [`render`] — the inverse serializer;
//! * [`mbox`] — streaming mbox (mboxrd quoting) reader and writer;
//! * [`dataset`] — a labelled email collection with counting and index-based
//!   splitting helpers (fold logic lives in `sb-corpus`).
//!
//! The model is deliberately simpler than full RFC 5322 — no MIME tree, no
//! encoded-words — because the SpamBayes learner the paper attacks operates
//! on header lines and flat bodies. What matters here is that parsing is
//! total (never panics on hostile input) and render∘parse is the identity on
//! the canonical form, which the property tests in this crate pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod mbox;
pub mod message;
pub mod parse;
pub mod render;

pub use dataset::Dataset;
pub use error::EmailError;
pub use message::{Email, EmailBuilder, Label, LabeledEmail};
pub use parse::parse_email;
pub use render::render_email;
