//! Tolerant wire-format parsing.
//!
//! The grammar is RFC-2822-lite: a block of `Name: value` header lines
//! (values may fold across lines that start with whitespace), a blank line,
//! then the body. The parser is *total*: any input produces an [`Email`].
//! Garbage that cannot be a header block is treated as body, matching how
//! SpamBayes tokenizes malformed mail rather than dropping it.

use crate::message::Email;

/// Parse a message from its wire form.
///
/// Rules:
/// * Header lines are `Name: value` where `Name` contains no whitespace or
///   colon. A line starting with space/tab continues the previous header
///   (unfolding inserts a single space).
/// * The first blank line ends the headers; everything after is the body.
/// * If the *first* line does not look like a header, the whole input is
///   body (an email with no headers — the paper's attack emails do this).
/// * CRLF and LF line endings are both accepted; output is normalized to LF.
pub fn parse_email(raw: &str) -> Email {
    let text = raw.replace("\r\n", "\n");
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut lines = text.split('\n').peekable();

    // Decide whether a header block exists at all.
    let first_is_header = lines
        .peek()
        .map(|l| looks_like_header(l))
        .unwrap_or(false);
    if !first_is_header {
        return Email::from_parts(Vec::new(), text);
    }

    let mut body_start: Option<usize> = None;
    let mut consumed = 0usize; // bytes consumed including newline
    for line in text.split('\n') {
        let line_len = line.len() + 1; // +1 for the split '\n'
        if line.is_empty() {
            // Blank line: headers end; body is the rest.
            body_start = Some(consumed + line_len);
            break;
        }
        if let Some(rest) = line.strip_prefix(|c: char| c == ' ' || c == '\t') {
            // Folded continuation of the previous header.
            match headers.last_mut() {
                Some((_, v)) => {
                    v.push(' ');
                    v.push_str(rest.trim_start());
                }
                None => {
                    // Continuation with no preceding header: treat the whole
                    // input as body (cannot happen when first_is_header, but
                    // stay total).
                    return Email::from_parts(Vec::new(), text);
                }
            }
        } else if let Some((name, value)) = split_header(line) {
            headers.push((name.to_owned(), value.to_owned()));
        } else {
            // Non-header, non-blank line inside the header block: header
            // block ends here and this line starts the body (tolerates the
            // common "no blank line before body" corruption).
            body_start = Some(consumed);
            break;
        }
        consumed += line_len;
    }

    let body = match body_start {
        Some(off) if off <= text.len() => text[off..].to_owned(),
        Some(_) | None => String::new(),
    };
    Email::from_parts(headers, body)
}

/// Does this line plausibly start a header block?
fn looks_like_header(line: &str) -> bool {
    split_header(line).is_some()
}

/// Split `Name: value`; `Name` must be non-empty, contain no spaces, tabs or
/// control characters, and be followed by a colon.
fn split_header(line: &str) -> Option<(&str, &str)> {
    let idx = line.find(':')?;
    let name = &line[..idx];
    if name.is_empty()
        || name
            .chars()
            .any(|c| c == ' ' || c == '\t' || c.is_control())
    {
        return None;
    }
    let value = line[idx + 1..].trim_start();
    Some((name, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_message() {
        let e = parse_email("From: a@b\nSubject: hello world\n\nbody line 1\nbody line 2\n");
        assert_eq!(e.from_addr(), Some("a@b"));
        assert_eq!(e.subject(), Some("hello world"));
        assert_eq!(e.body(), "body line 1\nbody line 2\n");
    }

    #[test]
    fn unfolds_continuation_lines() {
        let e = parse_email("Subject: a very\n\tlong subject\n  indeed\n\nbody");
        assert_eq!(e.subject(), Some("a very long subject indeed"));
    }

    #[test]
    fn headerless_input_is_all_body() {
        let raw = "just some text\nwith no headers\n";
        let e = parse_email(raw);
        assert!(e.has_empty_headers());
        assert_eq!(e.body(), raw);
    }

    #[test]
    fn crlf_normalized() {
        let e = parse_email("Subject: x\r\n\r\nline\r\nline2");
        assert_eq!(e.subject(), Some("x"));
        assert_eq!(e.body(), "line\nline2");
    }

    #[test]
    fn missing_blank_line_starts_body_at_first_nonheader() {
        let e = parse_email("Subject: x\nthis is already body\nmore");
        assert_eq!(e.subject(), Some("x"));
        assert!(e.body().starts_with("this is already body"));
    }

    #[test]
    fn empty_input() {
        let e = parse_email("");
        assert!(e.has_empty_headers());
        assert_eq!(e.body(), "");
    }

    #[test]
    fn header_only_message_has_empty_body() {
        let e = parse_email("Subject: only\n");
        assert_eq!(e.subject(), Some("only"));
        assert_eq!(e.body(), "");
    }

    #[test]
    fn colon_in_value_preserved() {
        let e = parse_email("Subject: re: re: bid\n\n.");
        assert_eq!(e.subject(), Some("re: re: bid"));
    }

    #[test]
    fn header_name_with_space_is_not_a_header() {
        let e = parse_email("not a: header\nbody");
        assert!(e.has_empty_headers());
        assert!(e.body().contains("not a: header"));
    }

    #[test]
    fn duplicate_headers_kept_in_order() {
        let e = parse_email("Received: one\nReceived: two\n\n.");
        assert_eq!(e.header_all("Received"), vec!["one", "two"]);
    }
}
