//! A labelled email collection.

use crate::message::{Label, LabeledEmail};
use serde::{Deserialize, Serialize};

/// An ordered collection of labelled emails with cached class counts.
///
/// This is the unit the corpus generator produces and the experiment harness
/// splits into train/test folds. Splitting here is strictly index-based so
/// that all randomness stays in the caller's seeded RNG.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    emails: Vec<LabeledEmail>,
    n_ham: usize,
    n_spam: usize,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of labelled messages.
    pub fn from_vec(emails: Vec<LabeledEmail>) -> Self {
        let n_ham = emails.iter().filter(|m| m.label == Label::Ham).count();
        let n_spam = emails.len() - n_ham;
        Self {
            emails,
            n_ham,
            n_spam,
        }
    }

    /// Append one message.
    pub fn push(&mut self, msg: LabeledEmail) {
        match msg.label {
            Label::Ham => self.n_ham += 1,
            Label::Spam => self.n_spam += 1,
        }
        self.emails.push(msg);
    }

    /// All messages in order.
    pub fn emails(&self) -> &[LabeledEmail] {
        &self.emails
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.emails.len()
    }

    /// True if there are no messages.
    pub fn is_empty(&self) -> bool {
        self.emails.is_empty()
    }

    /// Number of ham messages.
    pub fn n_ham(&self) -> usize {
        self.n_ham
    }

    /// Number of spam messages.
    pub fn n_spam(&self) -> usize {
        self.n_spam
    }

    /// Fraction of spam (0 for an empty dataset).
    pub fn spam_fraction(&self) -> f64 {
        if self.emails.is_empty() {
            0.0
        } else {
            self.n_spam as f64 / self.emails.len() as f64
        }
    }

    /// A new dataset holding the messages at `indices`, in that order.
    ///
    /// Panics if an index is out of bounds (programmer error in fold logic).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset::from_vec(indices.iter().map(|&i| self.emails[i].clone()).collect())
    }

    /// Borrowing variant of [`Dataset::subset`] for hot paths: yields
    /// references without cloning message bodies.
    pub fn select<'a>(&'a self, indices: &'a [usize]) -> impl Iterator<Item = &'a LabeledEmail> + 'a {
        indices.iter().map(move |&i| &self.emails[i])
    }

    /// Indices of all ham messages.
    pub fn ham_indices(&self) -> Vec<usize> {
        self.emails
            .iter()
            .enumerate()
            .filter(|(_, m)| m.label == Label::Ham)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all spam messages.
    pub fn spam_indices(&self) -> Vec<usize> {
        self.emails
            .iter()
            .enumerate()
            .filter(|(_, m)| m.label == Label::Spam)
            .map(|(i, _)| i)
            .collect()
    }

    /// Append all messages of another dataset.
    pub fn extend_from(&mut self, other: &Dataset) {
        for m in other.emails() {
            self.push(m.clone());
        }
    }
}

impl FromIterator<LabeledEmail> for Dataset {
    fn from_iter<T: IntoIterator<Item = LabeledEmail>>(iter: T) -> Self {
        Dataset::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Email;

    fn mk(label: Label, tag: &str) -> LabeledEmail {
        LabeledEmail::new(Email::builder().subject(tag).build(), label)
    }

    #[test]
    fn counts_track_pushes() {
        let mut d = Dataset::new();
        d.push(mk(Label::Ham, "a"));
        d.push(mk(Label::Spam, "b"));
        d.push(mk(Label::Spam, "c"));
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_ham(), 1);
        assert_eq!(d.n_spam(), 2);
        assert!((d.spam_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_counts() {
        let d = Dataset::from_vec(vec![mk(Label::Ham, "a"), mk(Label::Ham, "b")]);
        assert_eq!(d.n_ham(), 2);
        assert_eq!(d.n_spam(), 0);
        assert_eq!(d.spam_fraction(), 0.0);
    }

    #[test]
    fn subset_preserves_order_and_counts() {
        let d = Dataset::from_vec(vec![
            mk(Label::Ham, "0"),
            mk(Label::Spam, "1"),
            mk(Label::Ham, "2"),
        ]);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.n_ham(), 2);
        assert_eq!(s.emails()[0].email.subject(), Some("2"));
    }

    #[test]
    fn class_indices() {
        let d = Dataset::from_vec(vec![
            mk(Label::Ham, "0"),
            mk(Label::Spam, "1"),
            mk(Label::Ham, "2"),
        ]);
        assert_eq!(d.ham_indices(), vec![0, 2]);
        assert_eq!(d.spam_indices(), vec![1]);
    }

    #[test]
    fn empty_dataset_behaviour() {
        let d = Dataset::new();
        assert!(d.is_empty());
        assert_eq!(d.spam_fraction(), 0.0);
        assert!(d.ham_indices().is_empty());
    }

    #[test]
    fn select_borrows() {
        let d = Dataset::from_vec(vec![mk(Label::Ham, "x"), mk(Label::Spam, "y")]);
        let got: Vec<&LabeledEmail> = d.select(&[1]).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].label, Label::Spam);
    }

    #[test]
    fn extend_from_merges_counts() {
        let mut a = Dataset::from_vec(vec![mk(Label::Ham, "a")]);
        let b = Dataset::from_vec(vec![mk(Label::Spam, "b"), mk(Label::Spam, "c")]);
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.n_spam(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let d: Dataset = (0..4)
            .map(|i| mk(if i % 2 == 0 { Label::Ham } else { Label::Spam }, "t"))
            .collect();
        assert_eq!(d.n_ham(), 2);
        assert_eq!(d.n_spam(), 2);
    }
}
