//! Serialization back to wire form (the inverse of [`crate::parse`]).

use crate::message::Email;

/// Render a message to canonical wire form: `Name: value\n` per header, a
/// blank separator line (only when headers exist), then the body verbatim.
///
/// `parse_email(render_email(e))` reproduces `e` exactly for canonical
/// messages (header values without leading whitespace or embedded newlines,
/// body not starting with a header-shaped line when headers are absent); the
/// property tests assert this.
pub fn render_email(email: &Email) -> String {
    let mut out = String::with_capacity(email.wire_len());
    for (name, value) in email.headers() {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push('\n');
    }
    if !email.headers().is_empty() {
        out.push('\n');
    }
    out.push_str(email.body());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_email;

    #[test]
    fn render_simple() {
        let e = Email::builder()
            .from_addr("a@b")
            .subject("s")
            .body("hello\n")
            .build();
        assert_eq!(render_email(&e), "From: a@b\nSubject: s\n\nhello\n");
    }

    #[test]
    fn headerless_message_renders_body_only() {
        let mut e = Email::new();
        e.set_body("word soup");
        assert_eq!(render_email(&e), "word soup");
    }

    #[test]
    fn roundtrip_canonical() {
        let e = Email::builder()
            .from_addr("alice@example.org")
            .to_addr("bob@example.org")
            .subject("the contract bid")
            .header("Message-Id", "<1@example.org>")
            .body("dear bob,\n\nnumbers attached.\n")
            .build();
        let back = parse_email(&render_email(&e));
        assert_eq!(back, e);
    }

    #[test]
    fn roundtrip_empty_body() {
        let e = Email::builder().subject("x").build();
        assert_eq!(parse_email(&render_email(&e)), e);
    }
}
