//! # sb-mailflow — the deployment substrate
//!
//! The paper's deployment story (§2.1–§2.2): an organization filters all of
//! its users' incoming mail with one shared SpamBayes instance and retrains
//! it periodically (e.g. weekly) on everything received; the attacker's only
//! capability is to *send mail* that ends up in that training pool (the
//! contamination assumption). This crate builds that story as a system:
//!
//! * [`wire`] — CRLF line framing and SMTP dot-stuffing (the attack enters
//!   over a real wire format, not via an API call);
//! * [`smtp`] — command/reply grammar of the SMTP-lite dialect;
//! * [`transport`] — in-memory byte pipes with deterministic fault
//!   injection (drop/corrupt), in the spirit of smoltcp's example harness;
//! * [`faultplan`] — declarative per-day fault schedules (pipe-fault ramps,
//!   node crashes, mailbox loss, retrain/model failures) that degrade the
//!   simulation gracefully while keeping it bit-identical across shards;
//! * [`server`] / [`client`] — minimal SMTP state machines;
//! * [`mailbox`] — per-user folders driven by filter verdicts (§2.1's
//!   spam-high / spam-low / inbox reading model);
//! * [`org`] — the organization simulation: days tick, mail flows across
//!   user shards on worker threads, the filter retrains weekly on the
//!   deterministic shard-merge of the fresh pools, attacks ramp, defenses
//!   screen. Weekly reports are bit-identical for every shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faultplan;
pub mod mailbox;
pub mod org;
pub mod server;
pub mod smtp;
pub mod transport;
pub mod wire;

pub use client::{BackoffSchedule, ClientError, DeliveryReport, Envelope, SmtpClient};
pub use faultplan::{FaultEvent, FaultPlan, FaultPlanError};
pub use mailbox::{Folder, Mailbox, StoredMessage, UserCosts, UserModel};
pub use org::{
    AttackPlan, DefensePolicy, MailOrg, OrgCheckpoint, OrgConfig, OrgConfigError, OrgReport,
    TrafficMix, WeekReport,
};
pub use server::{ReceivedMessage, ServerConfig, ServerEvent, SmtpServer};
pub use smtp::{Command, CommandError, Reply, ReplyCode};
pub use transport::{End, FaultConfig, FaultError, FaultStats, FaultyPipe, Pipe};
pub use wire::{dot_stuff, dot_unstuff, LineCodec, LineError, MAX_LINE_LEN};
