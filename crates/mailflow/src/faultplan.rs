//! Declarative, deterministic fault plans for the organization simulation.
//!
//! A [`FaultPlan`] schedules infrastructure failures over the simulated
//! calendar — pipe-fault windows with per-day ramps, a mailstore node
//! crashing mid-period, a mailbox dropping out of the routing table,
//! injected retrain failures, and model-image corruption at load time.
//! Events are *declarative*: the plan names the day (or retrain week) an
//! event fires and the engine applies it at exactly that point, so a plan
//! replays identically on every run.
//!
//! Determinism across shard counts is the design constraint everywhere:
//!
//! * events are keyed by **day / week / user**, never by shard id (a
//!   shard's user set changes with the shard count, a user's does not);
//! * the randomized behaviour an event gates — wire faults inside a
//!   [`FaultEvent::PipeFaults`] window, redelivery of deferred mail —
//!   draws from the same per-day, per-wire-position [`SeedTree`] streams
//!   the fault-free simulation uses (`day/<d>/pipe/<i>` for first
//!   deliveries, `day/<d>/defer/<orig day>/<orig pos>` for retries), so a
//!   fault fires for the *message*, not for whichever worker carried it;
//! * per-day effective fault rates ([`FaultPlan::faults_on`]) are pure
//!   arithmetic over the plan — every shard computes the identical ramp.
//!
//! [`SeedTree`]: sb_stats::rng::SeedTree
//!
//! The plan also carries the graceful-degradation policy knob: the
//! [`FaultPlan::redelivery_budget`] bounds how many extra days a message
//! that exhausted its SMTP retries re-enters the wire plan before it is
//! declared permanently failed.

use crate::transport::{FaultConfig, FaultError};
use serde::{Deserialize, Serialize};

/// One scheduled infrastructure failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Override the wire fault rates for an inclusive day window, linearly
    /// interpolating from `from` on `start_day` to `to` on `end_day` (a
    /// flat window sets `from == to`).
    PipeFaults {
        /// First day (1-based) the override applies.
        start_day: u32,
        /// Last day (inclusive) the override applies.
        end_day: u32,
        /// Fault rates on `start_day`.
        from: FaultConfig,
        /// Fault rates on `end_day`.
        to: FaultConfig,
    },
    /// The mailstore node hosting `user` crashes on `day`: the user's
    /// fresh pool entries for the period up to and including `day` are
    /// quarantined at the retrain barrier and replayed into the *next*
    /// retrain (the node restores from its journal — mail trains late,
    /// never silently vanishes).
    ShardCrash {
        /// Crash day (1-based).
        day: u32,
        /// Index of the user whose hosting node crashes.
        user: usize,
    },
    /// `user`'s mailbox drops out of the routing table on `day` and is
    /// restored at the next retrain boundary; accepted mail for the user
    /// bounces (never classified, never pooled) for the rest of that
    /// period.
    MailboxLoss {
        /// Loss day (1-based).
        day: u32,
        /// Index of the user whose mailbox is lost.
        user: usize,
    },
    /// The retrain job for `week` dies before admitting anything: the
    /// week's fresh pool is quarantined for replay and the organization
    /// serves the last-good checkpoint model instead of fail-closing.
    RetrainFailure {
        /// Retrain week (1-based).
        week: u32,
    },
    /// The retrain for `week` succeeds (the pool is updated), but the new
    /// model image is corrupt at load time: the organization falls back to
    /// the last-good checkpoint until the next retrain rebuilds from the
    /// (intact) pool.
    ModelCorruption {
        /// Retrain week (1-based).
        week: u32,
    },
}

/// A fault-plan validation error, tagged with the 0-based index of the
/// offending event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A pipe-fault window carries an out-of-range probability.
    Chance {
        /// 0-based event index.
        event: usize,
        /// The underlying probability-range error.
        source: FaultError,
    },
    /// A pipe-fault window ends before it starts, or starts on day 0.
    BadWindow {
        /// 0-based event index.
        event: usize,
        /// Window start.
        start_day: u32,
        /// Window end.
        end_day: u32,
    },
    /// An event names a day outside `1..=days`.
    DayOutOfRange {
        /// 0-based event index.
        event: usize,
        /// The offending day.
        day: u32,
        /// Days the simulation runs.
        days: u32,
    },
    /// An event names a user the organization does not have.
    UserOutOfRange {
        /// 0-based event index.
        event: usize,
        /// The offending user index.
        user: usize,
        /// Number of users.
        users: usize,
    },
    /// An event names a retrain week outside `1..=weeks`.
    WeekOutOfRange {
        /// 0-based event index.
        event: usize,
        /// The offending week.
        week: u32,
        /// Retrain weeks the simulation has.
        weeks: u32,
    },
}

impl FaultPlanError {
    /// The 0-based index of the event the error points at.
    pub fn event_index(&self) -> usize {
        match self {
            FaultPlanError::Chance { event, .. }
            | FaultPlanError::BadWindow { event, .. }
            | FaultPlanError::DayOutOfRange { event, .. }
            | FaultPlanError::UserOutOfRange { event, .. }
            | FaultPlanError::WeekOutOfRange { event, .. } => *event,
        }
    }
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Chance { event, source } => {
                write!(f, "fault event {event}: {source}")
            }
            FaultPlanError::BadWindow { event, start_day, end_day } => write!(
                f,
                "fault event {event}: bad pipe window {start_day}-{end_day} (need 1 <= start <= end)"
            ),
            FaultPlanError::DayOutOfRange { event, day, days } => write!(
                f,
                "fault event {event}: day {day} outside the simulated 1..={days}"
            ),
            FaultPlanError::UserOutOfRange { event, user, users } => write!(
                f,
                "fault event {event}: user {user} out of range (org has {users} users)"
            ),
            FaultPlanError::WeekOutOfRange { event, week, weeks } => write!(
                f,
                "fault event {event}: retrain week {week} outside 1..={weeks}"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of infrastructure failures plus the
/// degradation policy the organization runs under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled events (applied by day/week/user as documented on
    /// each [`FaultEvent`]; order is irrelevant except that overlapping
    /// pipe windows resolve last-wins).
    pub events: Vec<FaultEvent>,
    /// How many extra days a message that exhausted its SMTP retries
    /// re-enters the wire plan before it is declared permanently failed.
    /// `0` restores the old drop-on-failure behaviour.
    pub redelivery_budget: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            events: Vec::new(),
            redelivery_budget: 3,
        }
    }
}

impl FaultPlan {
    /// An empty plan with the default redelivery budget.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan schedules no events (the redelivery budget still
    /// applies to ordinary wire failures).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate every event against the organization's shape.
    pub fn validate(
        &self,
        users: usize,
        days: u32,
        retrain_every: u32,
    ) -> Result<(), FaultPlanError> {
        let weeks = days.div_ceil(retrain_every.max(1));
        for (i, ev) in self.events.iter().enumerate() {
            match *ev {
                FaultEvent::PipeFaults { start_day, end_day, from, to } => {
                    if start_day == 0 || end_day < start_day {
                        return Err(FaultPlanError::BadWindow { event: i, start_day, end_day });
                    }
                    if end_day > days {
                        return Err(FaultPlanError::DayOutOfRange { event: i, day: end_day, days });
                    }
                    for cfg in [from, to] {
                        cfg.validate()
                            .map_err(|source| FaultPlanError::Chance { event: i, source })?;
                    }
                }
                FaultEvent::ShardCrash { day, user } | FaultEvent::MailboxLoss { day, user } => {
                    if day == 0 || day > days {
                        return Err(FaultPlanError::DayOutOfRange { event: i, day, days });
                    }
                    if user >= users {
                        return Err(FaultPlanError::UserOutOfRange { event: i, user, users });
                    }
                }
                FaultEvent::RetrainFailure { week } | FaultEvent::ModelCorruption { week } => {
                    if week == 0 || week > weeks {
                        return Err(FaultPlanError::WeekOutOfRange { event: i, week, weeks });
                    }
                }
            }
        }
        Ok(())
    }

    /// The effective wire fault rates on `day`: the last pipe window
    /// covering the day wins, linearly interpolated across its span; days
    /// outside every window use `base`. Pure arithmetic, so every shard
    /// derives the identical rates.
    pub fn faults_on(&self, day: u32, base: FaultConfig) -> FaultConfig {
        let mut effective = base;
        for ev in &self.events {
            if let FaultEvent::PipeFaults { start_day, end_day, from, to } = *ev {
                if (start_day..=end_day).contains(&day) {
                    let t = if end_day == start_day {
                        0.0
                    } else {
                        f64::from(day - start_day) / f64::from(end_day - start_day)
                    };
                    effective = FaultConfig {
                        drop_chance: from.drop_chance + (to.drop_chance - from.drop_chance) * t,
                        corrupt_chance: from.corrupt_chance
                            + (to.corrupt_chance - from.corrupt_chance) * t,
                    };
                }
            }
        }
        effective
    }

    /// Whether `user`'s mailbox is out of the routing table on `day`: lost
    /// from its [`FaultEvent::MailboxLoss`] day through the end of that
    /// retrain period (the routing table is rebuilt at the boundary).
    pub fn mailbox_lost(&self, user: usize, day: u32, retrain_every: u32) -> bool {
        self.events.iter().any(|ev| match *ev {
            FaultEvent::MailboxLoss { day: lost, user: u } => {
                u == user && (lost..=period_end(lost, retrain_every)).contains(&day)
            }
            _ => false,
        })
    }

    /// Crash events whose day falls inside `first_day..=last_day`, as
    /// `(user, crash day)` pairs — the quarantine set for that period's
    /// retrain barrier.
    pub fn crashes_in(&self, first_day: u32, last_day: u32) -> Vec<(usize, u32)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::ShardCrash { day, user } if (first_day..=last_day).contains(&day) => {
                    Some((user, day))
                }
                _ => None,
            })
            .collect()
    }

    /// Whether the retrain job for `week` is scheduled to fail.
    pub fn retrain_fails(&self, week: u32) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(*ev, FaultEvent::RetrainFailure { week: w } if w == week))
    }

    /// Whether the model image built at `week`'s retrain is corrupt at
    /// load time.
    pub fn model_corrupts(&self, week: u32) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(*ev, FaultEvent::ModelCorruption { week: w } if w == week))
    }
}

/// The last day of the retrain period containing `day` (1-based days,
/// periods of `retrain_every` days).
fn period_end(day: u32, retrain_every: u32) -> u32 {
    let re = retrain_every.max(1);
    ((day - 1) / re + 1) * re
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u32, end: u32, from: (f64, f64), to: (f64, f64)) -> FaultEvent {
        FaultEvent::PipeFaults {
            start_day: start,
            end_day: end,
            from: FaultConfig { drop_chance: from.0, corrupt_chance: from.1 },
            to: FaultConfig { drop_chance: to.0, corrupt_chance: to.1 },
        }
    }

    #[test]
    fn ramp_interpolates_linearly_and_last_window_wins() {
        let plan = FaultPlan {
            events: vec![
                window(2, 6, (0.0, 0.0), (0.4, 0.2)),
                window(5, 5, (0.99, 0.0), (0.99, 0.0)),
            ],
            ..FaultPlan::default()
        };
        let base = FaultConfig::none();
        assert_eq!(plan.faults_on(1, base), base);
        assert_eq!(plan.faults_on(2, base).drop_chance, 0.0);
        assert_eq!(plan.faults_on(4, base).drop_chance, 0.2);
        assert_eq!(plan.faults_on(6, base).drop_chance, 0.4);
        assert_eq!(plan.faults_on(6, base).corrupt_chance, 0.2);
        // Day 5 is covered by both; the later event overrides.
        assert_eq!(plan.faults_on(5, base).drop_chance, 0.99);
        assert_eq!(plan.faults_on(7, base), base);
    }

    #[test]
    fn mailbox_loss_lasts_until_the_period_boundary() {
        let plan = FaultPlan {
            events: vec![FaultEvent::MailboxLoss { day: 3, user: 1 }],
            ..FaultPlan::default()
        };
        assert!(!plan.mailbox_lost(0, 3, 7), "wrong user never loses");
        assert!(!plan.mailbox_lost(1, 2, 7), "not lost before the event");
        for day in 3..=7 {
            assert!(plan.mailbox_lost(1, day, 7), "lost on day {day}");
        }
        assert!(!plan.mailbox_lost(1, 8, 7), "restored at the retrain boundary");
    }

    #[test]
    fn crash_quarantine_is_scoped_to_the_period() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::ShardCrash { day: 4, user: 2 },
                FaultEvent::ShardCrash { day: 9, user: 0 },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.crashes_in(1, 7), vec![(2, 4)]);
        assert_eq!(plan.crashes_in(8, 14), vec![(0, 9)]);
        assert!(plan.crashes_in(15, 21).is_empty());
    }

    #[test]
    fn retrain_events_match_their_week() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::RetrainFailure { week: 2 },
                FaultEvent::ModelCorruption { week: 3 },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.retrain_fails(2) && !plan.retrain_fails(3));
        assert!(plan.model_corrupts(3) && !plan.model_corrupts(2));
    }

    #[test]
    fn validation_rejects_bad_events_with_indices() {
        let days = 14;
        let bad = |ev: FaultEvent| {
            FaultPlan { events: vec![ev], ..FaultPlan::default() }
                .validate(3, days, 7)
                .unwrap_err()
        };
        assert!(matches!(
            bad(window(5, 3, (0.0, 0.0), (0.0, 0.0))),
            FaultPlanError::BadWindow { event: 0, .. }
        ));
        assert!(matches!(
            bad(window(1, 20, (0.0, 0.0), (0.0, 0.0))),
            FaultPlanError::DayOutOfRange { event: 0, day: 20, .. }
        ));
        assert!(matches!(
            bad(window(1, 3, (1.5, 0.0), (0.0, 0.0))),
            FaultPlanError::Chance { event: 0, .. }
        ));
        assert!(matches!(
            bad(FaultEvent::ShardCrash { day: 2, user: 3 }),
            FaultPlanError::UserOutOfRange { event: 0, user: 3, users: 3 }
        ));
        assert!(matches!(
            bad(FaultEvent::MailboxLoss { day: 0, user: 0 }),
            FaultPlanError::DayOutOfRange { event: 0, day: 0, .. }
        ));
        assert!(matches!(
            bad(FaultEvent::RetrainFailure { week: 3 }),
            FaultPlanError::WeekOutOfRange { event: 0, week: 3, weeks: 2 }
        ));
        let ok = FaultPlan {
            events: vec![
                window(2, 6, (0.05, 0.0), (0.3, 0.1)),
                FaultEvent::ShardCrash { day: 4, user: 1 },
                FaultEvent::ModelCorruption { week: 2 },
            ],
            redelivery_budget: 2,
        };
        assert!(ok.validate(3, days, 7).is_ok());
        assert_eq!(ok.crashes_in(1, 7), vec![(1, 4)]);
    }
}
