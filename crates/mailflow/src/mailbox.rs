//! Per-user mailboxes and the §2.1 reading model.
//!
//! The paper's user-cost argument rests on how clients *route* the three
//! verdicts: spam to a "Spam-High" folder the user essentially never reads,
//! unsure to a "Spam-Low" folder the user must grudgingly skim to avoid
//! missing real mail, ham to the inbox. [`Mailbox`] performs the routing;
//! [`UserModel`] turns folder contents into the costs the paper reasons
//! about (missed ham, spam faced, time wasted in the unsure folder).

use sb_email::{Email, Label};
use sb_filter::Verdict;
use serde::{Deserialize, Serialize};

/// The three folders of the §2.1 client model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Folder {
    /// Delivered normally.
    Inbox,
    /// "Spam-Low": the unsure holding pen.
    Unsure,
    /// "Spam-High": filtered away.
    Spam,
}

impl Folder {
    /// Where a verdict routes a message.
    pub fn for_verdict(v: Verdict) -> Folder {
        match v {
            Verdict::Ham => Folder::Inbox,
            Verdict::Unsure => Folder::Unsure,
            Verdict::Spam => Folder::Spam,
        }
    }
}

/// A delivered message with its routing and ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMessage {
    /// The message.
    pub email: Email,
    /// Ground-truth label (known to the simulation, not the user).
    pub truth: Label,
    /// The filter's verdict at delivery time.
    pub verdict: Verdict,
    /// Simulation day the message arrived.
    pub day: u32,
}

/// One user's mail store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Mailbox {
    inbox: Vec<StoredMessage>,
    unsure: Vec<StoredMessage>,
    spam: Vec<StoredMessage>,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route a classified message into its folder.
    pub fn deliver(&mut self, email: Email, truth: Label, verdict: Verdict, day: u32) {
        let stored = StoredMessage {
            email,
            truth,
            verdict,
            day,
        };
        match Folder::for_verdict(verdict) {
            Folder::Inbox => self.inbox.push(stored),
            Folder::Unsure => self.unsure.push(stored),
            Folder::Spam => self.spam.push(stored),
        }
    }

    /// Messages in a folder.
    pub fn folder(&self, f: Folder) -> &[StoredMessage] {
        match f {
            Folder::Inbox => &self.inbox,
            Folder::Unsure => &self.unsure,
            Folder::Spam => &self.spam,
        }
    }

    /// Total messages stored.
    pub fn len(&self) -> usize {
        self.inbox.len() + self.unsure.len() + self.spam.len()
    }

    /// True when nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of messages in `folder` whose ground truth is `truth`.
    pub fn count(&self, folder: Folder, truth: Label) -> usize {
        self.folder(folder).iter().filter(|m| m.truth == truth).count()
    }

    /// Remove everything (start of a new evaluation window).
    pub fn clear(&mut self) {
        self.inbox.clear();
        self.unsure.clear();
        self.spam.clear();
    }

    /// Fold another mailbox's contents into this one. Folder membership is
    /// preserved; [`UserModel`] costs are counts over folder contents, so
    /// absorbing per-shard week boxes in any shard order yields the same
    /// costs as one organization-wide box.
    pub fn absorb(&mut self, other: Mailbox) {
        self.inbox.extend(other.inbox);
        self.unsure.extend(other.unsure);
        self.spam.extend(other.spam);
    }
}

/// How a user reads their folders (§2.1's behavioural assumptions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserModel {
    /// Whether the user skims the unsure folder at all.
    pub reads_unsure: bool,
    /// Whether the user ever checks the spam folder (the paper: "rarely
    /// (if ever)"; default false).
    pub reads_spam: bool,
}

impl Default for UserModel {
    fn default() -> Self {
        Self {
            reads_unsure: true,
            reads_spam: false,
        }
    }
}

/// The user-visible costs of a mailbox state under a reading model. All
/// counts are message counts over whatever window the mailbox holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserCosts {
    /// Ham the user never sees (in spam always; in unsure too if unread).
    pub ham_lost: usize,
    /// Ham the user only finds by skimming the unsure folder.
    pub ham_delayed: usize,
    /// Spam the user is exposed to (inbox, plus unsure if read).
    pub spam_faced: usize,
    /// Total messages the user must skim in the unsure folder.
    pub unsure_burden: usize,
}

impl UserModel {
    /// Evaluate the §2.1 costs for a mailbox.
    pub fn costs(&self, mbox: &Mailbox) -> UserCosts {
        let ham_in_spam = mbox.count(Folder::Spam, Label::Ham);
        let ham_in_unsure = mbox.count(Folder::Unsure, Label::Ham);
        let spam_in_inbox = mbox.count(Folder::Inbox, Label::Spam);
        let spam_in_unsure = mbox.count(Folder::Unsure, Label::Spam);
        let spam_in_spam = mbox.count(Folder::Spam, Label::Spam);

        let mut costs = UserCosts {
            ham_lost: ham_in_spam,
            ham_delayed: 0,
            spam_faced: spam_in_inbox,
            unsure_burden: 0,
        };
        if self.reads_unsure {
            costs.ham_delayed += ham_in_unsure;
            costs.spam_faced += spam_in_unsure;
            costs.unsure_burden = ham_in_unsure + spam_in_unsure;
        } else {
            costs.ham_lost += ham_in_unsure;
        }
        if self.reads_spam {
            // Reading spam-high recovers lost ham but faces all the spam.
            costs.ham_lost -= ham_in_spam;
            costs.ham_delayed += ham_in_spam;
            costs.spam_faced += spam_in_spam;
        }
        costs
    }

    /// The paper's "filter has become useless" predicate: the user gains no
    /// time-saving when the share of incoming mail they still have to look
    /// at (inbox + unsure if read) approaches what no filter would give
    /// them, or when real mail is being lost.
    pub fn filter_useless(&self, mbox: &Mailbox, loss_tolerance: f64) -> bool {
        let total_ham = mbox.count(Folder::Inbox, Label::Ham)
            + mbox.count(Folder::Unsure, Label::Ham)
            + mbox.count(Folder::Spam, Label::Ham);
        if total_ham == 0 {
            return false;
        }
        let costs = self.costs(mbox);
        let misrouted = costs.ham_lost + costs.ham_delayed;
        misrouted as f64 / total_ham as f64 > loss_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn email(i: usize) -> Email {
        Email::builder().body(format!("message {i}")).build()
    }

    fn mixed_mailbox() -> Mailbox {
        let mut m = Mailbox::new();
        // 4 ham in inbox, 2 ham in unsure, 1 ham in spam,
        // 1 spam in inbox, 3 spam in unsure, 5 spam in spam.
        for i in 0..4 {
            m.deliver(email(i), Label::Ham, Verdict::Ham, 1);
        }
        for i in 4..6 {
            m.deliver(email(i), Label::Ham, Verdict::Unsure, 1);
        }
        m.deliver(email(6), Label::Ham, Verdict::Spam, 1);
        m.deliver(email(7), Label::Spam, Verdict::Ham, 2);
        for i in 8..11 {
            m.deliver(email(i), Label::Spam, Verdict::Unsure, 2);
        }
        for i in 11..16 {
            m.deliver(email(i), Label::Spam, Verdict::Spam, 2);
        }
        m
    }

    #[test]
    fn routing_follows_verdicts() {
        let m = mixed_mailbox();
        assert_eq!(m.folder(Folder::Inbox).len(), 5);
        assert_eq!(m.folder(Folder::Unsure).len(), 5);
        assert_eq!(m.folder(Folder::Spam).len(), 6);
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn counts_by_truth() {
        let m = mixed_mailbox();
        assert_eq!(m.count(Folder::Inbox, Label::Ham), 4);
        assert_eq!(m.count(Folder::Inbox, Label::Spam), 1);
        assert_eq!(m.count(Folder::Unsure, Label::Ham), 2);
        assert_eq!(m.count(Folder::Spam, Label::Ham), 1);
    }

    #[test]
    fn default_user_costs() {
        let m = mixed_mailbox();
        let costs = UserModel::default().costs(&m);
        // Loses the 1 ham in spam; skims unsure so the 2 ham there are
        // delayed, not lost; faces 1 inbox spam + 3 unsure spam.
        assert_eq!(costs.ham_lost, 1);
        assert_eq!(costs.ham_delayed, 2);
        assert_eq!(costs.spam_faced, 4);
        assert_eq!(costs.unsure_burden, 5);
    }

    #[test]
    fn non_unsure_reader_loses_more_ham() {
        let m = mixed_mailbox();
        let user = UserModel {
            reads_unsure: false,
            reads_spam: false,
        };
        let costs = user.costs(&m);
        assert_eq!(costs.ham_lost, 3); // spam-folder ham + unread unsure ham
        assert_eq!(costs.spam_faced, 1); // inbox spam only
        assert_eq!(costs.unsure_burden, 0);
    }

    #[test]
    fn spam_folder_reader_recovers_ham_at_a_price() {
        let m = mixed_mailbox();
        let user = UserModel {
            reads_unsure: true,
            reads_spam: true,
        };
        let costs = user.costs(&m);
        assert_eq!(costs.ham_lost, 0);
        assert_eq!(costs.ham_delayed, 3);
        // Faces every spam in the store.
        assert_eq!(costs.spam_faced, 9);
    }

    #[test]
    fn useless_predicate_tracks_misrouted_ham() {
        let mut m = Mailbox::new();
        for i in 0..10 {
            m.deliver(email(i), Label::Ham, Verdict::Ham, 1);
        }
        let user = UserModel::default();
        assert!(!user.filter_useless(&m, 0.2));
        // Push 8 more ham into unsure: 8/18 misrouted > 20%.
        for i in 10..18 {
            m.deliver(email(i), Label::Ham, Verdict::Unsure, 1);
        }
        assert!(user.filter_useless(&m, 0.2));
    }

    #[test]
    fn empty_mailbox_is_never_useless() {
        let m = Mailbox::new();
        assert!(!UserModel::default().filter_useless(&m, 0.0));
        assert!(m.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut m = mixed_mailbox();
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn absorb_merges_folders_and_costs() {
        let whole = mixed_mailbox();
        // Split the same deliveries across two boxes, then absorb.
        let mut a = Mailbox::new();
        let mut b = Mailbox::new();
        for folder in [Folder::Inbox, Folder::Unsure, Folder::Spam] {
            for (i, msg) in whole.folder(folder).iter().enumerate() {
                let target = if i % 2 == 0 { &mut a } else { &mut b };
                target.deliver(msg.email.clone(), msg.truth, msg.verdict, msg.day);
            }
        }
        a.absorb(b);
        assert_eq!(a.len(), whole.len());
        let user = UserModel::default();
        assert_eq!(user.costs(&a), user.costs(&whole));
    }
}
