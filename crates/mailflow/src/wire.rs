//! Line framing and SMTP dot-stuffing.
//!
//! SMTP is a CRLF line protocol; message bodies are transferred between a
//! `DATA` command and a lone `.` terminator, with any body line that starts
//! with a dot escaped by doubling it (RFC 5321 §4.5.2). The attack emails
//! of the paper reach the victim over exactly this wire, so the substrate
//! implements it rather than hand-waving bytes into the filter.
//!
//! [`LineCodec`] is an incremental decoder in the sans-io style: feed it
//! arbitrary byte chunks, pop complete lines. It tolerates bare `LF` line
//! endings (real mail servers do) and rejects lines longer than
//! [`MAX_LINE_LEN`], which is how the server defends against unframed
//! garbage from the fault-injecting transport.

use bytes::BytesMut;

/// Maximum accepted line length in bytes, excluding the terminator
/// (RFC 5321's 998-octet text line limit, rounded up to a power of two to
/// leave room for protocol slack).
pub const MAX_LINE_LEN: usize = 1024;

/// Errors produced while decoding a line stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// A line exceeded [`MAX_LINE_LEN`] before a terminator arrived.
    TooLong {
        /// Bytes accumulated when the limit tripped.
        buffered: usize,
    },
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::TooLong { buffered } => {
                write!(f, "line exceeds {MAX_LINE_LEN} bytes ({buffered} buffered)")
            }
        }
    }
}

impl std::error::Error for LineError {}

/// Incremental CRLF/LF line decoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct LineCodec {
    buf: BytesMut,
    /// Set once a too-long line is detected; the decoder then discards
    /// bytes until the next terminator so the stream can resynchronize.
    skipping: bool,
}

impl LineCodec {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete line, if any. Returns:
    ///
    /// * `Some(Ok(line))` — a complete line (terminator stripped; lossy
    ///   UTF-8 so corrupted bytes from the fault injector stay inspectable);
    /// * `Some(Err(TooLong))` — a line overflowed; the offending bytes are
    ///   discarded and decoding resumes after the next terminator;
    /// * `None` — no complete line buffered yet.
    pub fn next_line(&mut self) -> Option<Result<String, LineError>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line = self.buf.split_to(pos + 1);
                if self.skipping {
                    // The tail of an over-long line: discard, resync.
                    self.skipping = false;
                    continue;
                }
                // Strip "\n" and an optional preceding "\r".
                let mut end = line.len() - 1;
                if end > 0 && line[end - 1] == b'\r' {
                    end -= 1;
                }
                line.truncate(end);
                if line.len() > MAX_LINE_LEN {
                    return Some(Err(LineError::TooLong { buffered: line.len() }));
                }
                return Some(Ok(String::from_utf8_lossy(&line).into_owned()));
            }
            // No terminator in the buffer.
            if self.buf.len() > MAX_LINE_LEN {
                let buffered = self.buf.len();
                self.buf.clear();
                self.skipping = true;
                return Some(Err(LineError::TooLong { buffered }));
            }
            return None;
        }
    }

    /// Drain every complete line currently buffered.
    pub fn drain_lines(&mut self) -> Vec<Result<String, LineError>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_line() {
            out.push(item);
        }
        out
    }

    /// Discard all buffered bytes (connection reset).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.skipping = false;
    }
}

/// Encode a message body for transmission inside `DATA`: normalize line
/// endings to CRLF, double leading dots, and append the lone-dot
/// terminator.
pub fn dot_stuff(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 16);
    for line in body.split('\n') {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push_str("\r\n");
    }
    out.push_str(".\r\n");
    out
}

/// Reverse [`dot_stuff`] on the receiving side, given the body lines as
/// framed by [`LineCodec`] (terminator line `"."` excluded). Leading
/// double-dots collapse back to one.
pub fn dot_unstuff(lines: &[String]) -> String {
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if let Some(rest) = line.strip_prefix('.') {
            out.push('.');
            out.push_str(rest.strip_prefix('.').unwrap_or(rest));
        } else {
            out.push_str(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeds_split_across_chunks() {
        let mut c = LineCodec::new();
        c.feed(b"HELO exa");
        assert!(c.next_line().is_none());
        c.feed(b"mple.org\r\nMAIL");
        assert_eq!(c.next_line(), Some(Ok("HELO example.org".to_owned())));
        assert!(c.next_line().is_none());
        c.feed(b" FROM:<a@b>\r\n");
        assert_eq!(c.next_line(), Some(Ok("MAIL FROM:<a@b>".to_owned())));
    }

    #[test]
    fn tolerates_bare_lf() {
        let mut c = LineCodec::new();
        c.feed(b"NOOP\nQUIT\r\n");
        assert_eq!(c.next_line(), Some(Ok("NOOP".to_owned())));
        assert_eq!(c.next_line(), Some(Ok("QUIT".to_owned())));
    }

    #[test]
    fn empty_lines_are_lines() {
        let mut c = LineCodec::new();
        c.feed(b"\r\n\n");
        assert_eq!(c.next_line(), Some(Ok(String::new())));
        assert_eq!(c.next_line(), Some(Ok(String::new())));
        assert_eq!(c.next_line(), None);
    }

    #[test]
    fn overlong_line_is_rejected_and_stream_resyncs() {
        let mut c = LineCodec::new();
        let long = vec![b'x'; MAX_LINE_LEN + 100];
        c.feed(&long);
        match c.next_line() {
            Some(Err(LineError::TooLong { buffered })) => assert!(buffered > MAX_LINE_LEN),
            other => panic!("expected TooLong, got {other:?}"),
        }
        // Rest of the long line still in flight, then a good line.
        c.feed(b"tail of the monster\r\nRSET\r\n");
        assert_eq!(c.next_line(), Some(Ok("RSET".to_owned())));
    }

    #[test]
    fn overlong_terminated_line_rejected() {
        let mut c = LineCodec::new();
        let mut msg = vec![b'y'; MAX_LINE_LEN + 1];
        msg.extend_from_slice(b"\r\nNOOP\r\n");
        c.feed(&msg);
        assert!(matches!(c.next_line(), Some(Err(LineError::TooLong { .. }))));
        assert_eq!(c.next_line(), Some(Ok("NOOP".to_owned())));
    }

    #[test]
    fn corrupted_bytes_decode_lossily() {
        let mut c = LineCodec::new();
        c.feed(&[b'H', 0xFF, b'I', b'\r', b'\n']);
        let line = c.next_line().unwrap().unwrap();
        assert!(line.starts_with('H') && line.ends_with('I'));
    }

    #[test]
    fn dot_stuffing_roundtrip_simple() {
        let body = "hello\nworld";
        let wire = dot_stuff(body);
        assert_eq!(wire, "hello\r\nworld\r\n.\r\n");
        let lines: Vec<String> = vec!["hello".into(), "world".into()];
        assert_eq!(dot_unstuff(&lines), body);
    }

    #[test]
    fn dot_stuffing_escapes_leading_dots() {
        let body = ".hidden\n..double\ntail";
        let wire = dot_stuff(body);
        assert_eq!(wire, "..hidden\r\n...double\r\ntail\r\n.\r\n");
        let lines: Vec<String> = vec!["..hidden".into(), "...double".into(), "tail".into()];
        assert_eq!(dot_unstuff(&lines), body);
    }

    #[test]
    fn dot_stuff_normalizes_crlf_input() {
        let body = "a\r\nb";
        assert_eq!(dot_stuff(body), "a\r\nb\r\n.\r\n");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = LineCodec::new();
        c.feed(b"partial line without end");
        assert!(c.buffered() > 0);
        c.reset();
        assert_eq!(c.buffered(), 0);
        c.feed(b"OK\r\n");
        assert_eq!(c.next_line(), Some(Ok("OK".to_owned())));
    }
}
