//! The SMTP-lite command and reply grammar.
//!
//! A deliberately small dialect — HELO, MAIL, RCPT, DATA, RSET, NOOP, VRFY,
//! QUIT — which is all an attacker needs to inject training data under the
//! paper's contamination assumption, and all the organization simulation
//! needs to move mail. Extensions (pipelining, TLS, AUTH, 8BITMIME) are
//! intentionally omitted; see DESIGN.md for the inventory.

use serde::{Deserialize, Serialize};

/// A client command, parsed from one wire line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `HELO <domain>` — identify the client.
    Helo(String),
    /// `MAIL FROM:<reverse-path>` — start a transaction.
    MailFrom(String),
    /// `RCPT TO:<forward-path>` — add a recipient.
    RcptTo(String),
    /// `DATA` — begin message transfer.
    Data,
    /// `RSET` — abort the current transaction.
    Rset,
    /// `NOOP` — do nothing.
    Noop,
    /// `VRFY <string>` — verify an address.
    Vrfy(String),
    /// `QUIT` — close the session.
    Quit,
}

/// Why a line failed to parse as a command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandError {
    /// The verb is not part of the dialect.
    UnknownVerb(String),
    /// The verb is known but its argument is malformed or missing.
    BadArgument(&'static str),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::UnknownVerb(v) => write!(f, "unknown command {v:?}"),
            CommandError::BadArgument(what) => write!(f, "bad argument: {what}"),
        }
    }
}

impl std::error::Error for CommandError {}

/// Extract `local@domain` from an angle-bracketed path, tolerating
/// surrounding whitespace. The empty reverse path `<>` (bounce sender) is
/// accepted for `MAIL FROM`.
fn parse_path(raw: &str, allow_empty: bool) -> Result<String, CommandError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('<')
        .and_then(|r| r.strip_suffix('>'))
        .ok_or(CommandError::BadArgument("path must be angle-bracketed"))?;
    if inner.is_empty() {
        return if allow_empty {
            Ok(String::new())
        } else {
            Err(CommandError::BadArgument("empty forward path"))
        };
    }
    let at = inner
        .find('@')
        .ok_or(CommandError::BadArgument("path missing @"))?;
    if at == 0 || at == inner.len() - 1 {
        return Err(CommandError::BadArgument("path missing local part or domain"));
    }
    if inner.chars().any(|c| c.is_whitespace() || c == '<' || c == '>') {
        return Err(CommandError::BadArgument("path contains whitespace"));
    }
    Ok(inner.to_owned())
}

impl Command {
    /// Parse one wire line (terminator already stripped).
    pub fn parse(line: &str) -> Result<Command, CommandError> {
        let line = line.trim_end();
        let (verb, rest) = match line.find(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "HELO" | "EHLO" => {
                if rest.is_empty() {
                    Err(CommandError::BadArgument("HELO requires a domain"))
                } else {
                    Ok(Command::Helo(rest.to_owned()))
                }
            }
            "MAIL" => {
                let arg = rest
                    .strip_prefix("FROM:")
                    .or_else(|| rest.strip_prefix("from:"))
                    .or_else(|| rest.strip_prefix("From:"))
                    .ok_or(CommandError::BadArgument("MAIL requires FROM:<path>"))?;
                Ok(Command::MailFrom(parse_path(arg, true)?))
            }
            "RCPT" => {
                let arg = rest
                    .strip_prefix("TO:")
                    .or_else(|| rest.strip_prefix("to:"))
                    .or_else(|| rest.strip_prefix("To:"))
                    .ok_or(CommandError::BadArgument("RCPT requires TO:<path>"))?;
                Ok(Command::RcptTo(parse_path(arg, false)?))
            }
            "DATA" => Ok(Command::Data),
            "RSET" => Ok(Command::Rset),
            "NOOP" => Ok(Command::Noop),
            "VRFY" => {
                if rest.is_empty() {
                    Err(CommandError::BadArgument("VRFY requires an argument"))
                } else {
                    Ok(Command::Vrfy(rest.to_owned()))
                }
            }
            "QUIT" => Ok(Command::Quit),
            other => Err(CommandError::UnknownVerb(other.to_owned())),
        }
    }

    /// Render to a wire line (no terminator).
    pub fn render(&self) -> String {
        match self {
            Command::Helo(d) => format!("HELO {d}"),
            Command::MailFrom(p) => format!("MAIL FROM:<{p}>"),
            Command::RcptTo(p) => format!("RCPT TO:<{p}>"),
            Command::Data => "DATA".to_owned(),
            Command::Rset => "RSET".to_owned(),
            Command::Noop => "NOOP".to_owned(),
            Command::Vrfy(s) => format!("VRFY {s}"),
            Command::Quit => "QUIT".to_owned(),
        }
    }
}

/// SMTP reply codes used by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyCode {
    /// 220 — service ready (greeting).
    ServiceReady = 220,
    /// 221 — closing connection.
    Closing = 221,
    /// 250 — requested action completed.
    Ok = 250,
    /// 252 — cannot VRFY but will try delivery.
    CannotVrfy = 252,
    /// 354 — start mail input.
    StartMailInput = 354,
    /// 451 — local error, try again.
    LocalError = 451,
    /// 452 — too many recipients.
    TooManyRecipients = 452,
    /// 500 — syntax error / unknown command.
    SyntaxError = 500,
    /// 501 — bad argument.
    BadArgument = 501,
    /// 503 — bad sequence of commands.
    BadSequence = 503,
    /// 550 — mailbox unavailable.
    MailboxUnavailable = 550,
    /// 552 — message exceeds storage allocation.
    TooMuchData = 552,
}

impl ReplyCode {
    /// The numeric code.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Whether the code is a positive completion/intermediate reply.
    pub fn is_positive(self) -> bool {
        self.code() < 400
    }
}

/// A server reply: code plus human-readable text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reply {
    /// The reply code.
    pub code: ReplyCode,
    /// Free-text explanation.
    pub text: String,
}

impl Reply {
    /// Build a reply.
    pub fn new(code: ReplyCode, text: impl Into<String>) -> Self {
        Self {
            code,
            text: text.into(),
        }
    }

    /// Render to a wire line (no terminator).
    pub fn render(&self) -> String {
        format!("{} {}", self.code.code(), self.text)
    }

    /// Parse a reply line coming back from the server; unknown codes map to
    /// the closest semantic family so a corrupted digit degrades gracefully.
    pub fn parse(line: &str) -> Option<Reply> {
        let (code_str, text) = match line.find(' ') {
            Some(i) => (&line[..i], line[i + 1..].to_owned()),
            None => (line, String::new()),
        };
        let n: u16 = code_str.parse().ok()?;
        let code = match n {
            220 => ReplyCode::ServiceReady,
            221 => ReplyCode::Closing,
            250 => ReplyCode::Ok,
            252 => ReplyCode::CannotVrfy,
            354 => ReplyCode::StartMailInput,
            451 => ReplyCode::LocalError,
            452 => ReplyCode::TooManyRecipients,
            500 => ReplyCode::SyntaxError,
            501 => ReplyCode::BadArgument,
            503 => ReplyCode::BadSequence,
            550 => ReplyCode::MailboxUnavailable,
            552 => ReplyCode::TooMuchData,
            _ => return None,
        };
        Some(Reply { code, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let cases = [
            Command::Helo("attacker.example".into()),
            Command::MailFrom("a@b.example".into()),
            Command::RcptTo("victim@corp.example".into()),
            Command::Data,
            Command::Rset,
            Command::Noop,
            Command::Vrfy("victim".into()),
            Command::Quit,
        ];
        for cmd in cases {
            let line = cmd.render();
            assert_eq!(Command::parse(&line), Ok(cmd), "line {line:?}");
        }
    }

    #[test]
    fn verbs_are_case_insensitive() {
        assert_eq!(Command::parse("helo x"), Ok(Command::Helo("x".into())));
        assert_eq!(
            Command::parse("mail from:<a@b>"),
            Ok(Command::MailFrom("a@b".into()))
        );
        assert_eq!(Command::parse("QuIt"), Ok(Command::Quit));
    }

    #[test]
    fn ehlo_is_accepted_as_helo() {
        assert_eq!(
            Command::parse("EHLO modern.example"),
            Ok(Command::Helo("modern.example".into()))
        );
    }

    #[test]
    fn empty_reverse_path_allowed_forward_rejected() {
        assert_eq!(Command::parse("MAIL FROM:<>"), Ok(Command::MailFrom(String::new())));
        assert!(matches!(
            Command::parse("RCPT TO:<>"),
            Err(CommandError::BadArgument(_))
        ));
    }

    #[test]
    fn malformed_paths_rejected() {
        for bad in [
            "MAIL FROM:a@b",          // no brackets
            "MAIL FROM:<ab>",         // no @
            "MAIL FROM:<@b>",         // empty local
            "MAIL FROM:<a@>",         // empty domain
            "RCPT TO:<a b@c>",        // whitespace
        ] {
            assert!(
                matches!(Command::parse(bad), Err(CommandError::BadArgument(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn unknown_verb_reported() {
        assert_eq!(
            Command::parse("STARTTLS"),
            Err(CommandError::UnknownVerb("STARTTLS".into()))
        );
    }

    #[test]
    fn reply_roundtrip() {
        for code in [
            ReplyCode::ServiceReady,
            ReplyCode::Ok,
            ReplyCode::StartMailInput,
            ReplyCode::SyntaxError,
            ReplyCode::TooMuchData,
        ] {
            let r = Reply::new(code, "details here");
            assert_eq!(Reply::parse(&r.render()), Some(r));
        }
    }

    #[test]
    fn reply_parse_rejects_garbage() {
        assert_eq!(Reply::parse("banana"), None);
        assert_eq!(Reply::parse("999 weird"), None);
        assert_eq!(Reply::parse(""), None);
    }

    #[test]
    fn positive_codes() {
        assert!(ReplyCode::Ok.is_positive());
        assert!(ReplyCode::StartMailInput.is_positive());
        assert!(!ReplyCode::SyntaxError.is_positive());
        assert!(!ReplyCode::LocalError.is_positive());
    }
}
