//! The receiving SMTP state machine.
//!
//! Sans-io: the server consumes complete lines (framed by
//! [`crate::wire::LineCodec`]) and emits [`Reply`] values plus
//! [`ServerEvent`]s; the caller moves bytes. State follows RFC 5321's
//! minimal session diagram:
//!
//! ```text
//! Connected ──HELO──► Greeted ──MAIL──► InTransaction ──RCPT──► ... ──DATA──► ReceivingData ──"."──► Greeted
//! ```
//!
//! Error paths matter here: the fault-injecting transport turns good
//! commands into garbage, and the organization simulation relies on the
//! server's 5xx replies (and the client's retries) to keep delivery
//! eventually-successful without hiding wire failures.

use crate::smtp::{Command, CommandError, Reply, ReplyCode};
use crate::wire::dot_unstuff;
use sb_email::{parse_email, Email};
use serde::{Deserialize, Serialize};

/// Where the session currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum State {
    /// TCP open, no HELO yet.
    Connected,
    /// HELO done; no transaction in progress.
    Greeted,
    /// MAIL FROM accepted; gathering recipients.
    InTransaction,
    /// DATA accepted; accumulating body lines until the lone dot.
    ReceivingData,
    /// QUIT handled; no further commands accepted.
    Closed,
}

/// A fully received message, as the server hands it to delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Envelope sender (may be empty: bounce path).
    pub mail_from: String,
    /// Envelope recipients (at least one).
    pub rcpt_to: Vec<String>,
    /// The parsed message.
    pub email: Email,
    /// Raw size in bytes as transferred (post-unstuffing).
    pub wire_bytes: usize,
}

/// Observable server events, drained by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerEvent {
    /// A message was fully received and accepted.
    MessageAccepted(ReceivedMessage),
    /// The client said QUIT; the session is over.
    SessionClosed,
}

/// Server limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Maximum accepted message size in bytes (RFC SIZE-style limit).
    pub max_message_bytes: usize,
    /// Maximum recipients per transaction.
    pub max_recipients: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            // Large enough for a 98,568-word dictionary attack email
            // (~900 KB): the paper's attacks must fit through the wire.
            max_message_bytes: 2 * 1024 * 1024,
            max_recipients: 64,
        }
    }
}

/// The SMTP-lite server.
#[derive(Debug)]
pub struct SmtpServer {
    cfg: ServerConfig,
    hostname: String,
    state: State,
    mail_from: Option<String>,
    rcpt_to: Vec<String>,
    data_lines: Vec<String>,
    data_bytes: usize,
    /// Set while receiving a message that has already blown the size limit:
    /// keep consuming lines until the terminator, then reject once.
    oversized: bool,
    events: Vec<ServerEvent>,
}

impl SmtpServer {
    /// A server for `hostname` with default limits.
    pub fn new(hostname: impl Into<String>) -> Self {
        Self::with_config(hostname, ServerConfig::default())
    }

    /// A server with explicit limits.
    pub fn with_config(hostname: impl Into<String>, cfg: ServerConfig) -> Self {
        Self {
            cfg,
            hostname: hostname.into(),
            state: State::Connected,
            mail_from: None,
            rcpt_to: Vec::new(),
            data_lines: Vec::new(),
            data_bytes: 0,
            oversized: false,
            events: Vec::new(),
        }
    }

    /// The banner the server sends when the connection opens.
    pub fn greeting(&self) -> Reply {
        Reply::new(ReplyCode::ServiceReady, format!("{} SMTP-lite ready", self.hostname))
    }

    /// Whether the session has ended.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// Drain accumulated events.
    pub fn take_events(&mut self) -> Vec<ServerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Feed one complete line; returns the reply to send, if any (data
    /// lines are silent until the terminating dot).
    pub fn handle_line(&mut self, line: &str) -> Option<Reply> {
        if self.state == State::ReceivingData {
            return self.handle_data_line(line);
        }
        Some(match Command::parse(line) {
            Err(CommandError::UnknownVerb(_)) => {
                Reply::new(ReplyCode::SyntaxError, "command not recognized")
            }
            Err(CommandError::BadArgument(what)) => Reply::new(ReplyCode::BadArgument, what),
            Ok(cmd) => self.handle_command(cmd),
        })
    }

    fn handle_command(&mut self, cmd: Command) -> Reply {
        match (cmd, self.state) {
            (_, State::Closed) => Reply::new(ReplyCode::BadSequence, "session closed"),

            (Command::Helo(domain), State::Connected) => {
                self.state = State::Greeted;
                Reply::new(ReplyCode::Ok, format!("{} greets {domain}", self.hostname))
            }
            (Command::Helo(_), _) => {
                // Re-HELO resets any transaction, per RFC.
                self.reset_transaction();
                self.state = State::Greeted;
                Reply::new(ReplyCode::Ok, "reset and greeted again")
            }

            (Command::MailFrom(path), State::Greeted) => {
                self.mail_from = Some(path);
                self.state = State::InTransaction;
                Reply::new(ReplyCode::Ok, "sender ok")
            }
            (Command::MailFrom(_), State::Connected) => {
                Reply::new(ReplyCode::BadSequence, "say HELO first")
            }
            (Command::MailFrom(_), _) => {
                Reply::new(ReplyCode::BadSequence, "nested MAIL command")
            }

            (Command::RcptTo(path), State::InTransaction) => {
                if self.rcpt_to.len() >= self.cfg.max_recipients {
                    Reply::new(ReplyCode::TooManyRecipients, "too many recipients")
                } else {
                    self.rcpt_to.push(path);
                    Reply::new(ReplyCode::Ok, "recipient ok")
                }
            }
            (Command::RcptTo(_), _) => Reply::new(ReplyCode::BadSequence, "need MAIL before RCPT"),

            (Command::Data, State::InTransaction) => {
                if self.rcpt_to.is_empty() {
                    Reply::new(ReplyCode::BadSequence, "need RCPT before DATA")
                } else {
                    self.state = State::ReceivingData;
                    self.data_lines.clear();
                    self.data_bytes = 0;
                    self.oversized = false;
                    Reply::new(ReplyCode::StartMailInput, "end data with <CRLF>.<CRLF>")
                }
            }
            (Command::Data, _) => Reply::new(ReplyCode::BadSequence, "no transaction"),

            (Command::Rset, _) => {
                self.reset_transaction();
                if self.state != State::Connected {
                    self.state = State::Greeted;
                }
                Reply::new(ReplyCode::Ok, "flushed")
            }

            (Command::Noop, _) => Reply::new(ReplyCode::Ok, "ok"),

            (Command::Vrfy(_), _) => {
                Reply::new(ReplyCode::CannotVrfy, "cannot verify, will attempt delivery")
            }

            (Command::Quit, _) => {
                self.state = State::Closed;
                self.events.push(ServerEvent::SessionClosed);
                Reply::new(ReplyCode::Closing, format!("{} closing", self.hostname))
            }
        }
    }

    fn handle_data_line(&mut self, line: &str) -> Option<Reply> {
        if line == "." {
            self.state = State::Greeted;
            if self.oversized {
                self.reset_transaction();
                return Some(Reply::new(ReplyCode::TooMuchData, "message too large"));
            }
            let body = dot_unstuff(&std::mem::take(&mut self.data_lines));
            let email = parse_email(&body);
            let msg = ReceivedMessage {
                mail_from: self.mail_from.take().unwrap_or_default(),
                rcpt_to: std::mem::take(&mut self.rcpt_to),
                email,
                wire_bytes: self.data_bytes,
            };
            self.data_bytes = 0;
            self.events.push(ServerEvent::MessageAccepted(msg));
            return Some(Reply::new(ReplyCode::Ok, "message accepted"));
        }
        self.data_bytes += line.len() + 2;
        if self.data_bytes > self.cfg.max_message_bytes {
            self.oversized = true;
            self.data_lines.clear();
        } else if !self.oversized {
            self.data_lines.push(line.to_owned());
        }
        None
    }

    fn reset_transaction(&mut self) {
        self.mail_from = None;
        self.rcpt_to.clear();
        self.data_lines.clear();
        self.data_bytes = 0;
        self.oversized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a scripted session; returns replies (None entries for silent
    /// data lines are skipped).
    fn drive(server: &mut SmtpServer, lines: &[&str]) -> Vec<Reply> {
        lines.iter().filter_map(|l| server.handle_line(l)).collect()
    }

    #[test]
    fn happy_path_delivers_message() {
        let mut s = SmtpServer::new("mx.corp.example");
        assert_eq!(s.greeting().code, ReplyCode::ServiceReady);
        let replies = drive(
            &mut s,
            &[
                "HELO sender.example",
                "MAIL FROM:<alice@sender.example>",
                "RCPT TO:<bob@corp.example>",
                "DATA",
                "Subject: hello",
                "",
                "quarterly numbers attached",
                ".",
                "QUIT",
            ],
        );
        let codes: Vec<u16> = replies.iter().map(|r| r.code.code()).collect();
        assert_eq!(codes, vec![250, 250, 250, 354, 250, 221]);
        let events = s.take_events();
        assert_eq!(events.len(), 2);
        match &events[0] {
            ServerEvent::MessageAccepted(m) => {
                assert_eq!(m.mail_from, "alice@sender.example");
                assert_eq!(m.rcpt_to, vec!["bob@corp.example"]);
                assert_eq!(m.email.subject(), Some("hello"));
                assert_eq!(m.email.body().trim(), "quarterly numbers attached");
            }
            other => panic!("expected MessageAccepted, got {other:?}"),
        }
        assert!(s.is_closed());
    }

    #[test]
    fn commands_out_of_sequence_get_503() {
        let mut s = SmtpServer::new("mx");
        let r = s.handle_line("MAIL FROM:<a@b>").unwrap();
        assert_eq!(r.code, ReplyCode::BadSequence);
        let r = s.handle_line("DATA").unwrap();
        assert_eq!(r.code, ReplyCode::BadSequence);
        let r = s.handle_line("RCPT TO:<a@b>").unwrap();
        assert_eq!(r.code, ReplyCode::BadSequence);
    }

    #[test]
    fn data_requires_a_recipient() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>"]);
        let r = s.handle_line("DATA").unwrap();
        assert_eq!(r.code, ReplyCode::BadSequence);
    }

    #[test]
    fn garbage_gets_500_and_session_continues() {
        let mut s = SmtpServer::new("mx");
        let r = s.handle_line("XYZZY magic").unwrap();
        assert_eq!(r.code, ReplyCode::SyntaxError);
        // Corrupted command (fault injector flipped a byte in HELO).
        let r = s.handle_line("HGLO x").unwrap();
        assert_eq!(r.code, ReplyCode::SyntaxError);
        // Session still usable.
        let r = s.handle_line("HELO x").unwrap();
        assert_eq!(r.code, ReplyCode::Ok);
    }

    #[test]
    fn rset_aborts_transaction() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>", "RCPT TO:<c@d>"]);
        let r = s.handle_line("RSET").unwrap();
        assert_eq!(r.code, ReplyCode::Ok);
        // MAIL is accepted again (state back to Greeted).
        let r = s.handle_line("MAIL FROM:<e@f>").unwrap();
        assert_eq!(r.code, ReplyCode::Ok);
    }

    #[test]
    fn oversized_message_rejected_with_552() {
        let mut s = SmtpServer::with_config(
            "mx",
            ServerConfig {
                max_message_bytes: 64,
                max_recipients: 4,
            },
        );
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>", "RCPT TO:<c@d>", "DATA"]);
        for _ in 0..10 {
            assert!(s.handle_line("0123456789abcdef").is_none());
        }
        let r = s.handle_line(".").unwrap();
        assert_eq!(r.code, ReplyCode::TooMuchData);
        assert!(s.take_events().is_empty(), "oversized message must not deliver");
        // Next transaction is clean.
        let r = s.handle_line("MAIL FROM:<a@b>").unwrap();
        assert_eq!(r.code, ReplyCode::Ok);
    }

    #[test]
    fn recipient_limit_enforced() {
        let mut s = SmtpServer::with_config(
            "mx",
            ServerConfig {
                max_message_bytes: 1024,
                max_recipients: 2,
            },
        );
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>"]);
        assert_eq!(s.handle_line("RCPT TO:<u1@d>").unwrap().code, ReplyCode::Ok);
        assert_eq!(s.handle_line("RCPT TO:<u2@d>").unwrap().code, ReplyCode::Ok);
        assert_eq!(
            s.handle_line("RCPT TO:<u3@d>").unwrap().code,
            ReplyCode::TooManyRecipients
        );
    }

    #[test]
    fn dot_stuffed_body_is_unstuffed() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>", "RCPT TO:<c@d>", "DATA"]);
        for l in ["..leading dot preserved", "normal", "."] {
            s.handle_line(l);
        }
        match &s.take_events()[0] {
            ServerEvent::MessageAccepted(m) => {
                assert!(m.email.body().contains(".leading dot preserved"));
                assert!(!m.email.body().contains(".."));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rehelo_resets_transaction() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x", "MAIL FROM:<a@b>"]);
        assert_eq!(s.handle_line("HELO y").unwrap().code, ReplyCode::Ok);
        // RCPT must now fail: the transaction was dropped.
        assert_eq!(
            s.handle_line("RCPT TO:<c@d>").unwrap().code,
            ReplyCode::BadSequence
        );
    }

    #[test]
    fn closed_session_rejects_commands() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x", "QUIT"]);
        assert!(s.is_closed());
        assert_eq!(s.handle_line("NOOP").unwrap().code, ReplyCode::BadSequence);
    }

    #[test]
    fn multiple_messages_per_session() {
        let mut s = SmtpServer::new("mx");
        drive(&mut s, &["HELO x"]);
        for i in 0..3 {
            drive(
                &mut s,
                &[
                    &format!("MAIL FROM:<sender{i}@x>"),
                    "RCPT TO:<victim@corp>",
                    "DATA",
                    &format!("message number {i}"),
                    ".",
                ],
            );
        }
        let accepted = s
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, ServerEvent::MessageAccepted(_)))
            .count();
        assert_eq!(accepted, 3);
    }
}
