//! The organization simulation: §2.1–§2.2 as a running system, sharded.
//!
//! One shared SpamBayes instance filters all incoming mail for an
//! organization's users. Mail — legitimate, background spam, and attack —
//! arrives over the SMTP-lite wire (one connection per message, faults and
//! all), is classified, routed to per-user mailboxes, and *also* recorded
//! into the training pool. Every `retrain_every` days the organization
//! retrains from the pool, exactly as the paper's contamination assumption
//! requires: attack messages are genuinely spam, so they are trained as
//! spam, and that is precisely what poisons the filter.
//!
//! Traffic is declarative: each user has their own daily ham/spam rates
//! ([`OrgConfig::user_traffic`], defaulting to an equal split of the
//! organization-wide [`OrgConfig::traffic`]), and **any number** of attack
//! campaigns run concurrently ([`OrgConfig::attacks`]) with staggered
//! start/stop windows, per-day intensities, and optional target-user
//! lists. Each day's outbound list composes every user's quota with every
//! active campaign's batch, then one arrival permutation assigns wire
//! positions — the scenario-engine substrate the `sb-experiments` golden
//! suite locks down.
//!
//! # Shard/merge architecture
//!
//! Users are partitioned round-robin across [`OrgConfig::shards`] worker
//! shards. Each shard owns its users' mailboxes, its own SMTP-lite
//! server/pipe instances, and a private fresh pool, and runs the week's
//! day loop independently on a scoped worker thread
//! ([`sb_intern::par::parallel_map_mut`], honoring `SB_THREADS`). The
//! weekly retrain is the only barrier: per-shard fresh pools are combined
//! by a stable merge keyed on `(day, wire position)` — the canonical
//! organization-wide arrival order — and the existing batch RONI screening
//! and threshold recalibration run once over the merged pool.
//!
//! Determinism is seed-path, not schedule, based, so weekly reports are
//! **bit-identical for every shard count, including 1** (property-tested
//! in `tests/prop_mailflow.rs`):
//!
//! * every random stream derives from the [`SeedTree`] by day and
//!   organization-wide wire position (`day/<d>/traffic` for the arrival
//!   permutation, `day/<d>/attack/<p>` for campaign `p`'s batch,
//!   `day/<d>/pipe/<i>` for per-message wire faults) — never from shard
//!   identity or scheduling order;
//! * corpus messages are pure in their global counter
//!   ([`EmailGenerator::ham`]`(i)`), so any shard can materialize exactly
//!   the messages addressed to its users;
//! * classification reads the shared filter immutably, and token scoring
//!   breaks ties by resolved token string (never raw `TokenId`), so
//!   concurrent interning order cannot leak into verdicts;
//! * week metrics are sums of per-shard counters, and the §2.1 cost model
//!   counts folder contents, so shard-merge order is immaterial there.
//!
//! Defenses hook into the retraining step: RONI screens merged pool
//! entries against a trusted bootstrap set (§5.1) through the fallible
//! [`RoniDefense::try_screen_ids`] surface — a screening failure degrades
//! the week (admitting nothing, recorded in
//! [`WeekReport::screen_error`]) instead of aborting the simulation, and
//! the `train-untrain` feature swaps the legacy reference loop in behind
//! the same surface — the dynamic threshold recalibrates θ0/θ1 from a
//! held-out split of the pool (§5.2), or both.
//!
//! The output is a week-by-week report of user-visible damage, which is the
//! time-axis view of the paper's Figure 1: the attack lands in the pool
//! during week *n* and detonates at the week-*n* retrain.

use crate::client::{Envelope, SmtpClient};
use crate::faultplan::{FaultPlan, FaultPlanError};
use crate::mailbox::{Mailbox, UserCosts, UserModel};
use crate::server::{ServerEvent, SmtpServer};
use crate::transport::{FaultConfig, FaultError, FaultStats, FaultyPipe};
use sb_core::{
    calibrate, AttackGenerator, CampaignEnv, CampaignError, CampaignShape, CampaignSpec,
    Intensity, RoniConfig, RoniDefense, ThresholdConfig, TrainItem,
};
use sb_corpus::{CorpusConfig, EmailGenerator};
use sb_email::{Dataset, Email, Label, LabeledEmail};
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_intern::{par, FxHashMap, Interner, TokenId};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Daily traffic volumes. As [`OrgConfig::traffic`] the counts are
/// organization-wide (split round-robin across users); as an entry of
/// [`OrgConfig::user_traffic`] they are that one user's daily rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Legitimate messages per day.
    pub ham_per_day: u32,
    /// Background (non-attack) spam per day.
    pub spam_per_day: u32,
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self {
            ham_per_day: 30,
            spam_per_day: 30,
        }
    }
}

/// Which defense the organization runs at retraining time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefensePolicy {
    /// Train on everything (the paper's baseline victim).
    None,
    /// RONI-screen new pool entries against the trusted bootstrap (§5.1).
    Roni,
    /// Recalibrate θ0/θ1 from the (contaminated) pool (§5.2). `strict`
    /// selects the g = 0.05 variant, otherwise g = 0.10.
    DynamicThreshold {
        /// Use the 0.05 utility target instead of 0.10.
        strict: bool,
    },
    /// RONI screening followed by threshold recalibration.
    RoniPlusThreshold,
}

/// An attack campaign: when it runs, how its volume is shaped over time,
/// and at whom.
///
/// An [`OrgConfig`] carries *any number* of these; campaigns with
/// overlapping windows compose — each campaign contributes its
/// [`AttackPlan::volume_on`] messages to the day's arrival permutation
/// independently.
pub struct AttackPlan {
    /// First day (1-based) attack mail is sent.
    pub start_day: u32,
    /// Last day (inclusive) attack mail is sent; `None` runs to the end of
    /// the simulation.
    pub end_day: Option<u32>,
    /// The send schedule over the active window (constant, linear ramp, or
    /// burst trains).
    pub intensity: Intensity,
    /// Target users as indices into [`OrgConfig::users`]; `None` spreads
    /// the campaign round-robin over every user.
    pub targets: Option<Vec<usize>>,
    /// The attack email generator (dictionary, focused, ham-chaff, …).
    pub generator: Box<dyn AttackGenerator + Send + Sync>,
}

impl AttackPlan {
    /// The paper's shape: starts on `start_day`, never stops, sends a
    /// constant `per_day`, targets everyone.
    pub fn new(
        start_day: u32,
        per_day: u32,
        generator: Box<dyn AttackGenerator + Send + Sync>,
    ) -> Self {
        Self {
            start_day,
            end_day: None,
            intensity: Intensity::constant(per_day),
            targets: None,
            generator,
        }
    }

    /// Materialize a plan from a declarative [`CampaignSpec`] (the
    /// scenario engine's attack description), building the generator
    /// against the organization's [`CampaignEnv`] — the step that resolves
    /// focused-attack [`sb_core::MessageRef`]s and donor headers, and the
    /// reason plan construction is fallible.
    pub fn from_campaign(
        spec: &CampaignSpec,
        env: &CampaignEnv<'_>,
    ) -> Result<Self, CampaignError> {
        Ok(Self {
            start_day: spec.start_day,
            end_day: spec.end_day,
            intensity: spec.intensity,
            targets: spec.targets.clone(),
            generator: spec.attack.build(env)?,
        })
    }

    /// Attack messages sent on `day` (1-based): 0 outside the inclusive
    /// window, the schedule's volume inside it. Delegates to the same
    /// [`Intensity::volume_on_day`] the declarative spec validates
    /// through, so validation and execution share one window arithmetic.
    pub fn volume_on(&self, day: u32) -> u32 {
        self.intensity.volume_on_day(self.start_day, self.end_day, day)
    }
}

impl std::fmt::Debug for AttackPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackPlan")
            .field("start_day", &self.start_day)
            .field("end_day", &self.end_day)
            .field("intensity", &self.intensity)
            .field("targets", &self.targets)
            .field("generator", &self.generator.name())
            .finish()
    }
}

/// Simulation configuration.
#[derive(Debug)]
pub struct OrgConfig {
    /// Recipient user addresses (mail is spread round-robin).
    pub users: Vec<String>,
    /// Days to simulate.
    pub days: u32,
    /// Retrain every this many days (the paper's "e.g., weekly").
    pub retrain_every: u32,
    /// Daily volumes, organization-wide, split round-robin across users
    /// (ignored when [`OrgConfig::user_traffic`] is non-empty).
    pub traffic: TrafficMix,
    /// Heterogeneous per-user daily volumes: one entry per user, in
    /// [`OrgConfig::users`] order. Empty means every user takes an equal
    /// share of [`OrgConfig::traffic`].
    pub user_traffic: Vec<TrafficMix>,
    /// Wire faults.
    pub faults: FaultConfig,
    /// Defense at retraining time.
    pub defense: DefensePolicy,
    /// Size of the trusted, clean bootstrap training set.
    pub bootstrap_size: usize,
    /// Corpus model for ham/spam generation.
    pub corpus: CorpusConfig,
    /// The attack campaigns (any number; overlapping windows compose).
    pub attacks: Vec<AttackPlan>,
    /// Worker shards the users are partitioned across. `0` means one
    /// shard per available worker thread (`SB_THREADS` honored); any
    /// value is clamped to the user count. Reports are bit-identical for
    /// every shard count.
    pub shards: usize,
    /// Scheduled infrastructure failures plus the redelivery budget (the
    /// graceful-degradation policy). [`FaultPlan::default`] schedules
    /// nothing and allows 3 redelivery days.
    pub fault_plan: FaultPlan,
    /// Master seed.
    pub seed: u64,
}

/// An invalid [`OrgConfig`], from [`OrgConfig::validate`] /
/// [`MailOrg::try_new`].
#[derive(Debug, Clone, PartialEq)]
pub enum OrgConfigError {
    /// The user list is empty.
    NoUsers,
    /// `retrain_every` is 0.
    ZeroRetrain,
    /// `user_traffic` is non-empty but does not match the user count.
    UserTrafficMismatch {
        /// Entries in `user_traffic`.
        entries: usize,
        /// Users in `users`.
        users: usize,
    },
    /// The baseline wire fault rates are out of range.
    BaseFaults(FaultError),
    /// The fault plan references a day, week, user, or probability the
    /// organization does not have.
    Plan(FaultPlanError),
    /// An attack plan's window or target list is invalid.
    Attack {
        /// 0-based plan index.
        plan: usize,
        /// What was wrong.
        reason: String,
    },
    /// A checkpoint references a user index outside this configuration's
    /// user list — it was taken from a different organization.
    CheckpointMismatch {
        /// The offending user index.
        user: usize,
        /// Users in this configuration.
        users: usize,
    },
}

impl std::fmt::Display for OrgConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrgConfigError::NoUsers => write!(f, "need at least one user"),
            OrgConfigError::ZeroRetrain => write!(f, "retrain_every must be >= 1"),
            OrgConfigError::UserTrafficMismatch { entries, users } => write!(
                f,
                "user_traffic must have one entry per user ({entries} entries for {users} users)"
            ),
            OrgConfigError::BaseFaults(e) => write!(f, "invalid wire faults: {e}"),
            OrgConfigError::Plan(e) => write!(f, "invalid fault plan: {e}"),
            OrgConfigError::Attack { plan, reason } => {
                write!(f, "attack plan {plan}: {reason}")
            }
            OrgConfigError::CheckpointMismatch { user, users } => write!(
                f,
                "checkpoint references user {user} but this configuration has {users} users"
            ),
        }
    }
}

impl std::error::Error for OrgConfigError {}

impl OrgConfig {
    /// A small default organization: 5 users, 4 weeks, weekly retraining,
    /// reliable wire, no attack, no defense, single shard.
    pub fn small(seed: u64) -> Self {
        Self {
            users: (0..5).map(|i| format!("user{i}@corp.example")).collect(),
            days: 28,
            retrain_every: 7,
            traffic: TrafficMix::default(),
            user_traffic: Vec::new(),
            faults: FaultConfig::none(),
            defense: DefensePolicy::None,
            bootstrap_size: 400,
            corpus: CorpusConfig::with_size(400, 0.5),
            attacks: Vec::new(),
            shards: 1,
            fault_plan: FaultPlan::default(),
            seed,
        }
    }

    /// Validate everything construction depends on: user list, retrain
    /// cadence, traffic shape, baseline fault probabilities, the fault
    /// plan, and every attack plan's window/targets.
    pub fn validate(&self) -> Result<(), OrgConfigError> {
        if self.users.is_empty() {
            return Err(OrgConfigError::NoUsers);
        }
        if self.retrain_every == 0 {
            return Err(OrgConfigError::ZeroRetrain);
        }
        if !self.user_traffic.is_empty() && self.user_traffic.len() != self.users.len() {
            return Err(OrgConfigError::UserTrafficMismatch {
                entries: self.user_traffic.len(),
                users: self.users.len(),
            });
        }
        self.faults.validate().map_err(OrgConfigError::BaseFaults)?;
        self.fault_plan
            .validate(self.users.len(), self.days, self.retrain_every)
            .map_err(OrgConfigError::Plan)?;
        for (p, plan) in self.attacks.iter().enumerate() {
            if let Some(end) = plan.end_day {
                if end < plan.start_day {
                    return Err(OrgConfigError::Attack {
                        plan: p,
                        reason: format!(
                            "empty window (end_day {end} < start_day {})",
                            plan.start_day
                        ),
                    });
                }
            }
            if let Some(targets) = &plan.targets {
                if targets.is_empty() {
                    return Err(OrgConfigError::Attack {
                        plan: p,
                        reason: "empty target list".into(),
                    });
                }
                if let Some(&u) = targets.iter().find(|&&u| u >= self.users.len()) {
                    return Err(OrgConfigError::Attack {
                        plan: p,
                        reason: format!(
                            "target user {u} out of range (org has {} users)",
                            self.users.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The effective per-user daily rates: [`OrgConfig::user_traffic`]
    /// verbatim when set, otherwise [`OrgConfig::traffic`] split
    /// round-robin (user `u` takes `total / n` plus one of the first
    /// `total % n` remainder slots).
    pub fn per_user_rates(&self) -> Vec<TrafficMix> {
        if !self.user_traffic.is_empty() {
            return self.user_traffic.clone();
        }
        let n = self.users.len() as u32;
        let share = |total: u32, u: u32| total / n + u32::from(u < total % n);
        (0..n)
            .map(|u| TrafficMix {
                ham_per_day: share(self.traffic.ham_per_day, u),
                spam_per_day: share(self.traffic.spam_per_day, u),
            })
            .collect()
    }

    /// The organization's indexed corpus generator — the *same* derivation
    /// [`MailOrg::new`] uses, exposed so campaign building
    /// ([`OrgConfig::campaign_env`]) resolves `MessageRef`s against
    /// exactly the messages the simulation will deliver.
    pub fn corpus_generator(&self) -> EmailGenerator {
        let seeds = SeedTree::new(self.seed).child("mailorg");
        EmailGenerator::new(self.corpus.clone(), seeds.child("corpus").seed())
    }

    /// The ham/spam counter split the clean bootstrap consumes: day
    /// traffic starts at these counters.
    pub fn bootstrap_counters(&self) -> (u64, u64) {
        let n_ham = self.bootstrap_size / 2;
        (n_ham as u64, (self.bootstrap_size - n_ham) as u64)
    }

    /// The [`CampaignShape`] campaign validation resolves against.
    pub fn campaign_shape(&self) -> CampaignShape {
        CampaignShape {
            n_users: self.users.len(),
            days: self.days,
            ham_rates: self
                .per_user_rates()
                .iter()
                .map(|r| r.ham_per_day)
                .collect(),
        }
    }

    /// The [`CampaignEnv`] attack kinds build their generators against.
    /// `generator` must come from [`OrgConfig::corpus_generator`] (lent
    /// rather than rebuilt so several plans share one compiled model).
    pub fn campaign_env<'a>(&self, generator: &'a EmailGenerator) -> CampaignEnv<'a> {
        let (ham0, spam0) = self.bootstrap_counters();
        CampaignEnv {
            shape: self.campaign_shape(),
            generator,
            ham0,
            spam0,
            seed: self.seed,
        }
    }

    /// Build [`AttackPlan`]s for a set of declarative campaigns against
    /// this organization. The full declaration is validated first —
    /// schedule shapes, windows, zero-volume checks, target indices,
    /// message refs — so a spec that builds is exactly a spec that runs
    /// as declared. Fails with the 0-based index of the first campaign
    /// whose declaration does not hold.
    pub fn build_campaigns(
        &self,
        specs: &[CampaignSpec],
    ) -> Result<Vec<AttackPlan>, (usize, CampaignError)> {
        sb_core::campaign::validate_campaigns(specs, &self.campaign_shape())?;
        let generator = self.corpus_generator();
        let env = self.campaign_env(&generator);
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| AttackPlan::from_campaign(spec, &env).map_err(|e| (i, e)))
            .collect()
    }
}

/// Filter state: plain thresholds or a calibrated pair.
enum ActiveFilter {
    Plain(SpamBayes),
    Calibrated(sb_core::CalibratedFilter),
}

impl ActiveFilter {
    fn classify(&self, email: &Email) -> Verdict {
        match self {
            ActiveFilter::Plain(f) => f.classify(email).verdict,
            ActiveFilter::Calibrated(c) => c.classify(email).verdict,
        }
    }
}

/// Capture a filter as a last-good checkpoint: the `persist` dump image of
/// its counts plus the θ0/θ1 cutoffs its verdicts use. A calibrated filter
/// delegates classification to its inner `SpamBayes` whose options already
/// carry the calibrated cutoffs, so the image + cutoff pair reproduces
/// either variant's verdicts exactly.
fn filter_image(filter: &ActiveFilter) -> (Vec<u8>, (f64, f64)) {
    let f = match filter {
        ActiveFilter::Plain(f) => f,
        ActiveFilter::Calibrated(c) => c.filter(),
    };
    let opts = f.options();
    (
        sb_filter::persist::snapshot(f.db()),
        (opts.ham_cutoff, opts.spam_cutoff),
    )
}

/// Rebuild a serving filter from a checkpoint image. Counts are exact
/// `u32`s and token scoring tie-breaks by resolved string, so the restored
/// filter classifies bit-identically to the captured one.
fn filter_from(image: &[u8], (t0, t1): (f64, f64)) -> ActiveFilter {
    let db = sb_filter::persist::restore(image)
        // sb-lint: allow(fail-closed, "the image came from persist::snapshot in this same process; a parse failure is a program bug, not a recoverable fault, and serving without a model is worse than stopping")
        .expect("checkpoint images are self-produced and must parse");
    let mut f = SpamBayes::from_db(db);
    f.set_options(FilterOptions::default().with_cutoffs(t0, t1));
    ActiveFilter::Plain(f)
}

/// One week of user-visible outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeekReport {
    /// Week number, 1-based.
    pub week: u32,
    /// Messages offered to SMTP this week.
    pub offered: usize,
    /// Messages accepted by the server.
    pub accepted: usize,
    /// Accepted messages bounced for lack of a local mailbox (never
    /// classified, never pooled).
    pub bounced: usize,
    /// Fraction of this week's ham classified spam.
    pub ham_as_spam: f64,
    /// Fraction of this week's ham classified spam or unsure.
    pub ham_misrouted: f64,
    /// Fraction of this week's true spam classified spam.
    pub spam_caught: f64,
    /// Fraction of this week's true spam classified unsure.
    pub spam_as_unsure: f64,
    /// Pool entries rejected by RONI at this week's retrain (0 when the
    /// defense is off or the week had no retrain).
    pub screened_out: usize,
    /// RONI screening failure at this week's retrain, if any: the week's
    /// fresh mail was *not* admitted to the pool (fail closed) and the
    /// error is recorded here instead of aborting the simulation.
    pub screen_error: Option<String>,
    /// Aggregated §2.1 user costs for the week.
    pub costs: UserCosts,
    /// The §2.1 "no advantage from continued use" predicate (> 20% of ham
    /// misrouted).
    pub filter_useless: bool,
    /// Messages still in the deferred-redelivery queue at week end (they
    /// re-enter the next week's wire plan; at the final week this is mail
    /// the simulation ended without resolving).
    pub deferred: usize,
    /// Previously deferred messages successfully redelivered this week.
    pub redelivered: usize,
    /// Fresh pool entries quarantined at this week's retrain (crashed
    /// mailstore node, or the whole batch after an injected retrain
    /// failure); they replay into the next retrain instead of vanishing.
    pub quarantined: usize,
    /// Previously quarantined entries admitted back at this week's retrain.
    pub replayed: usize,
    /// The week was served by a stale checkpoint model (the previous
    /// week's retrain failed or its model image was corrupt).
    pub degraded: bool,
    /// This week's retrain fell back to the last-good checkpoint instead
    /// of installing a fresh model.
    pub recovered_from_checkpoint: bool,
    /// Wire fault counters for this week alone (deterministic shard-merge
    /// of the per-shard counters).
    pub fault_stats: FaultStats,
}

/// Full simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgReport {
    /// Per-week outcomes.
    pub weeks: Vec<WeekReport>,
    /// Wire fault counters across the whole run.
    pub fault_stats: FaultStats,
    /// Total messages delivered into mailboxes.
    pub total_delivered: usize,
    /// Total SMTP delivery failures (after retries *and* the deferred
    /// queue's redelivery budget).
    pub total_failed: usize,
    /// Total accepted messages bounced for lack of a local mailbox.
    pub total_bounced: usize,
    /// Messages still deferred when the simulation ended (offered but
    /// neither delivered, failed, nor bounced).
    pub total_deferred: usize,
    /// Deferred messages successfully redelivered over the whole run.
    pub total_redelivered: usize,
}

impl OrgReport {
    /// Highest ham-misrouted rate over all weeks (the attack's high-water
    /// mark).
    pub fn worst_week_ham_misrouted(&self) -> f64 {
        self.weeks.iter().map(|w| w.ham_misrouted).fold(0.0, f64::max)
    }
}

/// A delivered-but-unscreened message, tagged with its position in the
/// canonical organization-wide arrival order. `(day, pos)` is unique per
/// message (one wire slot per message per day — a redelivered message
/// keeps its *original* slot, whose first attempt never pooled), so the
/// merge at retrain is a total order independent of shard count and
/// scheduling. `user` keys the crash quarantine: shard ids change with the
/// shard count, the recipient does not.
#[derive(Clone, Serialize, Deserialize)]
struct FreshMail {
    day: u32,
    pos: u64,
    user: usize,
    mail: LabeledEmail,
}

/// A message that exhausted its SMTP retries, parked for redelivery on a
/// later day instead of being dropped. Keeps its canonical original slot
/// for the pipe seed path (`day/<today>/defer/<orig day>/<orig pos>`) and
/// the fresh-pool merge key.
#[derive(Clone, Serialize, Deserialize)]
struct DeferredMail {
    orig_day: u32,
    orig_pos: u64,
    user: usize,
    email: Email,
    truth: Label,
    /// Redelivery days already burned.
    attempts: u32,
}

/// Merge per-shard fresh pools into the canonical arrival order. The sort
/// key `(day, pos)` is unique, so the result is identical whatever order
/// the shard pools arrive in — the determinism hinge of the weekly merge.
fn merge_fresh(per_shard: Vec<Vec<FreshMail>>) -> Vec<FreshMail> {
    let mut all: Vec<FreshMail> = per_shard.into_iter().flatten().collect();
    all.sort_unstable_by_key(|f| (f.day, f.pos));
    // Dynamic witness for the lint's static claim: the merged pool must be
    // *strictly* ordered — a duplicate (day, wire position) key means two
    // shards claimed the same wire slot, which breaks shard-invariance.
    debug_assert!(
        all.windows(2).all(|w| (w[0].day, w[0].pos) < (w[1].day, w[1].pos)),
        "fresh-pool merge: duplicate (day, wire position) key — two shards \
         produced the same wire slot"
    );
    all
}

/// Per-shard, per-week accounting, merged by summation at the week
/// boundary. Every field is order-independent (counters, or a mailbox
/// whose §2.1 costs are counts), so the merged tally is shard-invariant.
#[derive(Default)]
struct WeekTally {
    offered: usize,
    accepted: usize,
    delivered: usize,
    failed: usize,
    bounced: usize,
    fault_stats: FaultStats,
    redelivered: usize,
    n_ham: usize,
    n_spam: usize,
    ham_as_spam: usize,
    ham_as_unsure: usize,
    spam_as_spam: usize,
    spam_as_unsure: usize,
    costs_box: Mailbox,
}

impl WeekTally {
    fn absorb(&mut self, other: WeekTally) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.delivered += other.delivered;
        self.failed += other.failed;
        self.bounced += other.bounced;
        self.redelivered += other.redelivered;
        self.fault_stats.absorb(other.fault_stats);
        self.n_ham += other.n_ham;
        self.n_spam += other.n_spam;
        self.ham_as_spam += other.ham_as_spam;
        self.ham_as_unsure += other.ham_as_unsure;
        self.spam_as_spam += other.spam_as_spam;
        self.spam_as_unsure += other.spam_as_unsure;
        self.costs_box.absorb(other.costs_box);
    }

    fn record_verdict(&mut self, truth: Label, verdict: Verdict) {
        match truth {
            Label::Ham => {
                self.n_ham += 1;
                match verdict {
                    Verdict::Spam => self.ham_as_spam += 1,
                    Verdict::Unsure => self.ham_as_unsure += 1,
                    Verdict::Ham => {}
                }
            }
            Label::Spam => {
                self.n_spam += 1;
                match verdict {
                    Verdict::Spam => self.spam_as_spam += 1,
                    Verdict::Unsure => self.spam_as_unsure += 1,
                    Verdict::Ham => {}
                }
            }
        }
    }
}

/// Read-only context a shard needs to run a day: configuration, seed tree,
/// corpus generator, the shared filter, the per-user traffic rates, the
/// global corpus counters the bootstrap consumed, and the period's attack
/// batches.
struct DayCtx<'a> {
    cfg: &'a OrgConfig,
    seeds: &'a SeedTree,
    generator: &'a EmailGenerator,
    filter: &'a ActiveFilter,
    /// Effective per-user daily rates ([`OrgConfig::per_user_rates`]).
    rates: &'a [TrafficMix],
    /// Organization-wide daily totals (sums over `rates`).
    total_ham: u32,
    total_spam: u32,
    ham0: u64,
    spam0: u64,
    n_shards: usize,
    /// First day of the period `attack_batches` covers.
    first_day: u32,
    /// Per-day, per-campaign batches for `first_day..`, materialized once
    /// by the coordinator: each batch comes from one sequential RNG stream
    /// (`day/<d>/attack/<plan>`), so generating it per shard would
    /// duplicate the whole day's attack-generation cost in every worker.
    /// Inactive campaigns contribute an empty batch.
    attack_batches: &'a [Vec<Vec<Email>>],
}

impl DayCtx<'_> {
    /// Campaign `plan`'s emails arriving on `day` (empty outside its
    /// window).
    fn attack_batch(&self, day: u32, plan: usize) -> &[Email] {
        &self.attack_batches[(day - self.first_day) as usize][plan]
    }
}

/// Materialize every campaign's batches for days `first..=last` from their
/// per-day, per-plan seed nodes. The day's volume comes from the plan's
/// [`Intensity`] schedule — evaluated here, once, on the coordinator, so
/// ramps and bursts can never diverge across shards. Days a campaign sends
/// nothing (outside its window, or a burst off-day) contribute an empty
/// batch without touching the campaign's RNG stream.
fn attack_batches_for(cfg: &OrgConfig, seeds: &SeedTree, first: u32, last: u32) -> Vec<Vec<Vec<Email>>> {
    (first..=last)
        .map(|day| {
            let day_seeds = seeds.child("day").index(u64::from(day));
            cfg.attacks
                .iter()
                .enumerate()
                .map(|(p, plan)| {
                    let volume = plan.volume_on(day);
                    if volume > 0 {
                        let mut atk_rng = day_seeds.child("attack").index(p as u64).rng();
                        plan.generator.generate(volume, &mut atk_rng).materialize()
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        })
        .collect()
}

/// What the message at one composition slot of a day is.
#[derive(Debug, Clone, Copy)]
enum EntryKind {
    /// The day's `k`-th ham message (offset into the day's ham counter
    /// block).
    Ham(u64),
    /// The day's `k`-th background spam message.
    Spam(u64),
    /// Message `idx` of campaign `plan`'s batch for the day.
    Attack { plan: usize, idx: usize },
}

/// One composition slot of a day's traffic: what arrives and for whom.
#[derive(Debug, Clone, Copy)]
struct DayEntry {
    user: usize,
    kind: EntryKind,
}

/// The day's composed outbound list, **before** the arrival permutation:
/// each user's ham and spam quota in user order, then each campaign's
/// batch in plan order. Pure in the configuration and the day, so every
/// shard derives the identical list; the `day/<d>/traffic` permutation
/// then assigns wire positions.
fn day_entries(ctx: &DayCtx<'_>, day: u32) -> Vec<DayEntry> {
    let n_attack: usize = ctx
        .cfg
        .attacks
        .iter()
        .enumerate()
        .map(|(p, _)| ctx.attack_batch(day, p).len())
        .sum();
    let mut entries =
        Vec::with_capacity(ctx.total_ham as usize + ctx.total_spam as usize + n_attack);
    let mut k = 0u64;
    for (user, rate) in ctx.rates.iter().enumerate() {
        for _ in 0..rate.ham_per_day {
            entries.push(DayEntry { user, kind: EntryKind::Ham(k) });
            k += 1;
        }
    }
    let mut k = 0u64;
    for (user, rate) in ctx.rates.iter().enumerate() {
        for _ in 0..rate.spam_per_day {
            entries.push(DayEntry { user, kind: EntryKind::Spam(k) });
            k += 1;
        }
    }
    let n_users = ctx.cfg.users.len();
    for (plan, spec) in ctx.cfg.attacks.iter().enumerate() {
        for idx in 0..ctx.attack_batch(day, plan).len() {
            let user = match &spec.targets {
                Some(targets) => targets[idx % targets.len()],
                None => idx % n_users,
            };
            entries.push(DayEntry { user, kind: EntryKind::Attack { plan, idx } });
        }
    }
    entries
}

/// One worker shard: a round-robin slice of the organization's users, with
/// their mailboxes, this retrain period's fresh deliveries, and the
/// shard's slice of the deferred-redelivery queue (a deferred message
/// lives with the shard that owns its recipient).
struct Shard {
    id: usize,
    mailboxes: FxHashMap<String, Mailbox>,
    fresh: Vec<FreshMail>,
    deferred: Vec<DeferredMail>,
}

impl Shard {
    /// Whether this shard owns the user at global index `u`.
    fn owns(&self, u: usize, n_shards: usize) -> bool {
        u % n_shards == self.id
    }

    /// One day of this shard's share of the organization's traffic: the
    /// day plan (per-user composition + arrival permutation) is recomputed
    /// identically on every shard from the configuration and the day's
    /// seed node; the shard then delivers exactly the wire positions
    /// addressed to its users, over its own per-message server/pipe
    /// instances.
    fn run_day(&mut self, ctx: &DayCtx<'_>, day: u32, tally: &mut WeekTally) {
        let day_seeds = ctx.seeds.child("day").index(u64::from(day));
        // The day's effective wire fault rates: the fault plan's pipe
        // windows override (and ramp) the baseline. Pure arithmetic over
        // the plan, so identical on every shard.
        let faults = ctx.cfg.fault_plan.faults_on(day, ctx.cfg.faults);
        // Yesterday's deferred mail re-enters the wire plan first.
        self.retry_deferred(ctx, day, faults, &day_seeds, tally);
        let entries = day_entries(ctx, day);

        // The day's arrival order: the same Fisher–Yates the single-shard
        // loop applies to the composed outbound list, run on indices so
        // every shard derives the identical permutation without
        // materializing messages it does not own. `perm[i]` is the
        // composition index (per-user ham, per-user spam, then campaign
        // batches) of the message at wire position `i`.
        let mut perm: Vec<usize> = (0..entries.len()).collect();
        let mut rng = day_seeds.child("traffic").rng();
        shuffle(&mut perm, &mut rng);

        // Corpus messages are pure in their global counter; day `d`'s ham
        // block starts right after the bootstrap plus `d − 1` full days.
        let ham_base = ctx.ham0 + u64::from(day - 1) * u64::from(ctx.total_ham);
        let spam_base = ctx.spam0 + u64::from(day - 1) * u64::from(ctx.total_spam);

        let client = SmtpClient::new("outside.example");
        for (i, &k) in perm.iter().enumerate() {
            let entry = entries[k];
            let user = entry.user;
            if !self.owns(user, ctx.n_shards) {
                continue;
            }
            tally.offered += 1;

            let (email, truth) = match entry.kind {
                EntryKind::Ham(off) => (ctx.generator.ham(ham_base + off), Label::Ham),
                EntryKind::Spam(off) => (ctx.generator.spam(spam_base + off), Label::Spam),
                // Ground truth: attack mail IS spam (§2.2) — that is the
                // whole point of the contamination assumption.
                EntryKind::Attack { plan, idx } => {
                    (ctx.attack_batch(day, plan)[idx].clone(), Label::Spam)
                }
            };

            // One SMTP connection per message: exact truth↔delivery
            // mapping even when deliveries fail. The pipe's fault stream
            // is keyed by the organization-wide wire position, not by
            // shard, so faults replay identically at any shard count.
            let mut pipe = FaultyPipe::seeded(
                faults,
                day_seeds.child("pipe").index(i as u64).seed(),
            );
            let mut server = SmtpServer::new("mx.corp.example");
            let rcpt = &ctx.cfg.users[user];
            let env = Envelope::to_one("sender@outside.example", rcpt.clone(), email);
            let report = client.deliver_all(&mut pipe, &mut server, std::slice::from_ref(&env));
            tally.fault_stats.absorb(pipe.stats());

            let mut got = None;
            for ev in server.take_events() {
                if let ServerEvent::MessageAccepted(msg) = ev {
                    got = Some(msg);
                }
            }
            match (report.delivered, got) {
                (1, Some(msg)) => {
                    tally.accepted += 1;
                    // Routing: an accepted message whose recipient has no
                    // local mailbox — dropped from the table, or lost to a
                    // scheduled mailbox fault for the rest of the period —
                    // bounces into the day stats; it is never classified
                    // and never reaches the training pool. (Pre-shard code
                    // panicked here; a stale routing table must degrade,
                    // not abort.)
                    if ctx.cfg.fault_plan.mailbox_lost(user, day, ctx.cfg.retrain_every) {
                        tally.bounced += 1;
                        continue;
                    }
                    let Some(mbox) = self.mailboxes.get_mut(rcpt) else {
                        tally.bounced += 1;
                        continue;
                    };
                    // Classify the message as received (post-wire).
                    let verdict = ctx.filter.classify(&msg.email);
                    tally.record_verdict(truth, verdict);
                    mbox.deliver(msg.email.clone(), truth, verdict, day);
                    tally.costs_box.deliver(msg.email.clone(), truth, verdict, day);
                    tally.delivered += 1;
                    // Into the fresh pool with its ground-truth training
                    // label and canonical arrival position.
                    self.fresh.push(FreshMail {
                        day,
                        pos: i as u64,
                        user,
                        mail: LabeledEmail::new(msg.email, truth),
                    });
                }
                _ => {
                    // Exhausted retries: park for redelivery on a later
                    // day instead of dropping the message — unless the
                    // plan's budget says drop-on-failure.
                    if ctx.cfg.fault_plan.redelivery_budget > 0 {
                        self.deferred.push(DeferredMail {
                            orig_day: day,
                            orig_pos: i as u64,
                            user,
                            email: env.email,
                            truth,
                            attempts: 0,
                        });
                    } else {
                        tally.failed += 1;
                    }
                }
            }
        }
    }

    /// Re-run the shard's deferred queue through today's wire plan. Each
    /// message's pipe stream is keyed `day/<today>/defer/<orig day>/<orig
    /// pos>` — the canonical original slot, never the shard or queue
    /// position — so redelivery outcomes are bit-identical at any shard
    /// count. Success pools the message under its original `(day, pos)`
    /// merge key (whose first attempt never pooled, keeping the key
    /// unique); failure burns one of the plan's redelivery days.
    fn retry_deferred(
        &mut self,
        ctx: &DayCtx<'_>,
        day: u32,
        faults: FaultConfig,
        day_seeds: &SeedTree,
        tally: &mut WeekTally,
    ) {
        if self.deferred.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.deferred);
        queue.sort_unstable_by_key(|d| (d.orig_day, d.orig_pos));
        let client = SmtpClient::new("outside.example");
        for d in queue {
            let mut pipe = FaultyPipe::seeded(
                faults,
                day_seeds
                    .child("defer")
                    .index(u64::from(d.orig_day))
                    .index(d.orig_pos)
                    .seed(),
            );
            let mut server = SmtpServer::new("mx.corp.example");
            let rcpt = &ctx.cfg.users[d.user];
            let env = Envelope::to_one("sender@outside.example", rcpt.clone(), d.email.clone());
            let report = client.deliver_all(&mut pipe, &mut server, std::slice::from_ref(&env));
            tally.fault_stats.absorb(pipe.stats());
            let mut got = None;
            for ev in server.take_events() {
                if let ServerEvent::MessageAccepted(msg) = ev {
                    got = Some(msg);
                }
            }
            match (report.delivered, got) {
                (1, Some(msg)) => {
                    tally.accepted += 1;
                    // A recipient who lost their mailbox since the original
                    // attempt bounces terminally — same as a first attempt.
                    if ctx.cfg.fault_plan.mailbox_lost(d.user, day, ctx.cfg.retrain_every) {
                        tally.bounced += 1;
                        continue;
                    }
                    let Some(mbox) = self.mailboxes.get_mut(rcpt) else {
                        tally.bounced += 1;
                        continue;
                    };
                    let verdict = ctx.filter.classify(&msg.email);
                    tally.record_verdict(d.truth, verdict);
                    mbox.deliver(msg.email.clone(), d.truth, verdict, day);
                    tally.costs_box.deliver(msg.email.clone(), d.truth, verdict, day);
                    tally.delivered += 1;
                    tally.redelivered += 1;
                    self.fresh.push(FreshMail {
                        day: d.orig_day,
                        pos: d.orig_pos,
                        user: d.user,
                        mail: LabeledEmail::new(msg.email, d.truth),
                    });
                }
                _ => {
                    let attempts = d.attempts + 1;
                    if attempts >= ctx.cfg.fault_plan.redelivery_budget {
                        tally.failed += 1;
                    } else {
                        self.deferred.push(DeferredMail { attempts, ..d });
                    }
                }
            }
        }
    }
}

/// An opaque, cloneable snapshot of a [`MailOrg`] at a week boundary —
/// enough to [`MailOrg::restore`] a fresh organization that continues the
/// simulation **bit-identically** to the uninterrupted run
/// (property-tested in `tests/prop_mailflow.rs`).
///
/// Valid only at week boundaries ([`MailOrg::step_week`] granularity):
/// mid-period shard state (fresh pools) is deliberately not captured. The
/// filter travels as a `persist` dump image plus its θ0/θ1 cutoffs, which
/// reproduces classification exactly (counts are exact `u32`s and token
/// scoring tie-breaks by resolved string, so interner state is
/// irrelevant).
#[derive(Clone, Serialize, Deserialize)]
pub struct OrgCheckpoint {
    next_week: u32,
    weeks: Vec<WeekReport>,
    total_delivered: usize,
    total_failed: usize,
    total_bounced: usize,
    total_redelivered: usize,
    fault_stats: FaultStats,
    filter_image: Vec<u8>,
    filter_cutoffs: (f64, f64),
    serving_stale: bool,
    checkpoint_image: Vec<u8>,
    checkpoint_cutoffs: (f64, f64),
    pool: Dataset,
    replay: Vec<FreshMail>,
    /// `(user index, mailbox)` — only users that still have one.
    mailboxes: Vec<(usize, Mailbox)>,
    /// Canonically ordered by `(orig_day, orig_pos)`.
    deferred: Vec<DeferredMail>,
}

/// What one week's retrain did, for the week report.
#[derive(Default)]
struct RetrainOutcome {
    screened_out: usize,
    screen_error: Option<String>,
    quarantined: usize,
    replayed: usize,
    recovered: bool,
}

/// The running organization.
pub struct MailOrg {
    cfg: OrgConfig,
    seeds: SeedTree,
    generator: EmailGenerator,
    tokenizer: Tokenizer,
    filter: ActiveFilter,
    /// Trusted bootstrap messages (never contaminated; RONI's yardstick).
    bootstrap: Dataset,
    /// Screened, training-eligible pool (starts as the bootstrap).
    pool: Dataset,
    /// Interned token sets parallel to `pool`: tokenize once on admission,
    /// retrain by id every week thereafter.
    pool_ids: Vec<Arc<Vec<TokenId>>>,
    interner: Interner,
    /// Worker shards owning disjoint round-robin slices of the users.
    shards: Vec<Shard>,
    /// Effective per-user daily rates ([`OrgConfig::per_user_rates`]).
    rates: Vec<TrafficMix>,
    /// Corpus counters consumed by the bootstrap (day traffic starts
    /// here).
    ham0: u64,
    spam0: u64,
    /// The next week [`MailOrg::step_week`] will simulate (1-based).
    next_week: u32,
    /// Weeks completed so far.
    weeks: Vec<WeekReport>,
    total_delivered: usize,
    total_failed: usize,
    total_bounced: usize,
    total_redelivered: usize,
    fault_stats: FaultStats,
    /// Quarantined fresh entries awaiting replay at the next retrain.
    replay: Vec<FreshMail>,
    /// The active filter is a restored checkpoint, not this week's
    /// retrain product.
    serving_stale: bool,
    /// Last-good model image (`persist` dump) + its θ0/θ1 cutoffs.
    checkpoint_image: Vec<u8>,
    checkpoint_cutoffs: (f64, f64),
}

impl MailOrg {
    /// Bootstrap an organization: generate the clean training set, train
    /// the initial filter, and partition users across shards. Panics on an
    /// invalid configuration; [`MailOrg::try_new`] returns the typed error
    /// instead.
    pub fn new(cfg: OrgConfig) -> Self {
        // sb-lint: allow(panic-path, "documented panicking constructor; fault/recovery code uses try_new, the typed-error path")
        Self::try_new(cfg).unwrap_or_else(|e| panic!("invalid OrgConfig: {e}"))
    }

    /// Fallible construction: [`OrgConfig::validate`] then bootstrap.
    pub fn try_new(cfg: OrgConfig) -> Result<Self, OrgConfigError> {
        cfg.validate()?;
        let rates = cfg.per_user_rates();
        let seeds = SeedTree::new(cfg.seed).child("mailorg");
        let generator = cfg.corpus_generator();

        // Clean bootstrap pool, half ham half spam, generated off-wire (the
        // organization's historical mail archive).
        let mut bootstrap = Dataset::new();
        let n_ham = cfg.bootstrap_size / 2;
        let mut ham_counter = 0u64;
        let mut spam_counter = 0u64;
        for _ in 0..n_ham {
            bootstrap.push(LabeledEmail::ham(generator.ham(ham_counter)));
            ham_counter += 1;
        }
        for _ in 0..(cfg.bootstrap_size - n_ham) {
            bootstrap.push(LabeledEmail::spam(generator.spam(spam_counter)));
            spam_counter += 1;
        }
        debug_assert_eq!(
            (ham_counter, spam_counter),
            cfg.bootstrap_counters(),
            "campaign_env's counter derivation must match the bootstrap"
        );

        let tokenizer = Tokenizer::new();
        let interner = Interner::global();
        let mut filter = SpamBayes::new();
        let mut pool_ids: Vec<Arc<Vec<TokenId>>> = Vec::with_capacity(bootstrap.len());
        for m in bootstrap.emails() {
            let ids = Arc::new(interner.intern_set(&tokenizer.token_set(&m.email)));
            filter.train_ids(&ids, m.label, 1);
            pool_ids.push(ids);
        }

        let n_shards = if cfg.shards == 0 {
            par::default_threads()
        } else {
            cfg.shards
        }
        .clamp(1, cfg.users.len());
        let shards: Vec<Shard> = (0..n_shards)
            .map(|id| {
                let mailboxes: FxHashMap<String, Mailbox> = cfg
                    .users
                    .iter()
                    .enumerate()
                    .filter(|(u, _)| u % n_shards == id)
                    .map(|(_, name)| (name.clone(), Mailbox::new()))
                    .collect();
                Shard {
                    id,
                    mailboxes,
                    fresh: Vec::new(),
                    deferred: Vec::new(),
                }
            })
            .collect();

        let mut pool = Dataset::new();
        pool.extend_from(&bootstrap);

        let filter = ActiveFilter::Plain(filter);
        // The initial last-good checkpoint is the bootstrap-trained model:
        // even a retrain failure in week 1 has something to fall back to.
        let (checkpoint_image, checkpoint_cutoffs) = filter_image(&filter);
        Ok(Self {
            cfg,
            seeds,
            generator,
            tokenizer,
            filter,
            bootstrap,
            pool,
            pool_ids,
            interner,
            shards,
            rates,
            ham0: ham_counter,
            spam0: spam_counter,
            next_week: 1,
            weeks: Vec::new(),
            total_delivered: 0,
            total_failed: 0,
            total_bounced: 0,
            total_redelivered: 0,
            fault_stats: FaultStats::default(),
            replay: Vec::new(),
            serving_stale: false,
            checkpoint_image,
            checkpoint_cutoffs,
        })
    }

    /// A user's mailbox (owned by whichever shard holds the user).
    pub fn mailbox(&self, user: &str) -> Option<&Mailbox> {
        self.shards.iter().find_map(|s| s.mailboxes.get(user))
    }

    /// Fault injection: drop `user`'s mailbox from whichever shard owns it
    /// (a stale routing table). Accepted mail for the user then bounces
    /// into the week stats ([`WeekReport::bounced`]) instead of being
    /// classified or pooled — the simulation must degrade, never panic.
    /// Returns whether a mailbox was removed.
    pub fn remove_mailbox(&mut self, user: &str) -> bool {
        self.shards
            .iter_mut()
            .any(|s| s.mailboxes.remove(user).is_some())
    }

    /// The number of worker shards the users are partitioned across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Run the full simulation.
    pub fn run(mut self) -> OrgReport {
        while self.step_week().is_some() {}
        self.into_report()
    }

    /// Simulate one retrain period (days, then the retrain barrier) and
    /// return its report, or `None` when every week has run. The unit of
    /// incremental execution — and the boundary [`MailOrg::checkpoint`] is
    /// valid at.
    pub fn step_week(&mut self) -> Option<&WeekReport> {
        let n_weeks = self.cfg.days.div_ceil(self.cfg.retrain_every);
        if self.next_week > n_weeks {
            return None;
        }
        let week = self.next_week;
        self.next_week += 1;
        // Whether *this* week was served by a stale checkpoint model is
        // decided by the previous retrain, before any of this week's mail.
        let degraded = self.serving_stale;
        let first_day = (week - 1) * self.cfg.retrain_every + 1;
        let last_day = (week * self.cfg.retrain_every).min(self.cfg.days);
        let tally = self.simulate_days(first_day, last_day);

        self.total_delivered += tally.delivered;
        self.total_failed += tally.failed;
        self.total_bounced += tally.bounced;
        self.total_redelivered += tally.redelivered;
        self.fault_stats.absorb(tally.fault_stats);

        // Retrain at week end (§2.1: periodic retraining) on the
        // stable-order merge of the shards' fresh pools.
        let outcome = self.retrain(week, first_day, last_day);
        let deferred = self.shards.iter().map(|s| s.deferred.len()).sum();

        // Reports merge into the run in canonical week order: week w is
        // always the (w)th entry, whatever shard count produced it.
        debug_assert_eq!(
            week as usize,
            self.weeks.len() + 1,
            "week reports must append in canonical week order"
        );
        let user = UserModel::default();
        self.weeks.push(WeekReport {
            week,
            offered: tally.offered,
            accepted: tally.accepted,
            bounced: tally.bounced,
            ham_as_spam: rate(tally.ham_as_spam, tally.n_ham),
            ham_misrouted: rate(tally.ham_as_spam + tally.ham_as_unsure, tally.n_ham),
            spam_caught: rate(tally.spam_as_spam, tally.n_spam),
            spam_as_unsure: rate(tally.spam_as_unsure, tally.n_spam),
            screened_out: outcome.screened_out,
            screen_error: outcome.screen_error,
            costs: user.costs(&tally.costs_box),
            filter_useless: user.filter_useless(&tally.costs_box, 0.2),
            deferred,
            redelivered: tally.redelivered,
            quarantined: outcome.quarantined,
            replayed: outcome.replayed,
            degraded,
            recovered_from_checkpoint: outcome.recovered,
            fault_stats: tally.fault_stats,
        });
        self.weeks.last()
    }

    /// Finish into the full report. Mail still deferred when the
    /// simulation ends is accounted as [`OrgReport::total_deferred`], so
    /// `delivered + failed + bounced + deferred` equals every message ever
    /// offered — nothing is silently lost.
    pub fn into_report(self) -> OrgReport {
        OrgReport {
            weeks: self.weeks,
            fault_stats: self.fault_stats,
            total_delivered: self.total_delivered,
            total_failed: self.total_failed,
            total_bounced: self.total_bounced,
            total_deferred: self.shards.iter().map(|s| s.deferred.len()).sum(),
            total_redelivered: self.total_redelivered,
        }
    }

    /// Snapshot the organization at the current week boundary. Restoring
    /// the checkpoint into a freshly built org with the same configuration
    /// ([`MailOrg::restore`]) continues bit-identically to never having
    /// stopped.
    pub fn checkpoint(&self) -> OrgCheckpoint {
        debug_assert!(
            self.shards.iter().all(|s| s.fresh.is_empty()),
            "checkpoints are valid only at week boundaries"
        );
        let (filter_image, filter_cutoffs) = filter_image(&self.filter);
        let mailboxes: Vec<(usize, Mailbox)> = self
            .cfg
            .users
            .iter()
            .enumerate()
            .filter_map(|(u, name)| self.mailbox(name).map(|m| (u, m.clone())))
            .collect();
        let mut deferred: Vec<DeferredMail> = self
            .shards
            .iter()
            .flat_map(|s| s.deferred.iter().cloned())
            .collect();
        deferred.sort_unstable_by_key(|d| (d.orig_day, d.orig_pos));
        let mut replay = self.replay.clone();
        replay.sort_unstable_by_key(|f| (f.day, f.pos));
        OrgCheckpoint {
            next_week: self.next_week,
            weeks: self.weeks.clone(),
            total_delivered: self.total_delivered,
            total_failed: self.total_failed,
            total_bounced: self.total_bounced,
            total_redelivered: self.total_redelivered,
            fault_stats: self.fault_stats,
            filter_image,
            filter_cutoffs,
            serving_stale: self.serving_stale,
            checkpoint_image: self.checkpoint_image.clone(),
            checkpoint_cutoffs: self.checkpoint_cutoffs,
            pool: self.pool.clone(),
            replay,
            mailboxes,
            deferred,
        }
    }

    /// Rebuild an organization from a configuration plus a checkpoint
    /// taken from an identically-configured run (any shard count — the
    /// checkpoint is keyed by user, never by shard). The continued run is
    /// bit-identical to the uninterrupted one.
    pub fn restore(cfg: OrgConfig, ckpt: &OrgCheckpoint) -> Result<Self, OrgConfigError> {
        let mut org = Self::try_new(cfg)?;
        // Fail closed on a checkpoint from a different organization: a
        // recovery path must return the mismatch, not abort mid-restore.
        let users = org.cfg.users.len();
        if let Some(bad) = ckpt
            .mailboxes
            .iter()
            .map(|(u, _)| *u)
            .chain(ckpt.deferred.iter().map(|d| d.user))
            .find(|&u| u >= users)
        {
            return Err(OrgConfigError::CheckpointMismatch { user: bad, users });
        }
        org.next_week = ckpt.next_week;
        org.weeks = ckpt.weeks.clone();
        org.total_delivered = ckpt.total_delivered;
        org.total_failed = ckpt.total_failed;
        org.total_bounced = ckpt.total_bounced;
        org.total_redelivered = ckpt.total_redelivered;
        org.fault_stats = ckpt.fault_stats;
        org.filter = filter_from(&ckpt.filter_image, ckpt.filter_cutoffs);
        org.serving_stale = ckpt.serving_stale;
        org.checkpoint_image = ckpt.checkpoint_image.clone();
        org.checkpoint_cutoffs = ckpt.checkpoint_cutoffs;
        org.replay = ckpt.replay.clone();
        // Pool ids are recomputed by re-tokenizing: the interner is shared
        // process-global state, so the id *values* may differ from the
        // original run's, but training and scoring only ever depend on the
        // resolved token strings.
        org.pool = ckpt.pool.clone();
        org.pool_ids = org
            .pool
            .emails()
            .iter()
            .map(|m| Arc::new(org.interner.intern_set(&org.tokenizer.token_set(&m.email))))
            .collect();
        // Redistribute user-keyed state over this run's shard layout.
        let n = org.shards.len();
        for shard in &mut org.shards {
            shard.mailboxes.clear();
            shard.fresh.clear();
            shard.deferred.clear();
        }
        for (u, mbox) in &ckpt.mailboxes {
            // sb-lint: allow(panic-path, "user indices validated against cfg.users on entry (CheckpointMismatch)")
            let name = org.cfg.users[*u].clone();
            // sb-lint: allow(panic-path, "`% n` keeps the shard index in bounds; try_new guarantees n >= 1")
            org.shards[*u % n].mailboxes.insert(name, mbox.clone());
        }
        for d in &ckpt.deferred {
            // sb-lint: allow(panic-path, "`% n` keeps the shard index in bounds; try_new guarantees n >= 1")
            org.shards[d.user % n].deferred.push(d.clone());
        }
        Ok(org)
    }

    /// Run days `first..=last` across all shards in parallel and merge the
    /// per-shard tallies. Each shard sees every day in the range but
    /// delivers only its own users' wire positions.
    fn simulate_days(&mut self, first_day: u32, last_day: u32) -> WeekTally {
        let attack_batches = attack_batches_for(&self.cfg, &self.seeds, first_day, last_day);
        let ctx = DayCtx {
            cfg: &self.cfg,
            seeds: &self.seeds,
            generator: &self.generator,
            filter: &self.filter,
            rates: &self.rates,
            total_ham: self.rates.iter().map(|r| r.ham_per_day).sum(),
            total_spam: self.rates.iter().map(|r| r.spam_per_day).sum(),
            ham0: self.ham0,
            spam0: self.spam0,
            n_shards: self.shards.len(),
            first_day,
            attack_batches: &attack_batches,
        };
        let threads = par::default_threads().min(self.shards.len());
        let tallies = par::parallel_map_mut(&mut self.shards, threads, |_, shard| {
            let mut tally = WeekTally::default();
            for day in first_day..=last_day {
                shard.run_day(&ctx, day, &mut tally);
            }
            tally
        });
        // `parallel_map_mut` returns one tally per shard, positionally, so
        // this absorb runs in canonical shard-index order (every WeekTally
        // field is an order-independent sum, but the canonical order is
        // what the FaultStats/report merge's shard-invariance is stated
        // against — assert the positional contract held).
        debug_assert_eq!(
            tallies.len(),
            self.shards.len(),
            "week-tally merge: expected one tally per shard, in shard-index order"
        );
        let mut total = WeekTally::default();
        for t in tallies {
            total.absorb(t);
        }
        total
    }

    /// Retrain from the pool, applying the configured defense and the
    /// fault plan's retrain-time events. Reports what the screen rejected,
    /// what a crash quarantined, what a recovery replayed, and whether the
    /// week fell back to the last-good checkpoint.
    fn retrain(&mut self, week: u32, first_day: u32, last_day: u32) -> RetrainOutcome {
        let week_seeds = self.seeds.child("retrain").index(u64::from(week));
        // The merge barrier: per-shard fresh pools combine into the
        // canonical (day, wire position) arrival order — the same order
        // the single-shard loop pools in.
        let mut fresh = merge_fresh(
            self.shards
                .iter_mut()
                .map(|s| std::mem::take(&mut s.fresh))
                .collect(),
        );
        let mut outcome = RetrainOutcome::default();

        // A crashed mailstore node loses its in-memory journal for the
        // period so far: the crashed *user's* entries up to the crash day
        // are quarantined and replay into the next retrain once the node
        // restores. Keyed by user, never shard — shard ids change with the
        // shard count.
        let crashes = self.cfg.fault_plan.crashes_in(first_day, last_day);
        let mut held = Vec::new();
        if !crashes.is_empty() {
            let (h, kept): (Vec<FreshMail>, Vec<FreshMail>) = fresh.into_iter().partition(|f| {
                crashes
                    .iter()
                    .any(|&(user, crash_day)| f.user == user && f.day <= crash_day)
            });
            outcome.quarantined += h.len();
            held = h;
            fresh = kept;
        }

        // Injected retrain failure: the job dies before admitting
        // anything. The whole fresh batch is quarantined for replay (mail
        // trains late, never silently vanishes) and the organization
        // serves the last-good checkpoint — a stale-model week, not a
        // fail-closed one.
        if self.cfg.fault_plan.retrain_fails(week) {
            outcome.quarantined += fresh.len();
            self.replay.extend(held);
            self.replay.extend(fresh);
            self.replay.sort_unstable_by_key(|f| (f.day, f.pos));
            self.filter = filter_from(&self.checkpoint_image, self.checkpoint_cutoffs);
            self.serving_stale = true;
            outcome.recovered = true;
            return outcome;
        }

        // Quarantined entries from earlier failures rejoin this retrain's
        // batch in canonical arrival order; this period's crash holdback
        // sits out until the *next* retrain (the node is still down).
        if !self.replay.is_empty() {
            let replay = std::mem::take(&mut self.replay);
            outcome.replayed = replay.len();
            fresh.extend(replay);
            fresh.sort_unstable_by_key(|f| (f.day, f.pos));
        }
        self.replay = held;
        // The retrain consumes arrivals in canonical (day, wire position)
        // order — strictly increasing even after the quarantine partition
        // and replay re-merge (a replayed slot can never collide with a
        // live one: each wire slot pools exactly once).
        debug_assert!(
            fresh.windows(2).all(|w| (w[0].day, w[0].pos) < (w[1].day, w[1].pos)),
            "retrain input not in canonical (day, wire position) order after replay merge"
        );

        let mut screened_out = 0usize;
        let mut screen_error = None;

        // Phase 1: admission control on the fresh messages. Each fresh
        // message is tokenized + interned exactly once here; the id set
        // drives screening now and every retrain afterwards.
        let fresh_ids: Vec<Arc<Vec<TokenId>>> = fresh
            .iter()
            .map(|f| {
                Arc::new(
                    self.interner
                        .intern_set(&self.tokenizer.token_set(&f.mail.email)),
                )
            })
            .collect();
        match self.cfg.defense {
            DefensePolicy::Roni | DefensePolicy::RoniPlusThreshold => {
                let mut rng = week_seeds.child("roni").rng();
                #[allow(unused_mut)] // the legacy path below measures by &mut
                let mut roni = RoniDefense::new(
                    RoniConfig::default(),
                    &self.bootstrap,
                    FilterOptions::default(),
                    &mut rng,
                );
                // Both measurement paths share one Result surface, so the
                // retrain loop is path-agnostic: a screening failure fails
                // closed — the week's mail stays out of the pool and the
                // error lands in the report. The default is the parallel
                // overlay sweep over the merged week's arrivals (read-only;
                // the shared trial filters are never mutated); the
                // `train-untrain` feature swaps in the legacy reference
                // loop, whose inexact untrain is the one real error source.
                #[cfg(not(feature = "train-untrain"))]
                let screened = roni.try_screen_ids(&fresh_ids);
                #[cfg(feature = "train-untrain")]
                let screened = roni.try_screen_ids_train_untrain(&fresh_ids);
                match screened {
                    Ok((kept, rejected)) => {
                        screened_out += rejected.len();
                        let mut admit = vec![false; fresh.len()];
                        for i in kept {
                            admit[i] = true;
                        }
                        for ((f, ids), ok) in fresh.into_iter().zip(fresh_ids).zip(admit) {
                            if ok {
                                self.pool.push(f.mail);
                                self.pool_ids.push(ids);
                            }
                        }
                    }
                    Err(e) => {
                        screen_error = Some(e.to_string());
                    }
                }
            }
            _ => {
                for (f, ids) in fresh.into_iter().zip(fresh_ids) {
                    self.pool.push(f.mail);
                    self.pool_ids.push(ids);
                }
            }
        }

        // Phase 2: rebuild the filter from the (screened) pool.
        let wants_threshold = matches!(
            self.cfg.defense,
            DefensePolicy::DynamicThreshold { .. } | DefensePolicy::RoniPlusThreshold
        );
        self.filter = if wants_threshold && self.pool.len() >= 4 {
            let items: Vec<TrainItem> = self
                .pool
                .emails()
                .iter()
                .zip(&self.pool_ids)
                .map(|(m, ids)| TrainItem::from_ids(Arc::clone(ids), m.label))
                .collect();
            // RoniPlusThreshold uses the loose (g = 0.10) variant: RONI has
            // already removed the gross outliers, so the milder threshold
            // costs less spam-as-unsure.
            let cfg = if matches!(self.cfg.defense, DefensePolicy::DynamicThreshold { strict: true })
            {
                ThresholdConfig::strict()
            } else {
                ThresholdConfig::loose()
            };
            let mut rng = week_seeds.child("calibrate").rng();
            ActiveFilter::Calibrated(calibrate(&items, cfg, FilterOptions::default(), &mut rng))
        } else {
            let mut f = SpamBayes::new();
            for (m, ids) in self.pool.emails().iter().zip(&self.pool_ids) {
                f.train_ids(ids, m.label, 1);
            }
            ActiveFilter::Plain(f)
        };
        outcome.screened_out = screened_out;
        outcome.screen_error = screen_error;

        // Model-load corruption: the retrain itself succeeded (the pool
        // keeps this week's admissions), but the freshly built image is
        // corrupt at load time — fall back to the last-good checkpoint
        // until the next retrain rebuilds from the intact pool.
        if self.cfg.fault_plan.model_corrupts(week) {
            self.filter = filter_from(&self.checkpoint_image, self.checkpoint_cutoffs);
            self.serving_stale = true;
            outcome.recovered = true;
        } else {
            let (image, cutoffs) = filter_image(&self.filter);
            self.checkpoint_image = image;
            self.checkpoint_cutoffs = cutoffs;
            self.serving_stale = false;
        }
        outcome
    }
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Fisher–Yates with our own RNG (keeps `rand` out of the non-dev deps).
/// Index draws use [`sb_stats::rng::Xoshiro256pp::next_below`] — Lemire
/// rejection sampling on the full `u64` stream — because the previous
/// `next() as usize % (i + 1)` fold was modulo-biased and truncated the
/// draw to 32 bits on 32-bit targets.
fn shuffle<T>(items: &mut [T], rng: &mut sb_stats::rng::Xoshiro256pp) {
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultplan::FaultEvent;
    use sb_core::{DictionaryAttack, DictionaryKind};

    fn expect_err(result: Result<MailOrg, OrgConfigError>) -> OrgConfigError {
        match result {
            Ok(_) => panic!("config should have been rejected"),
            Err(e) => e,
        }
    }

    fn base_config(seed: u64) -> OrgConfig {
        let mut cfg = OrgConfig::small(seed);
        // Keep unit-test scale small; integration tests run bigger.
        cfg.days = 14;
        cfg.bootstrap_size = 200;
        cfg.corpus = CorpusConfig::with_size(200, 0.5);
        cfg.traffic = TrafficMix {
            ham_per_day: 10,
            spam_per_day: 10,
        };
        cfg
    }

    fn usenet_plan(start_day: u32, per_day: u32) -> AttackPlan {
        AttackPlan::new(
            start_day,
            per_day,
            Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(2_000))),
        )
    }

    fn with_attack(mut cfg: OrgConfig, per_day: u32) -> OrgConfig {
        cfg.attacks = vec![usenet_plan(1, per_day)];
        cfg
    }

    #[test]
    fn clean_run_keeps_filter_usable() {
        let report = MailOrg::new(base_config(1)).run();
        assert_eq!(report.weeks.len(), 2);
        for w in &report.weeks {
            assert!(
                w.ham_misrouted < 0.2,
                "week {} misroutes {}",
                w.week,
                w.ham_misrouted
            );
            assert!(!w.filter_useless);
            assert!(w.spam_caught > 0.5, "week {} catches {}", w.week, w.spam_caught);
            assert_eq!(w.bounced, 0);
            assert!(w.screen_error.is_none());
        }
        assert_eq!(report.total_failed, 0);
        assert_eq!(report.total_bounced, 0);
    }

    #[test]
    fn attack_detonates_at_first_retrain() {
        let report = MailOrg::new(with_attack(base_config(2), 8)).run();
        // Week 1: filter still clean (attack mail only sits in the pool).
        // Week 2: the retrained filter is poisoned.
        let w1 = &report.weeks[0];
        let w2 = &report.weeks[1];
        assert!(
            w2.ham_misrouted > w1.ham_misrouted + 0.2,
            "no detonation: week1 {} week2 {}",
            w1.ham_misrouted,
            w2.ham_misrouted
        );
        assert!(w2.filter_useless, "poisoned filter should be useless");
    }

    #[test]
    fn roni_defense_blocks_the_campaign() {
        let undefended = MailOrg::new(with_attack(base_config(3), 8)).run();
        let mut cfg = with_attack(base_config(3), 8);
        cfg.defense = DefensePolicy::Roni;
        let defended = MailOrg::new(cfg).run();
        let w2u = &undefended.weeks[1];
        let w2d = &defended.weeks[1];
        assert!(
            w2d.ham_misrouted < w2u.ham_misrouted / 2.0,
            "RONI ineffective: defended {} vs undefended {}",
            w2d.ham_misrouted,
            w2u.ham_misrouted
        );
        // Both retrains see attack mail in their fresh pools (the campaign
        // runs all 14 days), so both weeks screen some out.
        assert!(
            defended.weeks[0].screened_out > 0,
            "RONI should have screened attack mail at week 1's retrain"
        );
        assert!(
            defended.weeks[1].screened_out > 0,
            "RONI should keep screening at week 2's retrain"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = MailOrg::new(with_attack(base_config(7), 4)).run();
        let b = MailOrg::new(with_attack(base_config(7), 4)).run();
        for (wa, wb) in a.weeks.iter().zip(&b.weeks) {
            assert_eq!(wa.ham_misrouted, wb.ham_misrouted);
            assert_eq!(wa.screened_out, wb.screened_out);
        }
    }

    #[test]
    fn sharded_run_matches_single_shard_bitwise() {
        let runs: Vec<OrgReport> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let mut cfg = with_attack(base_config(21), 6);
                cfg.defense = DefensePolicy::Roni;
                cfg.shards = shards;
                MailOrg::new(cfg).run()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(
                &runs[0], other,
                "weekly reports must be bit-identical across shard counts"
            );
        }
    }

    #[test]
    fn shard_count_clamps_and_auto_selects() {
        let mut cfg = base_config(5);
        cfg.shards = 64; // more shards than users: clamped to user count
        let org = MailOrg::new(cfg);
        assert_eq!(org.shard_count(), 5);
        let mut cfg = base_config(5);
        cfg.shards = 0; // auto: at least one shard, never more than users
        let org = MailOrg::new(cfg);
        assert!((1..=5).contains(&org.shard_count()));
    }

    #[test]
    fn faulty_wire_degrades_gracefully() {
        let mut cfg = base_config(11);
        cfg.faults = FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
        };
        let report = MailOrg::new(cfg).run();
        // Deliveries mostly succeed; any failures are accounted — retried
        // via the deferred queue, then failed or left deferred, never lost.
        let offered: usize = report.weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            report.total_delivered
                + report.total_failed
                + report.total_bounced
                + report.total_deferred,
            offered,
            "accounting must balance"
        );
        assert!(report.fault_stats.dropped + report.fault_stats.corrupted > 0);
        assert!(report.total_delivered as f64 / offered as f64 > 0.9);
    }

    /// The satellite accounting-identity gate: under `FaultConfig::harsh()`
    /// every offered message is delivered, failed, bounced, or still
    /// deferred — at every shard count, with bit-identical reports, and
    /// with the deferred queue actually redelivering some of what the
    /// first attempts lost.
    #[test]
    fn accounting_identity_holds_under_harsh_faults_across_shards() {
        let runs: Vec<OrgReport> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let mut cfg = base_config(43);
                cfg.faults = FaultConfig::harsh();
                cfg.shards = shards;
                MailOrg::new(cfg).run()
            })
            .collect();
        let baseline = &runs[0];
        let offered: usize = baseline.weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            baseline.total_delivered
                + baseline.total_failed
                + baseline.total_bounced
                + baseline.total_deferred,
            offered,
            "no message may be silently lost"
        );
        assert!(
            baseline.total_redelivered > 0,
            "a harsh wire must exercise the deferred queue"
        );
        let weekly_redelivered: usize = baseline.weeks.iter().map(|w| w.redelivered).sum();
        assert_eq!(weekly_redelivered, baseline.total_redelivered);
        assert_eq!(
            baseline.total_deferred,
            baseline.weeks.last().unwrap().deferred,
            "end-of-run deferral is the last week's carry-over"
        );
        for other in &runs[1..] {
            assert_eq!(baseline, other, "deferral must be shard-invariant");
        }
    }

    /// An injected retrain failure quarantines the week's fresh mail and
    /// serves the last-good checkpoint: the failure week reports the
    /// recovery, the following week is degraded (stale model) and replays
    /// the quarantined batch, and the filter keeps classifying throughout.
    #[test]
    fn retrain_failure_serves_stale_checkpoint_and_replays() {
        let mut cfg = base_config(47);
        cfg.fault_plan.events = vec![FaultEvent::RetrainFailure { week: 1 }];
        let report = MailOrg::new(cfg).run();
        let w1 = &report.weeks[0];
        let w2 = &report.weeks[1];
        assert!(w1.recovered_from_checkpoint, "week 1 must fall back");
        assert!(!w1.degraded, "week 1 itself ran on the bootstrap model");
        assert!(w1.quarantined > 0, "the fresh batch must be quarantined");
        assert_eq!(w1.screened_out, 0, "a dead retrain screens nothing");
        assert!(w2.degraded, "week 2 serves the stale checkpoint");
        assert_eq!(
            w2.replayed, w1.quarantined,
            "week 2's retrain replays exactly the quarantined batch"
        );
        assert!(!w2.recovered_from_checkpoint);
        assert!(
            w2.spam_caught > 0.5,
            "the stale bootstrap model still filters: {}",
            w2.spam_caught
        );
        // A clean comparison run: identical week-1 traffic (the plan only
        // touches the retrain), so degradation is purely model staleness.
        let clean = MailOrg::new(base_config(47)).run();
        assert_eq!(clean.weeks[0].offered, report.weeks[0].offered);
        assert!(!clean.weeks[1].degraded);
    }

    /// Model-load corruption keeps the pool's admissions but serves the
    /// checkpoint model: nothing is quarantined, the week reports the
    /// recovery, the next week is degraded.
    #[test]
    fn model_corruption_falls_back_without_losing_the_pool() {
        let mut cfg = base_config(53);
        cfg.fault_plan.events = vec![FaultEvent::ModelCorruption { week: 1 }];
        let report = MailOrg::new(cfg).run();
        let w1 = &report.weeks[0];
        let w2 = &report.weeks[1];
        assert!(w1.recovered_from_checkpoint);
        assert_eq!(w1.quarantined, 0, "the retrain itself succeeded");
        assert!(w2.degraded);
        assert_eq!(w2.replayed, 0, "nothing was held back");
    }

    /// A scheduled mailbox loss bounces the user's mail from the loss day
    /// to the end of the retrain period, then the routing table is
    /// rebuilt: week 1 bounces, week 2 is clean again.
    #[test]
    fn mailbox_loss_bounces_until_the_period_boundary() {
        let mut cfg = base_config(59);
        cfg.fault_plan.events = vec![FaultEvent::MailboxLoss { day: 3, user: 0 }];
        let report = MailOrg::new(cfg).run();
        assert!(report.weeks[0].bounced > 0, "loss window must bounce");
        assert_eq!(report.weeks[1].bounced, 0, "restored at the boundary");
        let offered: usize = report.weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            report.total_delivered
                + report.total_failed
                + report.total_bounced
                + report.total_deferred,
            offered
        );
    }

    /// A mid-period node crash quarantines the crashed user's fresh pool
    /// entries up to the crash day and replays them at the next retrain —
    /// the mail trains a week late instead of vanishing.
    #[test]
    fn shard_crash_quarantines_and_replays_by_user() {
        let mut cfg = base_config(61);
        cfg.fault_plan.events = vec![FaultEvent::ShardCrash { day: 4, user: 2 }];
        let report = MailOrg::new(cfg).run();
        let w1 = &report.weeks[0];
        let w2 = &report.weeks[1];
        assert!(w1.quarantined > 0, "crash must hold back pool entries");
        assert_eq!(w2.replayed, w1.quarantined);
        assert!(!w1.recovered_from_checkpoint, "a node crash is not a model failure");
        assert!(!w2.degraded);
        // Quarantine holds back one user's slice, never the whole pool.
        assert!(w1.quarantined < w1.offered, "{}", w1.quarantined);
    }

    /// The fault-plan events are all keyed by user/day/week, so a chaotic
    /// plan (ramp + crash + mailbox loss + retrain failure) stays
    /// bit-identical across shard counts.
    #[test]
    fn chaotic_plan_is_bit_identical_across_shard_counts() {
        let runs: Vec<OrgReport> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let mut cfg = base_config(67);
                cfg.faults = FaultConfig {
                    drop_chance: 0.02,
                    corrupt_chance: 0.02,
                };
                cfg.fault_plan.events = vec![
                    FaultEvent::PipeFaults {
                        start_day: 3,
                        end_day: 8,
                        from: FaultConfig { drop_chance: 0.1, corrupt_chance: 0.05 },
                        to: FaultConfig { drop_chance: 0.35, corrupt_chance: 0.05 },
                    },
                    FaultEvent::ShardCrash { day: 4, user: 1 },
                    FaultEvent::MailboxLoss { day: 6, user: 3 },
                    FaultEvent::RetrainFailure { week: 1 },
                ];
                cfg.shards = shards;
                MailOrg::new(cfg).run()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(&runs[0], other);
        }
        let offered: usize = runs[0].weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            runs[0].total_delivered
                + runs[0].total_failed
                + runs[0].total_bounced
                + runs[0].total_deferred,
            offered
        );
    }

    /// `try_new` rejects invalid configurations with typed errors instead
    /// of panicking.
    #[test]
    fn try_new_rejects_bad_configs_with_typed_errors() {
        let mut cfg = base_config(71);
        cfg.faults.drop_chance = 2.0;
        assert!(matches!(
            expect_err(MailOrg::try_new(cfg)),
            OrgConfigError::BaseFaults(FaultError::ChanceOutOfRange { .. })
        ));
        let mut cfg = base_config(71);
        cfg.fault_plan.events = vec![FaultEvent::ShardCrash { day: 2, user: 99 }];
        assert!(matches!(
            expect_err(MailOrg::try_new(cfg)),
            OrgConfigError::Plan(FaultPlanError::UserOutOfRange { .. })
        ));
        let mut cfg = base_config(71);
        cfg.users.clear();
        assert_eq!(expect_err(MailOrg::try_new(cfg)), OrgConfigError::NoUsers);
        let mut cfg = base_config(71);
        cfg.retrain_every = 0;
        assert_eq!(expect_err(MailOrg::try_new(cfg)), OrgConfigError::ZeroRetrain);
    }

    /// Checkpoint/restore at a week boundary continues bit-identically —
    /// including under an active fault plan with deferred mail in flight.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let make = || {
            let mut cfg = base_config(73);
            cfg.faults = FaultConfig::harsh();
            cfg.fault_plan.events = vec![FaultEvent::RetrainFailure { week: 1 }];
            cfg.defense = DefensePolicy::Roni;
            cfg
        };
        let uninterrupted = MailOrg::new(make()).run();
        let mut org = MailOrg::new(make());
        org.step_week().expect("week 1");
        let ckpt = org.checkpoint();
        drop(org);
        let resumed = MailOrg::restore(make(), &ckpt).expect("restore");
        assert_eq!(resumed.run(), uninterrupted);
    }

    /// Borrow-friendly test harness: run one day across all shards
    /// sequentially against a ctx built from the org's own state.
    fn run_one_day(org: &mut MailOrg, day: u32) -> WeekTally {
        let mut tally = WeekTally::default();
        let batches = attack_batches_for(&org.cfg, &org.seeds, day, day);
        let ctx = DayCtx {
            cfg: &org.cfg,
            seeds: &org.seeds,
            generator: &org.generator,
            filter: &org.filter,
            rates: &org.rates,
            total_ham: org.rates.iter().map(|r| r.ham_per_day).sum(),
            total_spam: org.rates.iter().map(|r| r.spam_per_day).sum(),
            ham0: org.ham0,
            spam0: org.spam0,
            n_shards: org.shards.len(),
            first_day: day,
            attack_batches: &batches,
        };
        let mut shards = std::mem::take(&mut org.shards);
        for shard in &mut shards {
            shard.run_day(&ctx, day, &mut tally);
        }
        org.shards = shards;
        tally
    }

    #[test]
    fn mailboxes_accumulate_by_user() {
        let mut cfg = base_config(13);
        cfg.shards = 2;
        let mut org = MailOrg::new(cfg);
        let users = org.cfg.users.clone();
        run_one_day(&mut org, 1);
        for u in &users {
            assert!(
                !org.mailbox(u).expect("mailbox").is_empty(),
                "user {u} got no mail"
            );
        }
    }

    /// Heterogeneous per-user rates are honored exactly: a user with zero
    /// configured traffic and no campaign aimed at them receives nothing,
    /// and the day's offered total is the sum of the per-user rates.
    #[test]
    fn per_user_traffic_controls_volume() {
        let mut cfg = base_config(19);
        cfg.user_traffic = vec![
            TrafficMix { ham_per_day: 8, spam_per_day: 2 },
            TrafficMix { ham_per_day: 2, spam_per_day: 8 },
            TrafficMix { ham_per_day: 5, spam_per_day: 5 },
            TrafficMix { ham_per_day: 0, spam_per_day: 0 },
            TrafficMix { ham_per_day: 1, spam_per_day: 1 },
        ];
        let mut org = MailOrg::new(cfg);
        let users = org.cfg.users.clone();
        let tally = run_one_day(&mut org, 1);
        assert_eq!(tally.offered, 8 + 2 + 2 + 8 + 5 + 5 + 1 + 1);
        assert!(org.mailbox(&users[3]).expect("mailbox").is_empty());
        assert!(!org.mailbox(&users[0]).expect("mailbox").is_empty());
    }

    /// A targeted campaign's mail lands only in the target users'
    /// mailboxes: users with zero organic traffic outside the target list
    /// stay empty.
    #[test]
    fn targeted_campaign_hits_only_targets() {
        let mut cfg = base_config(23);
        // No organic traffic at all: every delivery is campaign mail.
        cfg.user_traffic = vec![TrafficMix { ham_per_day: 0, spam_per_day: 0 }; 5];
        let mut plan = usenet_plan(1, 9);
        plan.targets = Some(vec![1, 3]);
        cfg.attacks = vec![plan];
        let mut org = MailOrg::new(cfg);
        let users = org.cfg.users.clone();
        let tally = run_one_day(&mut org, 1);
        assert_eq!(tally.offered, 9);
        for (u, name) in users.iter().enumerate() {
            let got = !org.mailbox(name).expect("mailbox").is_empty();
            assert_eq!(got, u == 1 || u == 3, "user {u} targeting wrong");
        }
    }

    /// A ramped campaign's day volumes follow the schedule exactly: the
    /// coordinator materializes `volume_on(day)` messages, so the offered
    /// count walks the ramp day by day.
    #[test]
    fn ramped_campaign_volume_follows_the_schedule() {
        let mut cfg = base_config(31);
        let mut plan = usenet_plan(2, 0);
        plan.end_day = Some(6);
        plan.intensity = Intensity::LinearRamp { from: 2, to: 10 };
        cfg.attacks = vec![plan];
        let organic = 20; // 10 ham + 10 spam per day in base_config
        let mut org = MailOrg::new(cfg);
        assert_eq!(run_one_day(&mut org, 1).offered, organic);
        assert_eq!(run_one_day(&mut org, 2).offered, organic + 2);
        assert_eq!(run_one_day(&mut org, 4).offered, organic + 6);
        assert_eq!(run_one_day(&mut org, 6).offered, organic + 10);
        assert_eq!(run_one_day(&mut org, 7).offered, organic);
    }

    /// A burst campaign sends only on its cycle's on-days.
    #[test]
    fn burst_campaign_gates_by_cycle() {
        let mut cfg = base_config(37);
        let mut plan = usenet_plan(1, 0);
        plan.intensity = Intensity::Bursts { period: 3, on_days: 1, per_day: 5 };
        cfg.attacks = vec![plan];
        let organic = 20;
        let mut org = MailOrg::new(cfg);
        assert_eq!(run_one_day(&mut org, 1).offered, organic + 5);
        assert_eq!(run_one_day(&mut org, 2).offered, organic);
        assert_eq!(run_one_day(&mut org, 3).offered, organic);
        assert_eq!(run_one_day(&mut org, 4).offered, organic + 5);
    }

    /// The campaign environment's `MessageRef` resolution mirrors the day
    /// plan: the resolved email is byte-identical to the one the named
    /// user actually receives (the cross-crate contract the focused
    /// campaign depends on).
    #[test]
    fn campaign_env_resolves_the_delivered_ham() {
        let cfg = base_config(41);
        let generator = cfg.corpus_generator();
        let env = cfg.campaign_env(&generator);
        // base_config: traffic 10/10 over 5 users -> 2 ham/user/day.
        let target = sb_core::MessageRef { user: 3, nth_ham: 3 }; // day 2, slot 1
        let expect = env.resolve_ham(target).expect("in range");
        let mut org = MailOrg::new(cfg);
        let user = org.cfg.users[3].clone();
        run_one_day(&mut org, 1);
        run_one_day(&mut org, 2);
        let mbox = org.mailbox(&user).expect("mailbox");
        let delivered: Vec<&Email> = [
            crate::mailbox::Folder::Inbox,
            crate::mailbox::Folder::Unsure,
            crate::mailbox::Folder::Spam,
        ]
        .iter()
        .flat_map(|&f| mbox.folder(f))
        .map(|m| &m.email)
        .collect();
        assert!(
            delivered.iter().any(|e| **e == expect),
            "resolved target must be among user 3's {} deliveries",
            delivered.len()
        );
    }

    /// Campaign windows are inclusive and staggered campaigns compose:
    /// outside every window only organic traffic arrives, inside both the
    /// offered count carries both campaigns' intensities.
    #[test]
    fn staggered_campaign_windows_compose() {
        let mut cfg = base_config(29);
        let mut early = usenet_plan(2, 3);
        early.end_day = Some(4);
        let late = AttackPlan::new(
            4,
            5,
            Box::new(DictionaryAttack::new(DictionaryKind::Aspell)),
        );
        cfg.attacks = vec![early, late];
        let organic = 20; // 10 ham + 10 spam per day in base_config
        let mut org = MailOrg::new(cfg);
        assert_eq!(run_one_day(&mut org, 1).offered, organic);
        assert_eq!(run_one_day(&mut org, 2).offered, organic + 3);
        assert_eq!(run_one_day(&mut org, 4).offered, organic + 3 + 5);
        assert_eq!(run_one_day(&mut org, 5).offered, organic + 5);
    }

    /// Regression: mail accepted for a recipient with no local mailbox
    /// must bounce into the day stats, not panic the simulation (the
    /// pre-shard loop `expect`ed the mailbox).
    #[test]
    fn unknown_recipient_bounces_instead_of_panicking() {
        let mut org = MailOrg::new(base_config(17));
        // Simulate a stale routing table: the shard loses one mailbox.
        let victim = org.cfg.users[0].clone();
        assert!(org.remove_mailbox(&victim), "mailbox should exist");
        assert!(!org.remove_mailbox(&victim), "second removal is a no-op");
        let tally = run_one_day(&mut org, 1);
        assert!(tally.bounced > 0, "missing mailbox must surface as bounces");
        assert_eq!(
            tally.delivered + tally.failed + tally.bounced,
            tally.offered,
            "bounces must stay inside the accounting identity"
        );
        // Bounced mail never reaches the training pool.
        let pooled: usize = org.shards.iter().map(|s| s.fresh.len()).sum();
        assert_eq!(pooled, tally.delivered);
    }

    #[test]
    fn merge_order_is_deterministic_across_shard_orders() {
        let entry = |day: u32, pos: u64| FreshMail {
            day,
            pos,
            user: pos as usize,
            mail: LabeledEmail::ham(
                sb_email::Email::builder().body(format!("d{day}p{pos}")).build(),
            ),
        };
        // Two shards' pools, interleaved arrivals across two days.
        let shard_a = || vec![entry(1, 0), entry(1, 2), entry(2, 1)];
        let shard_b = || vec![entry(1, 1), entry(2, 0), entry(2, 2)];
        let ab = merge_fresh(vec![shard_a(), shard_b()]);
        let ba = merge_fresh(vec![shard_b(), shard_a()]);
        let key = |v: &[FreshMail]| v.iter().map(|f| (f.day, f.pos)).collect::<Vec<_>>();
        assert_eq!(key(&ab), key(&ba));
        assert_eq!(
            key(&ab),
            vec![(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)],
            "merge must be the canonical (day, position) arrival order"
        );
    }
}
