//! The organization simulation: §2.1–§2.2 as a running system.
//!
//! One shared SpamBayes instance filters all incoming mail for an
//! organization's users. Mail — legitimate, background spam, and attack —
//! arrives over the SMTP-lite wire (one connection per message, faults and
//! all), is classified, routed to per-user mailboxes, and *also* recorded
//! into the training pool. Every `retrain_every` days the organization
//! retrains from the pool, exactly as the paper's contamination assumption
//! requires: attack messages are genuinely spam, so they are trained as
//! spam, and that is precisely what poisons the filter.
//!
//! Defenses hook into the retraining step: RONI screens new pool entries
//! against a trusted bootstrap set (§5.1), the dynamic threshold recalibrates
//! θ0/θ1 from a held-out split of the pool (§5.2), or both.
//!
//! The output is a week-by-week report of user-visible damage, which is the
//! time-axis view of the paper's Figure 1: the attack lands in the pool
//! during week *n* and detonates at the week-*n* retrain.

use crate::client::{Envelope, SmtpClient};
use crate::mailbox::{Mailbox, UserCosts, UserModel};
use crate::server::{ServerEvent, SmtpServer};
use crate::transport::{FaultConfig, FaultStats, FaultyPipe};
use sb_core::{calibrate, AttackGenerator, RoniConfig, RoniDefense, ThresholdConfig, TrainItem};
use sb_corpus::{CorpusConfig, EmailGenerator};
use sb_email::{Dataset, Email, Label, LabeledEmail};
use sb_filter::{FilterOptions, SpamBayes, Verdict};
use sb_stats::rng::SeedTree;
use sb_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use sb_intern::{FxHashMap, Interner, TokenId};
use std::sync::Arc;

/// Daily traffic volumes, organization-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Legitimate messages per day.
    pub ham_per_day: u32,
    /// Background (non-attack) spam per day.
    pub spam_per_day: u32,
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self {
            ham_per_day: 30,
            spam_per_day: 30,
        }
    }
}

/// Which defense the organization runs at retraining time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefensePolicy {
    /// Train on everything (the paper's baseline victim).
    None,
    /// RONI-screen new pool entries against the trusted bootstrap (§5.1).
    Roni,
    /// Recalibrate θ0/θ1 from the (contaminated) pool (§5.2). `strict`
    /// selects the g = 0.05 variant, otherwise g = 0.10.
    DynamicThreshold {
        /// Use the 0.05 utility target instead of 0.10.
        strict: bool,
    },
    /// RONI screening followed by threshold recalibration.
    RoniPlusThreshold,
}

/// An attack campaign: when it starts and how much it sends.
pub struct AttackPlan {
    /// First day (1-based) attack mail is sent.
    pub start_day: u32,
    /// Attack messages per day from `start_day` on.
    pub per_day: u32,
    /// The attack email generator (dictionary, focused, …).
    pub generator: Box<dyn AttackGenerator + Send + Sync>,
}

impl std::fmt::Debug for AttackPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackPlan")
            .field("start_day", &self.start_day)
            .field("per_day", &self.per_day)
            .field("generator", &self.generator.name())
            .finish()
    }
}

/// Simulation configuration.
#[derive(Debug)]
pub struct OrgConfig {
    /// Recipient user addresses (mail is spread round-robin).
    pub users: Vec<String>,
    /// Days to simulate.
    pub days: u32,
    /// Retrain every this many days (the paper's "e.g., weekly").
    pub retrain_every: u32,
    /// Daily volumes.
    pub traffic: TrafficMix,
    /// Wire faults.
    pub faults: FaultConfig,
    /// Defense at retraining time.
    pub defense: DefensePolicy,
    /// Size of the trusted, clean bootstrap training set.
    pub bootstrap_size: usize,
    /// Corpus model for ham/spam generation.
    pub corpus: CorpusConfig,
    /// The attack campaign, if any.
    pub attack: Option<AttackPlan>,
    /// Master seed.
    pub seed: u64,
}

impl OrgConfig {
    /// A small default organization: 5 users, 4 weeks, weekly retraining,
    /// reliable wire, no attack, no defense.
    pub fn small(seed: u64) -> Self {
        Self {
            users: (0..5).map(|i| format!("user{i}@corp.example")).collect(),
            days: 28,
            retrain_every: 7,
            traffic: TrafficMix::default(),
            faults: FaultConfig::none(),
            defense: DefensePolicy::None,
            bootstrap_size: 400,
            corpus: CorpusConfig::with_size(400, 0.5),
            attack: None,
            seed,
        }
    }
}

/// Filter state: plain thresholds or a calibrated pair.
enum ActiveFilter {
    Plain(SpamBayes),
    Calibrated(sb_core::CalibratedFilter),
}

impl ActiveFilter {
    fn classify(&self, email: &Email) -> Verdict {
        match self {
            ActiveFilter::Plain(f) => f.classify(email).verdict,
            ActiveFilter::Calibrated(c) => c.classify(email).verdict,
        }
    }
}

/// One week of user-visible outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeekReport {
    /// Week number, 1-based.
    pub week: u32,
    /// Messages offered to SMTP this week.
    pub offered: usize,
    /// Messages accepted by the server.
    pub accepted: usize,
    /// Fraction of this week's ham classified spam.
    pub ham_as_spam: f64,
    /// Fraction of this week's ham classified spam or unsure.
    pub ham_misrouted: f64,
    /// Fraction of this week's true spam classified spam.
    pub spam_caught: f64,
    /// Fraction of this week's true spam classified unsure.
    pub spam_as_unsure: f64,
    /// Pool entries rejected by RONI at this week's retrain (0 when the
    /// defense is off or the week had no retrain).
    pub screened_out: usize,
    /// Aggregated §2.1 user costs for the week.
    pub costs: UserCosts,
    /// The §2.1 "no advantage from continued use" predicate (> 20% of ham
    /// misrouted).
    pub filter_useless: bool,
}

/// Full simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgReport {
    /// Per-week outcomes.
    pub weeks: Vec<WeekReport>,
    /// Wire fault counters across the whole run.
    pub fault_stats: FaultStats,
    /// Total messages delivered into mailboxes.
    pub total_delivered: usize,
    /// Total SMTP delivery failures (after retries).
    pub total_failed: usize,
}

impl OrgReport {
    /// Highest ham-misrouted rate over all weeks (the attack's high-water
    /// mark).
    pub fn worst_week_ham_misrouted(&self) -> f64 {
        self.weeks.iter().map(|w| w.ham_misrouted).fold(0.0, f64::max)
    }
}

/// The running organization.
pub struct MailOrg {
    cfg: OrgConfig,
    seeds: SeedTree,
    generator: EmailGenerator,
    tokenizer: Tokenizer,
    filter: ActiveFilter,
    /// Trusted bootstrap messages (never contaminated; RONI's yardstick).
    bootstrap: Dataset,
    /// Accepted-but-unscreened messages since the last retrain.
    fresh_pool: Vec<LabeledEmail>,
    /// Screened, training-eligible pool (starts as the bootstrap).
    pool: Dataset,
    /// Interned token sets parallel to `pool`: tokenize once on admission,
    /// retrain by id every week thereafter.
    pool_ids: Vec<Arc<Vec<TokenId>>>,
    interner: Interner,
    mailboxes: FxHashMap<String, Mailbox>,
    ham_counter: u64,
    spam_counter: u64,
}

impl MailOrg {
    /// Bootstrap an organization: generate the clean training set and train
    /// the initial filter.
    pub fn new(cfg: OrgConfig) -> Self {
        assert!(!cfg.users.is_empty(), "need at least one user");
        assert!(cfg.retrain_every >= 1, "retrain_every must be >= 1");
        let seeds = SeedTree::new(cfg.seed).child("mailorg");
        let generator = EmailGenerator::new(cfg.corpus.clone(), seeds.child("corpus").seed());

        // Clean bootstrap pool, half ham half spam, generated off-wire (the
        // organization's historical mail archive).
        let mut bootstrap = Dataset::new();
        let n_ham = cfg.bootstrap_size / 2;
        let mut ham_counter = 0u64;
        let mut spam_counter = 0u64;
        for _ in 0..n_ham {
            bootstrap.push(LabeledEmail::ham(generator.ham(ham_counter)));
            ham_counter += 1;
        }
        for _ in 0..(cfg.bootstrap_size - n_ham) {
            bootstrap.push(LabeledEmail::spam(generator.spam(spam_counter)));
            spam_counter += 1;
        }

        let tokenizer = Tokenizer::new();
        let interner = Interner::global();
        let mut filter = SpamBayes::new();
        let mut pool_ids: Vec<Arc<Vec<TokenId>>> = Vec::with_capacity(bootstrap.len());
        for m in bootstrap.emails() {
            let ids = Arc::new(interner.intern_set(&tokenizer.token_set(&m.email)));
            filter.train_ids(&ids, m.label, 1);
            pool_ids.push(ids);
        }

        let mailboxes: FxHashMap<String, Mailbox> = cfg
            .users
            .iter()
            .map(|u| (u.clone(), Mailbox::new()))
            .collect();

        let mut pool = Dataset::new();
        pool.extend_from(&bootstrap);

        Self {
            cfg,
            seeds,
            generator,
            tokenizer,
            filter: ActiveFilter::Plain(filter),
            bootstrap,
            fresh_pool: Vec::new(),
            pool,
            pool_ids,
            interner,
            mailboxes,
            ham_counter,
            spam_counter,
        }
    }

    /// A user's mailbox.
    pub fn mailbox(&self, user: &str) -> Option<&Mailbox> {
        self.mailboxes.get(user)
    }

    /// Run the full simulation.
    pub fn run(mut self) -> OrgReport {
        let mut weeks = Vec::new();
        let mut fault_stats = FaultStats::default();
        let mut total_delivered = 0usize;
        let mut total_failed = 0usize;

        let n_weeks = self.cfg.days.div_ceil(self.cfg.retrain_every);
        let mut day = 0u32;
        for week in 1..=n_weeks {
            // Per-week delivery ledger: (truth, verdict).
            let mut ledger: Vec<(Label, Verdict)> = Vec::new();
            let mut offered = 0usize;
            let mut accepted = 0usize;
            let mut week_costs_box = Mailbox::new();

            for _ in 0..self.cfg.retrain_every {
                day += 1;
                if day > self.cfg.days {
                    break;
                }
                let (o, a, d, f, stats) =
                    self.run_day(day, &mut ledger, &mut week_costs_box);
                offered += o;
                accepted += a;
                total_delivered += d;
                total_failed += f;
                fault_stats.dropped += stats.dropped;
                fault_stats.corrupted += stats.corrupted;
                fault_stats.passed += stats.passed;
            }

            // Retrain at week end (§2.1: periodic retraining).
            let screened_out = self.retrain(week);

            // Week metrics from the ledger.
            let n_ham = ledger.iter().filter(|(t, _)| *t == Label::Ham).count();
            let n_spam = ledger.len() - n_ham;
            let ham_as_spam = count(&ledger, Label::Ham, Verdict::Spam);
            let ham_as_unsure = count(&ledger, Label::Ham, Verdict::Unsure);
            let spam_as_spam = count(&ledger, Label::Spam, Verdict::Spam);
            let spam_as_unsure = count(&ledger, Label::Spam, Verdict::Unsure);
            let user = UserModel::default();
            let report = WeekReport {
                week,
                offered,
                accepted,
                ham_as_spam: rate(ham_as_spam, n_ham),
                ham_misrouted: rate(ham_as_spam + ham_as_unsure, n_ham),
                spam_caught: rate(spam_as_spam, n_spam),
                spam_as_unsure: rate(spam_as_unsure, n_spam),
                screened_out,
                costs: user.costs(&week_costs_box),
                filter_useless: user.filter_useless(&week_costs_box, 0.2),
            };
            weeks.push(report);
        }

        OrgReport {
            weeks,
            fault_stats,
            total_delivered,
            total_failed,
        }
    }

    /// One day: generate traffic, deliver it over SMTP, classify, route,
    /// pool. Returns (offered, accepted, delivered, failed, fault stats).
    fn run_day(
        &mut self,
        day: u32,
        ledger: &mut Vec<(Label, Verdict)>,
        week_costs_box: &mut Mailbox,
    ) -> (usize, usize, usize, usize, FaultStats) {
        let day_seeds = self.seeds.child("day").index(u64::from(day));
        let mut rng = day_seeds.child("traffic").rng();

        // Compose today's outbound traffic with ground truth attached.
        let mut outbound: Vec<(Email, Label)> = Vec::new();
        for _ in 0..self.cfg.traffic.ham_per_day {
            outbound.push((self.generator.ham(self.ham_counter), Label::Ham));
            self.ham_counter += 1;
        }
        for _ in 0..self.cfg.traffic.spam_per_day {
            outbound.push((self.generator.spam(self.spam_counter), Label::Spam));
            self.spam_counter += 1;
        }
        if let Some(plan) = &self.cfg.attack {
            if day >= plan.start_day && plan.per_day > 0 {
                let mut atk_rng = day_seeds.child("attack").rng();
                let batch = plan.generator.generate(plan.per_day, &mut atk_rng);
                for email in batch.materialize() {
                    // Ground truth: attack mail IS spam (§2.2) — that is the
                    // whole point of the contamination assumption.
                    outbound.push((email, Label::Spam));
                }
            }
        }
        // Shuffle so attack mail interleaves with the day's traffic.
        shuffle(&mut outbound, &mut rng);

        let mut fault_stats = FaultStats::default();
        let (mut offered, mut accepted, mut delivered, mut failed) = (0, 0, 0, 0);

        let client = SmtpClient::new("outside.example");
        for (i, (email, truth)) in outbound.into_iter().enumerate() {
            offered += 1;
            // One SMTP connection per message: exact truth↔delivery mapping
            // even when deliveries fail.
            let mut pipe = FaultyPipe::new(self.cfg.faults, day_seeds.child("pipe").index(i as u64).seed());
            let mut server = SmtpServer::new("mx.corp.example");
            let rcpt = &self.cfg.users[i % self.cfg.users.len()];
            let env = Envelope::to_one("sender@outside.example", rcpt.clone(), email);
            let report = client.deliver_all(&mut pipe, &mut server, &[env]);
            let s = pipe.stats();
            fault_stats.dropped += s.dropped;
            fault_stats.corrupted += s.corrupted;
            fault_stats.passed += s.passed;

            let mut got = None;
            for ev in server.take_events() {
                if let ServerEvent::MessageAccepted(m) = ev {
                    got = Some(m);
                }
            }
            match (report.delivered, got) {
                (1, Some(msg)) => {
                    accepted += 1;
                    // Classify the message as received (post-wire).
                    let verdict = self.filter.classify(&msg.email);
                    ledger.push((truth, verdict));
                    let mbox = self
                        .mailboxes
                        .get_mut(rcpt)
                        .expect("recipient mailbox exists");
                    mbox.deliver(msg.email.clone(), truth, verdict, day);
                    week_costs_box.deliver(msg.email.clone(), truth, verdict, day);
                    delivered += 1;
                    // Into the pool with its ground-truth training label.
                    self.fresh_pool.push(LabeledEmail::new(msg.email, truth));
                }
                _ => {
                    failed += 1;
                }
            }
        }
        (offered, accepted, delivered, failed, fault_stats)
    }

    /// Retrain from the pool, applying the configured defense. Returns how
    /// many fresh messages the screen rejected.
    fn retrain(&mut self, week: u32) -> usize {
        let week_seeds = self.seeds.child("retrain").index(u64::from(week));
        let fresh: Vec<LabeledEmail> = std::mem::take(&mut self.fresh_pool);
        let mut screened_out = 0usize;

        // Phase 1: admission control on the fresh messages. Each fresh
        // message is tokenized + interned exactly once here; the id set
        // drives screening now and every retrain afterwards.
        let fresh_ids: Vec<Arc<Vec<TokenId>>> = fresh
            .iter()
            .map(|msg| {
                Arc::new(
                    self.interner
                        .intern_set(&self.tokenizer.token_set(&msg.email)),
                )
            })
            .collect();
        match self.cfg.defense {
            DefensePolicy::Roni | DefensePolicy::RoniPlusThreshold => {
                let mut rng = week_seeds.child("roni").rng();
                let roni = RoniDefense::new(
                    RoniConfig::default(),
                    &self.bootstrap,
                    FilterOptions::default(),
                    &mut rng,
                );
                // One parallel overlay sweep over the week's arrivals;
                // the shared trial filters are never mutated by it.
                let (kept, rejected) = roni.screen_ids(&fresh_ids);
                screened_out += rejected.len();
                let mut admit = vec![false; fresh.len()];
                for i in kept {
                    admit[i] = true;
                }
                for ((msg, ids), ok) in fresh.into_iter().zip(fresh_ids).zip(admit) {
                    if ok {
                        self.pool.push(msg);
                        self.pool_ids.push(ids);
                    }
                }
            }
            _ => {
                for (msg, ids) in fresh.into_iter().zip(fresh_ids) {
                    self.pool.push(msg);
                    self.pool_ids.push(ids);
                }
            }
        }

        // Phase 2: rebuild the filter from the (screened) pool.
        let wants_threshold = matches!(
            self.cfg.defense,
            DefensePolicy::DynamicThreshold { .. } | DefensePolicy::RoniPlusThreshold
        );
        self.filter = if wants_threshold && self.pool.len() >= 4 {
            let items: Vec<TrainItem> = self
                .pool
                .emails()
                .iter()
                .zip(&self.pool_ids)
                .map(|(m, ids)| TrainItem::from_ids(Arc::clone(ids), m.label))
                .collect();
            // RoniPlusThreshold uses the loose (g = 0.10) variant: RONI has
            // already removed the gross outliers, so the milder threshold
            // costs less spam-as-unsure.
            let cfg = if matches!(self.cfg.defense, DefensePolicy::DynamicThreshold { strict: true })
            {
                ThresholdConfig::strict()
            } else {
                ThresholdConfig::loose()
            };
            let mut rng = week_seeds.child("calibrate").rng();
            ActiveFilter::Calibrated(calibrate(&items, cfg, FilterOptions::default(), &mut rng))
        } else {
            let mut f = SpamBayes::new();
            for (m, ids) in self.pool.emails().iter().zip(&self.pool_ids) {
                f.train_ids(ids, m.label, 1);
            }
            ActiveFilter::Plain(f)
        };
        screened_out
    }
}

fn count(ledger: &[(Label, Verdict)], t: Label, v: Verdict) -> usize {
    ledger.iter().filter(|(lt, lv)| *lt == t && *lv == v).count()
}

fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Fisher–Yates with our own RNG (keeps `rand` out of the non-dev deps).
fn shuffle<T>(items: &mut [T], rng: &mut sb_stats::rng::Xoshiro256pp) {
    for i in (1..items.len()).rev() {
        let j = (rng.next() as usize) % (i + 1);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::{DictionaryAttack, DictionaryKind};

    fn base_config(seed: u64) -> OrgConfig {
        let mut cfg = OrgConfig::small(seed);
        // Keep unit-test scale small; integration tests run bigger.
        cfg.days = 14;
        cfg.bootstrap_size = 200;
        cfg.corpus = CorpusConfig::with_size(200, 0.5);
        cfg.traffic = TrafficMix {
            ham_per_day: 10,
            spam_per_day: 10,
        };
        cfg
    }

    fn with_attack(mut cfg: OrgConfig, per_day: u32) -> OrgConfig {
        cfg.attack = Some(AttackPlan {
            start_day: 1,
            per_day,
            generator: Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(2_000))),
        });
        cfg
    }

    #[test]
    fn clean_run_keeps_filter_usable() {
        let report = MailOrg::new(base_config(1)).run();
        assert_eq!(report.weeks.len(), 2);
        for w in &report.weeks {
            assert!(
                w.ham_misrouted < 0.2,
                "week {} misroutes {}",
                w.week,
                w.ham_misrouted
            );
            assert!(!w.filter_useless);
            assert!(w.spam_caught > 0.5, "week {} catches {}", w.week, w.spam_caught);
        }
        assert_eq!(report.total_failed, 0);
    }

    #[test]
    fn attack_detonates_at_first_retrain() {
        let report = MailOrg::new(with_attack(base_config(2), 8)).run();
        // Week 1: filter still clean (attack mail only sits in the pool).
        // Week 2: the retrained filter is poisoned.
        let w1 = &report.weeks[0];
        let w2 = &report.weeks[1];
        assert!(
            w2.ham_misrouted > w1.ham_misrouted + 0.2,
            "no detonation: week1 {} week2 {}",
            w1.ham_misrouted,
            w2.ham_misrouted
        );
        assert!(w2.filter_useless, "poisoned filter should be useless");
    }

    #[test]
    fn roni_defense_blocks_the_campaign() {
        let undefended = MailOrg::new(with_attack(base_config(3), 8)).run();
        let mut cfg = with_attack(base_config(3), 8);
        cfg.defense = DefensePolicy::Roni;
        let defended = MailOrg::new(cfg).run();
        let w2u = &undefended.weeks[1];
        let w2d = &defended.weeks[1];
        assert!(
            w2d.ham_misrouted < w2u.ham_misrouted / 2.0,
            "RONI ineffective: defended {} vs undefended {}",
            w2d.ham_misrouted,
            w2u.ham_misrouted
        );
        // Both retrains see attack mail in their fresh pools (the campaign
        // runs all 14 days), so both weeks screen some out.
        assert!(
            defended.weeks[0].screened_out > 0,
            "RONI should have screened attack mail at week 1's retrain"
        );
        assert!(
            defended.weeks[1].screened_out > 0,
            "RONI should keep screening at week 2's retrain"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = MailOrg::new(with_attack(base_config(7), 4)).run();
        let b = MailOrg::new(with_attack(base_config(7), 4)).run();
        for (wa, wb) in a.weeks.iter().zip(&b.weeks) {
            assert_eq!(wa.ham_misrouted, wb.ham_misrouted);
            assert_eq!(wa.screened_out, wb.screened_out);
        }
    }

    #[test]
    fn faulty_wire_degrades_gracefully() {
        let mut cfg = base_config(11);
        cfg.faults = FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
        };
        let report = MailOrg::new(cfg).run();
        // Deliveries mostly succeed; any failures are accounted, not lost.
        let offered: usize = report.weeks.iter().map(|w| w.offered).sum();
        assert_eq!(
            report.total_delivered + report.total_failed,
            offered,
            "accounting must balance"
        );
        assert!(report.fault_stats.dropped + report.fault_stats.corrupted > 0);
        assert!(report.total_delivered as f64 / offered as f64 > 0.9);
    }

    #[test]
    fn mailboxes_accumulate_by_user() {
        let org = MailOrg::new(base_config(13));
        let users = org.cfg.users.clone();
        // Run manually for a couple of days via the public run() — then
        // check distribution through the report instead; mailboxes are
        // internal. Simplest: run and confirm every user got mail.
        let mut org = org;
        let mut ledger = Vec::new();
        let mut scratch = Mailbox::new();
        org.run_day(1, &mut ledger, &mut scratch);
        for u in &users {
            assert!(
                !org.mailbox(u).expect("mailbox").is_empty(),
                "user {u} got no mail"
            );
        }
    }
}
