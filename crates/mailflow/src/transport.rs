//! In-memory byte transport with deterministic fault injection.
//!
//! The simulation runs both SMTP endpoints in one thread, sans-io: each
//! endpoint writes bytes into its side of a [`Pipe`] and reads whatever the
//! other side has written. [`FaultyPipe`] wraps a pipe with the smoltcp
//! example harness's two classic faults — random chunk drops and single-byte
//! corruption — driven by a seeded RNG so every failure is replayable.
//!
//! Faults operate on *write chunks* (one chunk ≈ one protocol line), which
//! keeps the failure model interpretable: a dropped chunk is a lost line, a
//! corrupted chunk is a line with one flipped byte. The SMTP client's
//! retry logic and the server's 5xx handling are exercised by exactly these
//! two shapes.

use bytes::{Bytes, BytesMut};
use sb_stats::rng::Xoshiro256pp;

/// Which side of the pipe an endpoint holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The client side (writes flow toward the server).
    Client,
    /// The server side (writes flow toward the client).
    Server,
}

/// A bidirectional in-memory byte pipe.
#[derive(Debug, Default)]
pub struct Pipe {
    to_server: BytesMut,
    to_client: BytesMut,
    /// Total bytes ever carried client→server (for throughput accounting).
    pub bytes_to_server: u64,
    /// Total bytes ever carried server→client.
    pub bytes_to_client: u64,
}

impl Pipe {
    /// A fresh, empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write bytes from `end` toward the peer.
    pub fn write(&mut self, end: End, bytes: &[u8]) {
        match end {
            End::Client => {
                self.to_server.extend_from_slice(bytes);
                self.bytes_to_server += bytes.len() as u64;
            }
            End::Server => {
                self.to_client.extend_from_slice(bytes);
                self.bytes_to_client += bytes.len() as u64;
            }
        }
    }

    /// Drain everything queued toward `end`.
    pub fn read(&mut self, end: End) -> Bytes {
        match end {
            End::Client => self.to_client.split().freeze(),
            End::Server => self.to_server.split().freeze(),
        }
    }

    /// True when nothing is in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.to_server.is_empty() && self.to_client.is_empty()
    }
}

/// An invalid fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability field is outside `[0, 1]`.
    ChanceOutOfRange {
        /// Which knob is bad.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::ChanceOutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1], got {value}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Fault injection knobs (per write chunk).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Probability a chunk is dropped entirely.
    pub drop_chance: f64,
    /// Probability one byte of a surviving chunk is XOR-flipped.
    pub corrupt_chance: f64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        Self {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }

    /// The smoltcp examples' "good starting value": 15% of each.
    pub fn harsh() -> Self {
        Self {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
        }
    }

    /// Validate probabilities.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (field, value) in [
            ("drop_chance", self.drop_chance),
            ("corrupt_chance", self.corrupt_chance),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultError::ChanceOutOfRange { field, value });
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters of injected faults, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultStats {
    /// Chunks dropped.
    pub dropped: u64,
    /// Chunks with one byte corrupted.
    pub corrupted: u64,
    /// Chunks passed through untouched.
    pub passed: u64,
}

impl FaultStats {
    /// Fold another counter set into this one. Addition is commutative and
    /// associative, so any merge order over a set of per-shard stats yields
    /// the same aggregate — asserted by `fault_stats_merge_is_order_independent`.
    pub fn absorb(&mut self, other: FaultStats) {
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.passed += other.passed;
    }
}

/// A [`Pipe`] with fault injection on every write.
#[derive(Debug)]
pub struct FaultyPipe {
    pipe: Pipe,
    cfg: FaultConfig,
    rng: Xoshiro256pp,
    stats: FaultStats,
}

impl FaultyPipe {
    /// Wrap a fresh pipe with the given fault config and RNG seed,
    /// rejecting out-of-range probabilities with a typed error.
    pub fn new(cfg: FaultConfig, seed: u64) -> Result<Self, FaultError> {
        cfg.validate()?;
        Ok(Self::seeded(cfg, seed))
    }

    /// Wrap a fresh pipe with an *already validated* config — the hot-path
    /// constructor for the org day loop, where the config was checked once
    /// at `OrgConfig` validation time.
    pub fn seeded(cfg: FaultConfig, seed: u64) -> Self {
        debug_assert!(cfg.validate().is_ok(), "unvalidated fault config: {cfg:?}");
        Self {
            pipe: Pipe::new(),
            cfg,
            rng: Xoshiro256pp::new(seed),
            stats: FaultStats::default(),
        }
    }

    /// A pipe that never misbehaves.
    pub fn reliable() -> Self {
        Self::seeded(FaultConfig::none(), 0)
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The underlying byte counters.
    pub fn pipe(&self) -> &Pipe {
        &self.pipe
    }

    fn uniform(&mut self) -> f64 {
        // 53-bit mantissa trick: uniform in [0, 1).
        (self.rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Write a chunk from `end`, subject to faults.
    pub fn write(&mut self, end: End, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        if self.cfg.drop_chance > 0.0 && self.uniform() < self.cfg.drop_chance {
            self.stats.dropped += 1;
            return;
        }
        if self.cfg.corrupt_chance > 0.0 && self.uniform() < self.cfg.corrupt_chance {
            let mut copy = bytes.to_vec();
            // Unbiased byte pick (Lemire rejection on the full u64 stream).
            let idx = self.rng.next_below(copy.len() as u64) as usize;
            // Flip a low bit so printable ASCII stays printable-ish but the
            // token/command is wrong; never corrupt CR/LF framing bytes, so
            // the fault stays a *payload* fault rather than a framing fault
            // (framing faults are LineCodec's own test territory).
            // sb-lint: allow(panic-path, "idx = next_below(copy.len()) < len, and empty writes return at the top")
            if copy[idx] != b'\r' && copy[idx] != b'\n' {
                // sb-lint: allow(panic-path, "idx = next_below(copy.len()) < len, and empty writes return at the top")
                copy[idx] ^= 0x02;
                self.stats.corrupted += 1;
                self.pipe.write(end, &copy);
                return;
            }
            // Fall through untouched if we landed on a framing byte.
        }
        self.stats.passed += 1;
        self.pipe.write(end, bytes);
    }

    /// Read everything queued toward `end` (reads are reliable; SMTP's
    /// error handling lives at the line/reply layer).
    pub fn read(&mut self, end: End) -> Bytes {
        self.pipe.read(end)
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.pipe.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_carries_both_directions() {
        let mut p = Pipe::new();
        p.write(End::Client, b"hello server");
        p.write(End::Server, b"hello client");
        assert_eq!(&p.read(End::Server)[..], b"hello server");
        assert_eq!(&p.read(End::Client)[..], b"hello client");
        assert!(p.is_idle());
        assert_eq!(p.bytes_to_server, 12);
        assert_eq!(p.bytes_to_client, 12);
    }

    #[test]
    fn reads_drain() {
        let mut p = Pipe::new();
        p.write(End::Client, b"once");
        assert_eq!(&p.read(End::Server)[..], b"once");
        assert!(p.read(End::Server).is_empty());
    }

    #[test]
    fn reliable_pipe_never_faults() {
        let mut p = FaultyPipe::reliable();
        for i in 0..100u32 {
            p.write(End::Client, format!("line {i}\r\n").as_bytes());
        }
        let got = p.read(End::Server);
        assert_eq!(got.iter().filter(|&&b| b == b'\n').count(), 100);
        assert_eq!(p.stats().dropped + p.stats().corrupted, 0);
        assert_eq!(p.stats().passed, 100);
    }

    #[test]
    fn drop_chance_one_drops_everything() {
        let mut p = FaultyPipe::new(
            FaultConfig {
                drop_chance: 1.0,
                corrupt_chance: 0.0,
            },
            7,
        )
        .unwrap();
        p.write(End::Client, b"doomed\r\n");
        p.write(End::Client, b"also doomed\r\n");
        assert!(p.read(End::Server).is_empty());
        assert_eq!(p.stats().dropped, 2);
    }

    #[test]
    fn corruption_flips_exactly_one_payload_byte() {
        let mut p = FaultyPipe::new(
            FaultConfig {
                drop_chance: 0.0,
                corrupt_chance: 1.0,
            },
            11,
        )
        .unwrap();
        let original = b"MAIL FROM:<a@b>\r\n";
        // Run several chunks; every surviving chunk differs from the
        // original in at most one byte and framing bytes stay intact.
        for _ in 0..20 {
            p.write(End::Client, original);
            let got = p.read(End::Server);
            assert_eq!(got.len(), original.len());
            let diffs: Vec<usize> = (0..got.len()).filter(|&i| got[i] != original[i]).collect();
            assert!(diffs.len() <= 1, "more than one byte corrupted: {diffs:?}");
            assert!(got.ends_with(b"\r\n"), "framing corrupted");
        }
        let s = p.stats();
        assert_eq!(s.dropped, 0);
        assert!(s.corrupted >= 15, "corruption should fire nearly always: {s:?}");
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut p = FaultyPipe::seeded(FaultConfig::harsh(), seed);
            for i in 0..50u32 {
                p.write(End::Client, format!("chunk {i}\r\n").as_bytes());
            }
            (p.stats(), p.read(End::Server).to_vec())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn invalid_config_rejected_with_typed_error() {
        let bad = FaultConfig {
            drop_chance: 1.5,
            corrupt_chance: 0.0,
        };
        assert_eq!(
            bad.validate(),
            Err(FaultError::ChanceOutOfRange {
                field: "drop_chance",
                value: 1.5
            })
        );
        // The fallible constructor surfaces the same typed error instead of
        // panicking.
        match FaultyPipe::new(bad, 1) {
            Err(FaultError::ChanceOutOfRange { field, .. }) => assert_eq!(field, "drop_chance"),
            Ok(_) => panic!("invalid config must not build a pipe"),
        }
        assert!(FaultConfig::harsh().validate().is_ok());
        assert!(FaultyPipe::new(FaultConfig::harsh(), 1).is_ok());
    }

    #[test]
    fn fault_stats_merge_is_order_independent() {
        let shards = [
            FaultStats { dropped: 3, corrupted: 1, passed: 40 },
            FaultStats { dropped: 0, corrupted: 7, passed: 12 },
            FaultStats { dropped: 5, corrupted: 0, passed: 99 },
            FaultStats { dropped: 2, corrupted: 2, passed: 2 },
        ];
        let merge = |order: &[usize]| {
            let mut total = FaultStats::default();
            for &i in order {
                total.absorb(shards[i]);
            }
            total
        };
        let forward = merge(&[0, 1, 2, 3]);
        assert_eq!(forward, merge(&[3, 2, 1, 0]));
        assert_eq!(forward, merge(&[2, 0, 3, 1]));
        assert_eq!(
            forward,
            FaultStats { dropped: 10, corrupted: 10, passed: 153 }
        );
    }

    #[test]
    fn empty_writes_are_noops() {
        let mut p = FaultyPipe::seeded(FaultConfig::harsh(), 3);
        p.write(End::Client, b"");
        assert_eq!(p.stats(), FaultStats::default());
        assert!(p.is_idle());
    }
}
