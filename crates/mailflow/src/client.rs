//! The sending SMTP state machine and the synchronous delivery pump.
//!
//! The client renders commands to wire lines, pushes them through the
//! (possibly faulty) transport, pumps the server, and interprets replies.
//! Fault handling is where the substance is:
//!
//! * **dropped command / dropped reply** → no reply arrives; the client
//!   retransmits the line a bounded number of times;
//! * **corrupted command** → the server answers 500/501; the client
//!   retransmits the original line;
//! * **corrupted reply** → unparseable; treated like a drop;
//! * **desynchronization** (e.g. a lost 354 leaves the server in DATA mode
//!   eating commands as body lines) → [`SmtpClient::recover`] force-feeds a
//!   terminating dot and a RSET, the standard blind resync dance;
//! * anything still failing after the per-envelope attempt budget is
//!   reported as a [`ClientError`], never hidden.
//!
//! Every loop is bounded, so delivery terminates for *any* transport
//! behaviour — property-tested in `tests/prop_mailflow.rs`.

use crate::smtp::{Command, Reply, ReplyCode};
use crate::transport::{End, FaultyPipe};
use crate::server::SmtpServer;
use crate::wire::{dot_stuff, LineCodec};
use sb_email::Email;
use sb_email::render::render_email;
use serde::{Deserialize, Serialize};

/// An envelope: what SMTP actually routes (independent of header fields).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Envelope sender.
    pub mail_from: String,
    /// Envelope recipients.
    pub rcpt_to: Vec<String>,
    /// The message content.
    pub email: Email,
}

impl Envelope {
    /// Single-recipient convenience constructor.
    pub fn to_one(mail_from: impl Into<String>, rcpt: impl Into<String>, email: Email) -> Self {
        Self {
            mail_from: mail_from.into(),
            rcpt_to: vec![rcpt.into()],
            email,
        }
    }
}

/// Why a delivery failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientError {
    /// The server rejected the transaction with a permanent (5xx) code
    /// repeatedly.
    Rejected {
        /// The last reply code seen.
        code: u16,
        /// Which command drew the rejection.
        during: String,
    },
    /// No usable reply after all retransmissions (dropped lines, corrupted
    /// replies, or a wedged session).
    Stalled {
        /// Which command stalled.
        during: String,
    },
    /// The per-envelope attempt budget ran out.
    AttemptsExhausted,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { code, during } => {
                write!(f, "rejected with {code} during {during}")
            }
            ClientError::Stalled { during } => write!(f, "no reply during {during}"),
            ClientError::AttemptsExhausted => write!(f, "delivery attempts exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A virtual-clock exponential backoff schedule: retry `n` (1-based) waits
/// `min(base_ms << (n-1), cap_ms)` before retransmitting.
///
/// The simulation has no wall clock — the wait is *accounted*, not slept,
/// accumulating into [`DeliveryReport::backoff_ms`]. The retry decisions
/// themselves are unchanged by the schedule, so enabling or tuning backoff
/// never moves a delivery outcome (and therefore never moves a golden
/// digest beyond the report's own columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffSchedule {
    /// Delay before the first retry, in virtual milliseconds.
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub cap_ms: u64,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        Self {
            base_ms: 250,
            cap_ms: 32_000,
        }
    }
}

impl BackoffSchedule {
    /// The virtual delay before retry `retry` (1-based; 0 means the first
    /// transmission, which waits nothing).
    pub fn delay_ms(&self, retry: u32) -> u64 {
        if retry == 0 {
            return 0;
        }
        let shift = (retry - 1).min(63);
        self.base_ms
            .saturating_mul(1u64 << shift)
            .min(self.cap_ms)
    }
}

/// Per-delivery accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// Envelopes delivered (250 after the data dot).
    pub delivered: usize,
    /// Envelopes abandoned, with their final errors.
    pub failed: Vec<ClientError>,
    /// Total command retransmissions performed.
    pub retransmissions: u64,
    /// Blind resynchronization dances performed.
    pub recoveries: u64,
    /// Virtual milliseconds spent waiting in the backoff schedule across
    /// all retransmissions.
    pub backoff_ms: u64,
}

/// The SMTP-lite client.
#[derive(Debug, Clone)]
pub struct SmtpClient {
    helo_domain: String,
    /// Full restarts allowed per envelope.
    max_attempts: u32,
    /// Retransmissions allowed per command line.
    per_command_retries: u32,
    /// Virtual-clock waits between retransmissions.
    backoff: BackoffSchedule,
}

impl SmtpClient {
    /// A client announcing `helo_domain`, with default retry budgets.
    pub fn new(helo_domain: impl Into<String>) -> Self {
        Self {
            helo_domain: helo_domain.into(),
            max_attempts: 3,
            per_command_retries: 4,
            backoff: BackoffSchedule::default(),
        }
    }

    /// Override the retry budgets (attempts ≥ 1, retries ≥ 1).
    pub fn with_budgets(mut self, max_attempts: u32, per_command_retries: u32) -> Self {
        assert!(max_attempts >= 1 && per_command_retries >= 1);
        self.max_attempts = max_attempts;
        self.per_command_retries = per_command_retries;
        self
    }

    /// Override the backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffSchedule) -> Self {
        self.backoff = backoff;
        self
    }

    /// Deliver a batch of envelopes over one SMTP session, pumping `server`
    /// through `pipe`. Returns per-batch accounting; individual failures do
    /// not abort the batch.
    pub fn deliver_all(
        &self,
        pipe: &mut FaultyPipe,
        server: &mut SmtpServer,
        envelopes: &[Envelope],
    ) -> DeliveryReport {
        let mut report = DeliveryReport::default();
        let mut session = Session {
            pipe,
            server,
            client_codec: LineCodec::new(),
            retransmissions: 0,
            recoveries: 0,
            waited_ms: 0,
            per_command_retries: self.per_command_retries,
            backoff: self.backoff,
        };

        // Greeting: the server banner may be dropped; HELO works regardless.
        session.pump_server();
        session.drain_client_replies();
        let _ = session.exchange(&Command::Helo(self.helo_domain.clone()).render(), &[250]);

        for env in envelopes {
            match self.deliver_envelope(&mut session, env) {
                Ok(()) => report.delivered += 1,
                Err(e) => report.failed.push(e),
            }
        }
        let _ = session.exchange(&Command::Quit.render(), &[221]);
        report.retransmissions = session.retransmissions;
        report.recoveries = session.recoveries;
        report.backoff_ms = session.waited_ms;
        report
    }

    fn deliver_envelope(
        &self,
        session: &mut Session<'_>,
        env: &Envelope,
    ) -> Result<(), ClientError> {
        for _attempt in 0..self.max_attempts {
            match self.try_once(session, env) {
                Ok(()) => return Ok(()),
                Err(ClientError::Rejected { code, during }) if code >= 550 => {
                    // Genuine policy rejection (bad mailbox, oversized):
                    // retrying cannot help. RSET keeps the session clean for
                    // the next envelope.
                    session.resync();
                    return Err(ClientError::Rejected { code, during });
                }
                Err(_) => {
                    // Stall or desync: blind resync, then burn an attempt.
                    session.resync();
                }
            }
        }
        Err(ClientError::AttemptsExhausted)
    }

    fn try_once(&self, session: &mut Session<'_>, env: &Envelope) -> Result<(), ClientError> {
        session.exchange_strict(&Command::MailFrom(env.mail_from.clone()).render(), &[250], "MAIL")?;
        for rcpt in &env.rcpt_to {
            session.exchange_strict(&Command::RcptTo(rcpt.clone()).render(), &[250], "RCPT")?;
        }
        session.exchange_strict(&Command::Data.render(), &[354], "DATA")?;
        // Body lines draw no replies; send them in one burst per line so the
        // fault injector sees realistic chunk granularity.
        let wire = dot_stuff(&render_email(&env.email));
        for line in wire.split_inclusive("\r\n") {
            session.send_raw(line.as_bytes());
        }
        session.pump_server();
        // The terminating dot was part of `wire`; wait for the final 250.
        match session.await_reply() {
            Some(r) if r.code == ReplyCode::Ok => Ok(()),
            Some(r) if r.code == ReplyCode::TooMuchData => Err(ClientError::Rejected {
                code: 552,
                during: "DATA-END".into(),
            }),
            Some(r) => Err(ClientError::Rejected {
                code: r.code.code(),
                during: "DATA-END".into(),
            }),
            None => {
                // The dot (or its reply) was lost: retransmit just the dot.
                for retry in 1..=self.per_command_retries {
                    session.waited_ms += session.backoff.delay_ms(retry);
                    session.send_raw(b".\r\n");
                    session.pump_server();
                    if let Some(r) = session.await_reply() {
                        return if r.code == ReplyCode::Ok {
                            Ok(())
                        } else {
                            Err(ClientError::Rejected {
                                code: r.code.code(),
                                during: "DATA-END".into(),
                            })
                        };
                    }
                }
                Err(ClientError::Stalled {
                    during: "DATA-END".into(),
                })
            }
        }
    }
}

/// One live client↔server pumping context.
struct Session<'a> {
    pipe: &'a mut FaultyPipe,
    server: &'a mut SmtpServer,
    client_codec: LineCodec,
    retransmissions: u64,
    recoveries: u64,
    /// Virtual milliseconds spent in backoff waits.
    waited_ms: u64,
    per_command_retries: u32,
    backoff: BackoffSchedule,
}

impl Session<'_> {
    /// Push client bytes through the faulty pipe.
    fn send_raw(&mut self, bytes: &[u8]) {
        self.pipe.write(End::Client, bytes);
    }

    /// Let the server consume everything in flight and emit replies.
    fn pump_server(&mut self) {
        let bytes = self.pipe.read(End::Server);
        if bytes.is_empty() {
            return;
        }
        // The server frames with its own codec; a persistent one per session
        // would be marginally more realistic, but command lines never split
        // across our chunk boundary (one write = one line), so a local codec
        // that drains fully is equivalent — except for byte-corruption runs,
        // where a corrupted terminator could leave a partial line stranded.
        // We accept losing that tail: it models a broken line on a real
        // wire, and the client's retransmission path covers it.
        let mut codec = LineCodec::new();
        codec.feed(&bytes);
        while let Some(item) = codec.next_line() {
            match item {
                Ok(line) => {
                    if let Some(reply) = self.server.handle_line(&line) {
                        self.pipe.write(End::Server, format!("{}\r\n", reply.render()).as_bytes());
                    }
                }
                Err(_) => {
                    // Oversized garbage: a real server would answer 500; ours
                    // does too, so the client can resync.
                    let reply = Reply::new(ReplyCode::SyntaxError, "line too long");
                    self.pipe.write(End::Server, format!("{}\r\n", reply.render()).as_bytes());
                }
            }
        }
    }

    /// Read one parsed reply from the client side, if any arrived.
    fn await_reply(&mut self) -> Option<Reply> {
        let bytes = self.pipe.read(End::Client);
        self.client_codec.feed(&bytes);
        while let Some(item) = self.client_codec.next_line() {
            if let Ok(line) = item {
                if let Some(r) = Reply::parse(&line) {
                    return Some(r);
                }
                // Corrupted reply: ignore; caller will retransmit.
            }
        }
        None
    }

    /// Discard any stale replies sitting in the client's direction.
    fn drain_client_replies(&mut self) {
        while self.await_reply().is_some() {}
    }

    /// Send a command line until one of `want` (numeric codes) comes back.
    /// Returns the final reply, or None if the budget ran out.
    ///
    /// Reply-code triage: 500/501 almost certainly mean the command was
    /// corrupted in flight, so the original line is retransmitted; 4xx are
    /// transient and also retransmitted; 503 means client and server have
    /// desynchronized (retransmission cannot fix that — the caller's resync
    /// dance can) and 55x are genuine policy rejections, so both return
    /// immediately.
    fn exchange(&mut self, line: &str, want: &[u16]) -> Option<Reply> {
        for attempt in 0..=self.per_command_retries {
            if attempt > 0 {
                self.retransmissions += 1;
                self.waited_ms += self.backoff.delay_ms(attempt);
            }
            self.send_raw(format!("{line}\r\n").as_bytes());
            self.pump_server();
            if let Some(r) = self.await_reply() {
                let code = r.code.code();
                if want.contains(&code) {
                    return Some(r);
                }
                if code == 503 || code >= 550 {
                    return Some(r);
                }
                // 4xx / 500 / 501: retransmit.
            }
        }
        None
    }

    /// Like [`Self::exchange`] but mapping outcomes onto [`ClientError`].
    fn exchange_strict(
        &mut self,
        line: &str,
        want: &[u16],
        during: &str,
    ) -> Result<Reply, ClientError> {
        match self.exchange(line, want) {
            Some(r) if want.contains(&r.code.code()) => Ok(r),
            Some(r) => Err(ClientError::Rejected {
                code: r.code.code(),
                during: during.into(),
            }),
            None => Err(ClientError::Stalled {
                during: during.into(),
            }),
        }
    }

    /// Blind resynchronization: terminate any data mode the server might be
    /// stuck in, then RSET. Ignores outcomes — this is a best-effort dance.
    fn resync(&mut self) {
        self.recoveries += 1;
        self.send_raw(b".\r\n");
        self.pump_server();
        self.drain_client_replies();
        let _ = self.exchange(&Command::Rset.render(), &[250]);
        self.drain_client_replies();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultConfig;

    fn envelope(i: usize) -> Envelope {
        Envelope::to_one(
            format!("sender{i}@out.example"),
            "victim@corp.example",
            Email::builder()
                .subject(format!("message {i}"))
                .body(format!("body of message {i}\nwith two lines"))
                .build(),
        )
    }

    #[test]
    fn delivers_over_reliable_pipe() {
        let mut pipe = FaultyPipe::reliable();
        let mut server = SmtpServer::new("mx.corp.example");
        pipe.write(End::Server, format!("{}\r\n", server.greeting().render()).as_bytes());
        let client = SmtpClient::new("out.example");
        let envs: Vec<Envelope> = (0..5).map(envelope).collect();
        let report = client.deliver_all(&mut pipe, &mut server, &envs);
        assert_eq!(report.delivered, 5, "failures: {:?}", report.failed);
        assert!(report.failed.is_empty());
        assert_eq!(report.retransmissions, 0);
        let accepted = server
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, crate::server::ServerEvent::MessageAccepted(_)))
            .count();
        assert_eq!(accepted, 5);
    }

    #[test]
    fn message_content_survives_the_wire() {
        let mut pipe = FaultyPipe::reliable();
        let mut server = SmtpServer::new("mx");
        let client = SmtpClient::new("out");
        let email = Email::builder()
            .subject("dots and lines")
            .body(".leading dot\nmiddle\n..two dots\nlast")
            .build();
        let env = Envelope::to_one("a@b", "c@d", email.clone());
        let report = client.deliver_all(&mut pipe, &mut server, &[env]);
        assert_eq!(report.delivered, 1);
        match &server.take_events()[0] {
            crate::server::ServerEvent::MessageAccepted(m) => {
                assert_eq!(m.email.subject(), email.subject());
                assert_eq!(m.email.body().trim_end(), email.body());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn survives_moderate_faults() {
        // 5% drop + 5% corruption: all messages should still arrive thanks
        // to retransmission, with a nonzero retry count.
        let mut total_delivered = 0;
        let mut total_retx = 0;
        for seed in 0..10 {
            let mut pipe = FaultyPipe::seeded(
                FaultConfig {
                    drop_chance: 0.05,
                    corrupt_chance: 0.05,
                },
                seed,
            );
            let mut server = SmtpServer::new("mx");
            let client = SmtpClient::new("out").with_budgets(4, 6);
            let envs: Vec<Envelope> = (0..10).map(envelope).collect();
            let report = client.deliver_all(&mut pipe, &mut server, &envs);
            total_delivered += report.delivered;
            total_retx += report.retransmissions;
        }
        assert!(
            total_delivered >= 95,
            "too many losses at 5% fault rate: {total_delivered}/100"
        );
        assert!(total_retx > 0, "faults injected but nothing retransmitted");
    }

    #[test]
    fn harsh_faults_terminate_and_report() {
        // 15%/15%: deliveries may fail, but the pump must terminate and
        // failures must be reported, not silently dropped.
        let mut pipe = FaultyPipe::seeded(FaultConfig::harsh(), 99);
        let mut server = SmtpServer::new("mx");
        let client = SmtpClient::new("out");
        let envs: Vec<Envelope> = (0..20).map(envelope).collect();
        let report = client.deliver_all(&mut pipe, &mut server, &envs);
        assert_eq!(report.delivered + report.failed.len(), 20);
    }

    #[test]
    fn delivery_is_deterministic_per_seed() {
        let run = |seed| {
            let mut pipe = FaultyPipe::seeded(FaultConfig::harsh(), seed);
            let mut server = SmtpServer::new("mx");
            let client = SmtpClient::new("out");
            let envs: Vec<Envelope> = (0..10).map(envelope).collect();
            let r = client.deliver_all(&mut pipe, &mut server, &envs);
            (r.delivered, r.retransmissions, r.recoveries, r.backoff_ms)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn backoff_schedule_doubles_up_to_the_cap() {
        let b = BackoffSchedule {
            base_ms: 100,
            cap_ms: 1_000,
        };
        assert_eq!(b.delay_ms(0), 0);
        assert_eq!(b.delay_ms(1), 100);
        assert_eq!(b.delay_ms(2), 200);
        assert_eq!(b.delay_ms(3), 400);
        assert_eq!(b.delay_ms(4), 800);
        assert_eq!(b.delay_ms(5), 1_000, "capped");
        assert_eq!(b.delay_ms(40), 1_000, "stays capped");
        // Huge retry counts must not overflow the shift.
        assert_eq!(BackoffSchedule::default().delay_ms(u32::MAX), 32_000);
    }

    #[test]
    fn backoff_accrues_on_retransmissions_but_never_changes_outcomes() {
        let run = |backoff: BackoffSchedule| {
            let mut pipe = FaultyPipe::seeded(FaultConfig::harsh(), 17);
            let mut server = SmtpServer::new("mx");
            let client = SmtpClient::new("out").with_backoff(backoff);
            let envs: Vec<Envelope> = (0..10).map(envelope).collect();
            client.deliver_all(&mut pipe, &mut server, &envs)
        };
        let default = run(BackoffSchedule::default());
        assert!(default.retransmissions > 0, "harsh wire must retransmit");
        assert!(default.backoff_ms > 0, "retransmissions must accrue waits");
        // The schedule is pure accounting: a different schedule changes only
        // the virtual wait, never what was delivered or retried.
        let slow = run(BackoffSchedule {
            base_ms: 5_000,
            cap_ms: 60_000,
        });
        assert_eq!(default.delivered, slow.delivered);
        assert_eq!(default.failed, slow.failed);
        assert_eq!(default.retransmissions, slow.retransmissions);
        assert!(slow.backoff_ms > default.backoff_ms);
    }

    #[test]
    fn multi_recipient_envelope() {
        let mut pipe = FaultyPipe::reliable();
        let mut server = SmtpServer::new("mx");
        let client = SmtpClient::new("out");
        let env = Envelope {
            mail_from: "hr@corp".into(),
            rcpt_to: vec!["u1@corp".into(), "u2@corp".into(), "u3@corp".into()],
            email: Email::builder().body("all hands").build(),
        };
        let report = client.deliver_all(&mut pipe, &mut server, &[env]);
        assert_eq!(report.delivered, 1);
        match &server.take_events()[0] {
            crate::server::ServerEvent::MessageAccepted(m) => {
                assert_eq!(m.rcpt_to.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }
}
