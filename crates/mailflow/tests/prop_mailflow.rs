//! Property tests for the mailflow substrate: framing, grammar, and the
//! delivery pump must hold their contracts for arbitrary inputs and
//! arbitrary fault behaviour.

use proptest::prelude::*;
use sb_core::{
    AttackKind, CampaignSpec, DictionaryAttack, DictionaryKind, Intensity, MessageRef,
};
use sb_email::Email;
use sb_mailflow::{
    dot_stuff, dot_unstuff, AttackPlan, Command, DefensePolicy, Envelope, FaultConfig, FaultEvent,
    FaultyPipe, LineCodec, MailOrg, OrgConfig, OrgReport, Reply, SmtpClient, SmtpServer,
    TrafficMix, MAX_LINE_LEN,
};

/// A proptest-sized organization: small enough that a full multi-week
/// simulation (every message over the SMTP wire, weekly retrains) runs in
/// well under a second per shard count.
fn tiny_org(seed: u64, faulty: bool, defense: DefensePolicy, shards: usize) -> OrgConfig {
    let mut cfg = OrgConfig::small(seed);
    cfg.days = 10;
    cfg.retrain_every = 5;
    cfg.bootstrap_size = 120;
    cfg.corpus = sb_corpus::CorpusConfig::with_size(120, 0.5);
    cfg.traffic = TrafficMix {
        ham_per_day: 6,
        spam_per_day: 6,
    };
    if faulty {
        cfg.faults = FaultConfig {
            drop_chance: 0.02,
            corrupt_chance: 0.02,
        };
    }
    cfg.defense = defense;
    cfg.shards = shards;
    cfg
}

fn run_at(seed: u64, faulty: bool, defense: DefensePolicy, shards: usize) -> OrgReport {
    MailOrg::new(tiny_org(seed, faulty, defense, shards)).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The codec never panics, never emits a line longer than the limit,
    /// and never emits a line containing a terminator byte.
    #[test]
    fn line_codec_survives_arbitrary_bytes(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 0..20),
    ) {
        let mut codec = LineCodec::new();
        for chunk in &chunks {
            codec.feed(chunk);
            while let Some(item) = codec.next_line() {
                if let Ok(line) = item {
                    // Lossy UTF-8 expands each invalid byte to U+FFFD
                    // (3 bytes), so the char budget is the byte budget ×3.
                    prop_assert!(line.len() <= 3 * MAX_LINE_LEN);
                    prop_assert!(!line.contains('\n'));
                }
            }
        }
    }

    /// Byte-preserving framing: text split into chunks at arbitrary points
    /// reassembles into exactly the original lines.
    #[test]
    fn line_codec_reassembles_split_streams(
        lines in proptest::collection::vec("[a-zA-Z0-9 .:<>@-]{0,80}", 1..15),
        split in 1usize..7,
    ) {
        let wire: String = lines.iter().map(|l| format!("{l}\r\n")).collect();
        let bytes = wire.as_bytes();
        let mut codec = LineCodec::new();
        let mut got = Vec::new();
        for chunk in bytes.chunks(split) {
            codec.feed(chunk);
            while let Some(item) = codec.next_line() {
                got.push(item.expect("short ASCII lines never overflow"));
            }
        }
        prop_assert_eq!(got, lines);
    }

    /// Dot-stuffing round-trips any body (after newline normalization,
    /// which dot_stuff performs by construction).
    #[test]
    fn dot_stuffing_roundtrips(body in "[ -~\n]{0,500}") {
        let normalized = body.replace("\r\n", "\n");
        let wire = dot_stuff(&normalized);
        // Every wire line is CRLF-terminated; the last is the lone dot.
        let mut lines: Vec<String> = wire
            .split("\r\n")
            .map(str::to_owned)
            .collect();
        let trailing = lines.pop();
        prop_assert_eq!(trailing.as_deref(), Some("")); // trailing CRLF
        let dot = lines.pop();
        prop_assert_eq!(dot.as_deref(), Some("."));
        // No line between DATA and the terminator is a bare dot.
        prop_assert!(lines.iter().all(|l| l != "."));
        prop_assert_eq!(dot_unstuff(&lines), normalized);
    }

    /// The command grammar round-trips every well-formed address.
    #[test]
    fn command_roundtrip_addresses(
        local in "[a-z][a-z0-9._-]{0,15}",
        domain in "[a-z][a-z0-9.-]{0,15}",
    ) {
        let addr = format!("{local}@{domain}");
        let rendered = Command::MailFrom(addr.clone()).render();
        prop_assert_eq!(Command::parse(&rendered), Ok(Command::MailFrom(addr.clone())));
        let rendered = Command::RcptTo(addr.clone()).render();
        prop_assert_eq!(Command::parse(&rendered), Ok(Command::RcptTo(addr)));
    }

    /// The server never panics and always answers commands with *some*
    /// reply, whatever line noise arrives outside DATA mode.
    #[test]
    fn server_total_on_arbitrary_lines(
        lines in proptest::collection::vec("[ -~]{0,120}", 0..40),
    ) {
        let mut server = SmtpServer::new("mx.fuzz");
        let mut saw_reply = false;
        for l in &lines {
            if let Some(r) = server.handle_line(l) {
                saw_reply = true;
                // Reply lines themselves must round-trip the reply grammar.
                prop_assert!(Reply::parse(&r.render()).is_some());
            }
        }
        // Unless every line landed in DATA mode (requires a precise command
        // prefix, which random lines essentially never produce), something
        // replied. Don't assert when `lines` is empty.
        if !lines.is_empty() {
            let _ = saw_reply; // soft property; hard asserts above
        }
        let _ = server.take_events();
    }

    /// Delivery accounting balances for any fault rates: every envelope is
    /// either delivered or reported failed, and the pump terminates.
    #[test]
    fn delivery_accounting_balances(
        drop_pct in 0u32..30,
        corrupt_pct in 0u32..30,
        seed in any::<u64>(),
        n_msgs in 1usize..8,
    ) {
        let mut pipe = FaultyPipe::seeded(
            FaultConfig {
                drop_chance: f64::from(drop_pct) / 100.0,
                corrupt_chance: f64::from(corrupt_pct) / 100.0,
            },
            seed,
        );
        let mut server = SmtpServer::new("mx");
        let client = SmtpClient::new("out");
        let envs: Vec<Envelope> = (0..n_msgs)
            .map(|i| {
                Envelope::to_one(
                    format!("s{i}@a"),
                    "v@corp",
                    Email::builder().body(format!("msg {i}\nsecond line")).build(),
                )
            })
            .collect();
        let report = client.deliver_all(&mut pipe, &mut server, &envs);
        prop_assert_eq!(report.delivered + report.failed.len(), n_msgs);
        // Server-side acceptances can exceed client-side confirmations
        // (lost 250s) but never the number of envelopes times attempts.
        let accepted = server
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, sb_mailflow::ServerEvent::MessageAccepted(_)))
            .count();
        prop_assert!(accepted >= report.delivered);
    }

    /// On a reliable pipe, delivery is lossless and content-preserving for
    /// arbitrary printable bodies.
    #[test]
    fn reliable_delivery_preserves_content(body in "[ -~\n]{0,300}") {
        let mut pipe = FaultyPipe::reliable();
        let mut server = SmtpServer::new("mx");
        let client = SmtpClient::new("out");
        let email = Email::builder().subject("prop").body(body.clone()).build();
        let env = Envelope::to_one("a@b", "c@d", email);
        let report = client.deliver_all(&mut pipe, &mut server, &[env]);
        prop_assert_eq!(report.delivered, 1);
        let events = server.take_events();
        let got = events
            .iter()
            .find_map(|e| match e {
                sb_mailflow::ServerEvent::MessageAccepted(m) => Some(&m.email),
                _ => None,
            })
            .expect("accepted");
        // Render normalizes trailing whitespace; compare trimmed.
        let expect = body.replace("\r\n", "\n");
        prop_assert_eq!(got.body().trim_end(), expect.trim_end());
    }
}

proptest! {
    // Each case runs three full organization simulations; a handful of
    // cases already covers seeds, wire faults, and both defense shapes.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole invariant of the sharded mailflow: for arbitrary
    /// seeds, wire-fault settings, and retrain defenses, the weekly
    /// report is **bit-identical** for shard counts 1, 2, and 4 — every
    /// rate, counter, fault statistic, and RONI screening decision.
    #[test]
    fn weekly_reports_are_bit_identical_across_shard_counts(
        seed in any::<u64>(),
        faulty in any::<bool>(),
        roni in any::<bool>(),
    ) {
        let defense = if roni { DefensePolicy::Roni } else { DefensePolicy::None };
        let baseline = run_at(seed, faulty, defense, 1);
        for shards in [2usize, 4] {
            let sharded = run_at(seed, faulty, defense, shards);
            prop_assert_eq!(
                &baseline,
                &sharded,
                "shards={} diverged from the single-shard report",
                shards
            );
        }
    }

    /// The scenario-engine extension of the invariant: two *overlapping*
    /// campaigns (different dictionaries, staggered windows, one
    /// targeted) over a *skewed* per-user traffic mix still produce
    /// bit-identical weekly reports for shard counts 1, 2, and 4 — with
    /// and without RONI screening the merged pool.
    #[test]
    fn overlapping_campaigns_are_bit_identical_across_shard_counts(
        seed in any::<u64>(),
        roni in any::<bool>(),
        stagger in 1u32..5,
    ) {
        let defense = if roni { DefensePolicy::Roni } else { DefensePolicy::None };
        let build = |shards: usize| {
            let mut cfg = tiny_org(seed, false, defense, shards);
            // Heterogeneous per-user rates (same 12/day organization-wide
            // volume as tiny_org, skewed across the 5 users).
            cfg.user_traffic = vec![
                TrafficMix { ham_per_day: 3, spam_per_day: 0 },
                TrafficMix { ham_per_day: 0, spam_per_day: 3 },
                TrafficMix { ham_per_day: 1, spam_per_day: 1 },
                TrafficMix { ham_per_day: 2, spam_per_day: 1 },
                TrafficMix { ham_per_day: 0, spam_per_day: 1 },
            ];
            // Campaign A: targeted Usenet burst over the first week.
            let mut early = AttackPlan::new(
                1,
                3,
                Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(1_000))),
            );
            early.end_day = Some(7);
            early.targets = Some(vec![0, 2]);
            // Campaign B: open-ended flood over a different dictionary,
            // starting mid-window, so the two overlap on days
            // `1 + stagger ..= 7`. (A Usenet truncation, not the full
            // Aspell lexicon: 98k-word bodies would dominate the suite's
            // runtime without adding shard-invariance coverage.)
            let late = AttackPlan::new(
                1 + stagger,
                2,
                Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(2_500))),
            );
            cfg.attacks = vec![early, late];
            MailOrg::new(cfg).run()
        };
        let baseline = build(1);
        for shards in [2usize, 4] {
            let sharded = build(shards);
            prop_assert_eq!(
                &baseline,
                &sharded,
                "overlapping campaigns diverged at shards={}",
                shards
            );
        }
    }

    /// Campaign API v2 extension of the invariant: a *ramped focused*
    /// campaign (declaratively named target, donor headers, linear
    /// intensity) overlapping a *bursty ham-chaff* campaign — built
    /// through the fallible `OrgConfig::build_campaigns` path — still
    /// produces bit-identical weekly reports for shard counts 1, 2, and
    /// 4, with and without RONI.
    #[test]
    fn ramped_and_focused_campaigns_are_bit_identical_across_shard_counts(
        seed in any::<u64>(),
        roni in any::<bool>(),
        ramp_from in 1u32..4,
        ramp_to in 0u32..6,
        // tiny_org: traffic 6/6 over 5 users -> user 0 gets 2 ham/day,
        // so indices 0..20 resolve over the 10 simulated days.
        target_ham in 0u32..20,
    ) {
        let defense = if roni { DefensePolicy::Roni } else { DefensePolicy::None };
        let campaigns = vec![
            CampaignSpec {
                attack: AttackKind::Focused {
                    target: MessageRef { user: 0, nth_ham: target_ham },
                    guess_pct: 50,
                },
                start_day: 1,
                end_day: Some(8),
                intensity: Intensity::LinearRamp { from: ramp_from, to: ramp_to },
                targets: Some(vec![0, 2]),
            },
            CampaignSpec {
                attack: AttackKind::HamChaff { campaign_words: 10 },
                start_day: 2,
                end_day: None,
                intensity: Intensity::Bursts { period: 3, on_days: 1, per_day: 3 },
                targets: None,
            },
        ];
        let build = |shards: usize| {
            let mut cfg = tiny_org(seed, false, defense, shards);
            cfg.attacks = cfg
                .build_campaigns(&campaigns)
                .expect("declarations resolve against tiny_org");
            MailOrg::new(cfg).run()
        };
        let baseline = build(1);
        for shards in [2usize, 4] {
            let sharded = build(shards);
            prop_assert_eq!(
                &baseline,
                &sharded,
                "ramped + focused campaign mix diverged at shards={}",
                shards
            );
        }
    }

    /// The fault-plan tentpole invariant: a full chaos plan — a pipe-fault
    /// ramp feeding the deferred queue, a mid-period node crash, a mailbox
    /// loss, and an injected retrain failure (checkpoint fallback, stale
    /// week) all active at once — still produces bit-identical reports for
    /// shard counts 1, 2, and 4, and the accounting identity
    /// `delivered + failed + bounced + deferred == offered` holds.
    #[test]
    fn chaos_plans_are_bit_identical_across_shard_counts(
        seed in any::<u64>(),
        roni in any::<bool>(),
        crash_day in 2u32..5,
        peak_pct in 20u32..40,
    ) {
        let defense = if roni { DefensePolicy::Roni } else { DefensePolicy::None };
        let build = |shards: usize| {
            let mut cfg = tiny_org(seed, true, defense, shards);
            cfg.fault_plan.events = vec![
                FaultEvent::PipeFaults {
                    start_day: 3,
                    end_day: 7,
                    from: FaultConfig { drop_chance: 0.1, corrupt_chance: 0.05 },
                    to: FaultConfig {
                        drop_chance: f64::from(peak_pct) / 100.0,
                        corrupt_chance: 0.05,
                    },
                },
                FaultEvent::ShardCrash { day: crash_day, user: 1 },
                FaultEvent::MailboxLoss { day: 6, user: 2 },
                FaultEvent::RetrainFailure { week: 1 },
            ];
            MailOrg::new(cfg).run()
        };
        let baseline = build(1);
        let offered: usize = baseline.weeks.iter().map(|w| w.offered).sum();
        prop_assert_eq!(
            baseline.total_delivered
                + baseline.total_failed
                + baseline.total_bounced
                + baseline.total_deferred,
            offered,
            "chaos must never lose a message"
        );
        prop_assert!(
            baseline.weeks[0].recovered_from_checkpoint && baseline.weeks[1].degraded,
            "the injected retrain failure must surface in the report"
        );
        for shards in [2usize, 4] {
            let sharded = build(shards);
            prop_assert_eq!(
                &baseline,
                &sharded,
                "chaos plan diverged at shards={}",
                shards
            );
        }
    }

    /// Checkpointed recovery: running a chaos simulation to a week
    /// boundary, checkpointing, dropping the org, and resuming a fresh one
    /// from the checkpoint finishes with a report byte-identical to the
    /// uninterrupted run — deferred queue, quarantine buffer, mailboxes,
    /// and the serving filter all survive the round trip.
    #[test]
    fn checkpoint_resume_matches_uninterrupted_run(
        seed in any::<u64>(),
        roni in any::<bool>(),
        shards in 1usize..4,
    ) {
        let defense = if roni { DefensePolicy::Roni } else { DefensePolicy::None };
        let make = || {
            let mut cfg = tiny_org(seed, false, defense, shards);
            cfg.faults = FaultConfig::harsh();
            cfg.fault_plan.events = vec![
                FaultEvent::RetrainFailure { week: 1 },
                FaultEvent::ShardCrash { day: 2, user: 0 },
            ];
            cfg
        };
        let uninterrupted = MailOrg::new(make()).run();
        let mut org = MailOrg::new(make());
        org.step_week().expect("week 1 of 2");
        let ckpt = org.checkpoint();
        drop(org);
        let resumed = MailOrg::restore(make(), &ckpt)
            .expect("checkpoint matches the rebuilt config")
            .run();
        prop_assert_eq!(&resumed, &uninterrupted, "resume diverged from straight run");
    }
}
