//! Deterministic random-number plumbing.
//!
//! All experiments in this workspace are driven by a single `u64` master
//! seed. Independent streams for sub-tasks (folds, repetitions, targets,
//! attack construction, …) are derived through a [`SeedTree`], so results are
//! bit-reproducible regardless of execution order or thread count.
//!
//! Two PRNGs are provided:
//!
//! * [`SplitMix64`] — tiny, fast, used for seed derivation and places where
//!   stream quality demands are modest;
//! * [`Xoshiro256pp`] — the general-purpose generator used by corpus and
//!   attack sampling (xoshiro256++ by Blackman & Vigna, public domain).
//!
//! Both implement [`rand::RngCore`] + [`rand::SeedableRng`], so the whole
//! `rand` API (`random_range`, `random_bool`, shuffles, …) works on them.

use rand::rand_core::impls::fill_bytes_via_next;
use rand::{RngCore, SeedableRng};

/// SplitMix64 PRNG (Steele, Lea & Flood).
///
/// Primarily used to derive child seeds: the output of SplitMix64 over a
/// counter is equidistributed in 64 bits and decorrelates similar inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advance the state and return the next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // reference algorithm's name; not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next(self, dest)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// xoshiro256++ PRNG (Blackman & Vigna). 256 bits of state, period 2^256−1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the generator; state words are expanded from `seed` via SplitMix64
    /// as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next();
        }
        // An all-zero state is the one forbidden fixed point; the SplitMix64
        // expansion of any seed cannot produce it in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Advance the state and return the next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // reference algorithm's name; not an Iterator
    pub fn next(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    /// A uniform draw in `[0, n)` via Lemire's multiply-shift with
    /// rejection (Lemire 2019, "Fast Random Integer Generation in an
    /// Interval"). Unlike `next() % n`, every value in the range has
    /// exactly the same probability, and the computation stays on the full
    /// `u64` stream — no `usize` truncation on 32-bit targets.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below needs a nonempty range");
        // 2^64 mod n: draws whose low product word falls below this
        // threshold land in the over-represented residue classes and are
        // rejected. Expected retries < 1 for every n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = u128::from(self.next()) * u128::from(n);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next(self, dest)
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            return Self::new(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// A deterministic tree of seeds.
///
/// Every node is identified by the path of labels/indices taken from the
/// root; deriving the same path always yields the same seed, and sibling
/// paths yield decorrelated seeds. This is how one master seed fans out to
/// per-fold, per-repetition, per-target RNG streams without any coordination
/// between threads.
///
/// ```
/// use sb_stats::rng::SeedTree;
///
/// let root = SeedTree::new(42);
/// let fold3 = root.child("fold").index(3);
/// let a = fold3.rng();
/// let b = root.child("fold").index(3).rng();
/// assert_eq!(a, b); // same path, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Root of a seed tree.
    pub fn new(master_seed: u64) -> Self {
        // One SplitMix64 step decorrelates adjacent master seeds.
        Self {
            state: SplitMix64::new(master_seed).next(),
        }
    }

    /// Derive a child node from a string label (FNV-1a mixed into the state).
    pub fn child(&self, label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: SplitMix64::new(self.state ^ h).next(),
        }
    }

    /// Derive a child node from a numeric index.
    pub fn index(&self, i: u64) -> Self {
        Self {
            state: SplitMix64::new(self.state.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17)).next(),
        }
    }

    /// The raw 64-bit seed at this node.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A fresh general-purpose RNG seeded at this node.
    pub fn rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::new(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next();
        let second = rng.next();
        assert_ne!(first, second);
        // Determinism: same seed, same sequence.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next(), first);
        assert_eq!(rng2.next(), second);
    }

    #[test]
    fn splitmix_known_answer() {
        // Known-answer test vector: seed 0 produces these first three outputs
        // (verified against the reference implementation in the xoshiro paper).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn xoshiro_uniformity_smoke() {
        // Crude equidistribution check: mean of u01 samples near 0.5.
        let mut rng = Xoshiro256pp::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = Xoshiro256pp::new(3);
        for n in [1u64, 2, 3, 7, 1 << 20, u64::MAX - 3, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(n) < n, "out of range for n={n}");
            }
        }
        // n = 1 has a single admissible value.
        assert_eq!(rng.next_below(1), 0);
    }

    #[test]
    fn next_below_is_uniform_over_bounded_ranges() {
        // n = 6 does not divide 2^64, the exact shape the old
        // `next() % n` fold biased. With 120k draws each bucket expects
        // 20k (σ ≈ 129); a ±3% tolerance is ≈ 4.6σ, far beyond noise but
        // tight enough to catch any systematic residue-class bias.
        let mut rng = Xoshiro256pp::new(77);
        let n = 6u64;
        let draws = 120_000u64;
        let mut counts = [0u64; 6];
        for _ in 0..draws {
            counts[rng.next_below(n) as usize] += 1;
        }
        let expect = (draws / n) as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.03, "bucket {bucket} count {c} deviates {dev:.4}");
        }
    }

    /// bound = 1: the only admissible value is 0, the rejection threshold
    /// is 0 (nothing can be rejected), and the generator still advances —
    /// a degenerate bound must not freeze or bias the stream.
    #[test]
    fn next_below_one_always_returns_zero_and_advances_state() {
        let mut rng = Xoshiro256pp::new(41);
        for _ in 0..1_000 {
            assert_eq!(rng.next_below(1), 0);
        }
        // Each draw consumed exactly one u64 of the stream: a fresh
        // generator stepped the same number of times is in the same state.
        let mut stepped = Xoshiro256pp::new(41);
        for _ in 0..1_000 {
            stepped.next();
        }
        assert_eq!(rng.next(), stepped.next());
    }

    /// Power-of-two bounds: `2^64 mod 2^k == 0`, so the rejection
    /// threshold is 0 and Lemire's multiply-shift degenerates to taking
    /// the top `k` bits of one raw draw. Check that closed form exactly,
    /// for every power of two from 2^1 to 2^63.
    #[test]
    fn next_below_power_of_two_takes_top_bits_without_rejection() {
        for k in 1..=63u32 {
            let n = 1u64 << k;
            let mut rng = Xoshiro256pp::new(u64::from(k) + 7);
            let mut reference = rng.clone();
            for _ in 0..64 {
                let got = rng.next_below(n);
                let expect = reference.next() >> (64 - k);
                assert_eq!(got, expect, "k={k}: not the top-{k}-bits draw");
                assert!(got < n);
            }
        }
    }

    /// Bounds near `u64::MAX`: the rejection region (`2^64 mod n`) is a
    /// handful of values out of 2^64, so the loop must terminate on the
    /// first draw essentially always, stay in range, and reach the *top*
    /// of the range — a truncating or biased implementation would never
    /// produce values above 2^63.
    #[test]
    fn next_below_handles_bounds_near_u64_max() {
        for n in [u64::MAX, u64::MAX - 1, u64::MAX - 3, (1u64 << 63) + 1] {
            let mut rng = Xoshiro256pp::new(n ^ 0xDEAD_BEEF);
            let mut top_half = 0usize;
            for _ in 0..2_000 {
                let v = rng.next_below(n);
                assert!(v < n, "out of range for n={n}");
                if v >= n / 2 {
                    top_half += 1;
                }
            }
            // The top half of the range holds ~half the mass; even a very
            // unlucky stream lands there hundreds of times in 2k draws. A
            // 32-bit-truncating fold (the pre-PR 3 bug shape) would score 0.
            assert!(
                top_half > 500,
                "n={n}: only {top_half}/2000 draws in the top half — range truncated?"
            );
        }
    }

    /// The `2^64 mod n` rejection threshold itself: for n = 2^63 + 1 the
    /// over-represented residue region has size 2^63 − 1, i.e. the loop
    /// rejects nearly half of all raw draws — the worst case for
    /// termination. It must still finish (expected retries < 1) and stay
    /// uniform enough to hit both halves.
    #[test]
    fn next_below_survives_the_worst_case_rejection_rate() {
        let n = (1u64 << 63) + 1;
        let mut rng = Xoshiro256pp::new(9_000);
        let mut below_mid = 0usize;
        let draws = 4_000;
        for _ in 0..draws {
            let v = rng.next_below(n);
            assert!(v < n);
            if v < n / 2 {
                below_mid += 1;
            }
        }
        let frac = below_mid as f64 / draws as f64;
        assert!((frac - 0.5).abs() < 0.05, "below-midpoint fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "nonempty range")]
    fn next_below_zero_panics() {
        Xoshiro256pp::new(1).next_below(0);
    }

    #[test]
    fn next_below_is_deterministic() {
        let mut a = Xoshiro256pp::new(9);
        let mut b = Xoshiro256pp::new(9);
        let xs: Vec<u64> = (0..64).map(|_| a.next_below(1000)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_below(1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seed_tree_paths_are_stable_and_distinct() {
        let root = SeedTree::new(7);
        let a = root.child("corpus").index(0).seed();
        let b = root.child("corpus").index(1).seed();
        let c = root.child("attack").index(0).seed();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, SeedTree::new(7).child("corpus").index(0).seed());
    }

    #[test]
    fn seed_tree_label_order_matters() {
        let root = SeedTree::new(3);
        assert_ne!(
            root.child("a").child("b").seed(),
            root.child("b").child("a").seed()
        );
    }

    #[test]
    fn seed_tree_indices_do_not_collide_locally() {
        let root = SeedTree::new(11).child("fold");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(root.index(i).seed()), "collision at {i}");
        }
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut rng = Xoshiro256pp::new(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let s = [9u8; 32];
        let mut a = Xoshiro256pp::from_seed(s);
        let mut b = Xoshiro256pp::from_seed(s);
        assert_eq!(a.next(), b.next());
        let mut c = SplitMix64::from_seed([1, 2, 3, 4, 5, 6, 7, 8]);
        let mut d = SplitMix64::from_seed([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.next(), d.next());
    }
}
