//! # sb-stats — statistical substrate
//!
//! Numerical building blocks for the SpamBayes-poisoning reproduction:
//!
//! * [`special`] — log-gamma and regularized incomplete gamma functions,
//!   implemented from scratch (no external stats crate).
//! * [`chi2`] — chi-square CDF / survival function, including the fast
//!   even-degrees-of-freedom path used by SpamBayes' Fisher combining
//!   (Equation 4 of the paper).
//! * [`dist`] — Zipf, categorical (alias method), truncated log-normal and
//!   Bernoulli-subset samplers used by the synthetic corpus generator.
//! * [`rng`] — deterministic RNG plumbing: `SplitMix64`, `Xoshiro256pp`, and
//!   a [`rng::SeedTree`] for deriving independent per-experiment /
//!   per-fold / per-repetition streams from one master seed.
//! * [`summary`] — online (Welford) accumulators, percentiles and fixed-bin
//!   histograms used for reporting.
//!
//! Everything in this crate is deterministic given its inputs; nothing reads
//! the clock, the environment, or global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod dist;
pub mod rng;
pub mod special;
pub mod summary;

pub use chi2::{chi2_cdf, chi2_sf, chi2q_even};
pub use dist::{AliasSampler, LogNormalLen, Zipf};
pub use rng::{SeedTree, SplitMix64, Xoshiro256pp};
pub use summary::{Histogram, OnlineStats, Summary};
