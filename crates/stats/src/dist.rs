//! Samplers for the distributions the synthetic corpus and attacks need.
//!
//! * [`Zipf`] — exact table-based Zipf/zeta sampler over a finite rank space
//!   (the word-frequency law the ham/spam language models use);
//! * [`AliasSampler`] — Walker's alias method for arbitrary finite
//!   categorical distributions (strata and topic mixtures);
//! * [`LogNormalLen`] — truncated log-normal integer lengths (message token
//!   counts);
//! * [`bernoulli_subset`] — i.i.d. coin-flip subset selection (the focused
//!   attack's per-token guessing process, §3.3 of the paper).

use rand::Rng;

/// Exact Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k+1)^s`.
///
/// Implemented with a precomputed cumulative table and binary search, so
/// sampling is O(log n) with no rejection; construction is O(n). For the
/// vocabulary sizes used here (≤ ~150k) the table costs ~1 MB and is shared
/// per language model.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s ≥ 0`, `n ≥ 1`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating error leaving the last entry below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the rank space is a single element.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k < self.cdf.len());
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n` (rank 0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Walker alias-method sampler for a fixed categorical distribution.
///
/// O(n) construction, O(1) sampling. Weights need not be normalized; they
/// must be non-negative, finite, and not all zero.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasSampler {
    /// Build from unnormalized non-negative weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasSampler needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be finite, non-negative, not all zero"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1 up to rounding.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there is exactly zero categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Truncated log-normal sampler for integer lengths (message token counts).
///
/// `exp(μ + σZ)` rounded to the nearest integer and clamped to
/// `[min_len, max_len]`. `Z` is standard normal via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct LogNormalLen {
    mu: f64,
    sigma: f64,
    min_len: usize,
    max_len: usize,
}

impl LogNormalLen {
    /// Construct with location `mu`, scale `sigma`, truncation bounds.
    pub fn new(mu: f64, sigma: f64, min_len: usize, max_len: usize) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite());
        assert!(min_len >= 1 && min_len <= max_len);
        Self {
            mu,
            sigma,
            min_len,
            max_len,
        }
    }

    /// Convenience: the distribution whose median is `median` with shape `sigma`.
    pub fn with_median(median: f64, sigma: f64, min_len: usize, max_len: usize) -> Self {
        Self::new(median.ln(), sigma, min_len, max_len)
    }

    /// Draw one length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let z = standard_normal(rng);
        let v = (self.mu + self.sigma * z).exp();
        let v = v.round();
        if !v.is_finite() || v >= self.max_len as f64 {
            return self.max_len;
        }
        (v as usize).clamp(self.min_len, self.max_len)
    }
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Select each element of `items` independently with probability `p`.
///
/// This is exactly the paper's focused-attack knowledge model (§3.3): "the
/// attacker correctly guesses each word in the target with probability p".
pub fn bernoulli_subset<'a, T, R: Rng + ?Sized>(items: &'a [T], p: f64, rng: &mut R) -> Vec<&'a T> {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    items.iter().filter(|_| rng.random::<f64>() < p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.1);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_zero_is_most_likely() {
        let z = Zipf::new(5000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        assert!(z.pmf(100) > z.pmf(4999));
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(50, 1.2);
        let mut rng = Xoshiro256pp::new(1);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let emp = counts[k] as f64 / n as f64;
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.01 + 0.1 * exp,
                "rank {k}: emp {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn alias_matches_weights() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let a = AliasSampler::new(&w);
        let mut rng = Xoshiro256pp::new(2);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[a.sample(&mut rng)] += 1;
        }
        for i in 0..4 {
            let emp = counts[i] as f64 / n as f64;
            let exp = w[i] / 10.0;
            assert!((emp - exp).abs() < 0.005, "cat {i}: {emp} vs {exp}");
        }
    }

    #[test]
    fn alias_handles_degenerate_one_hot() {
        let a = AliasSampler::new(&[0.0, 0.0, 5.0]);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..1000 {
            assert_eq!(a.sample(&mut rng), 2);
        }
    }

    #[test]
    #[should_panic]
    fn alias_rejects_all_zero() {
        let _ = AliasSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn lognormal_respects_bounds() {
        let d = LogNormalLen::with_median(120.0, 0.8, 30, 600);
        let mut rng = Xoshiro256pp::new(4);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((30..=600).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let d = LogNormalLen::with_median(120.0, 0.6, 1, 100_000);
        let mut rng = Xoshiro256pp::new(5);
        let mut v: Vec<usize> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let med = v[10_000] as f64;
        assert!((med - 120.0).abs() < 12.0, "median {med}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256pp::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bernoulli_subset_rate() {
        let items: Vec<u32> = (0..10_000).collect();
        let mut rng = Xoshiro256pp::new(7);
        let picked = bernoulli_subset(&items, 0.3, &mut rng);
        let rate = picked.len() as f64 / items.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bernoulli_subset_extremes() {
        let items = [1, 2, 3];
        let mut rng = Xoshiro256pp::new(8);
        assert!(bernoulli_subset(&items, 0.0, &mut rng).is_empty());
        assert_eq!(bernoulli_subset(&items, 1.0, &mut rng).len(), 3);
    }
}
