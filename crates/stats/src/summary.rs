//! Descriptive statistics used by the experiment harness and reports.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm) with min/max.
///
/// Numerically stable for long streams; merging two accumulators is exact,
/// which lets parallel folds combine their partial statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// One-shot summary of a finite sample, including order statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice. Returns a zeroed summary for the empty slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: f64::NAN,
                median: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut stats = OnlineStats::new();
        for &x in xs {
            stats.push(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Self {
            n: xs.len(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            median: percentile_sorted(&sorted, 50.0),
            max: stats.max(),
        }
    }
}

/// Percentile (0–100) of an ascending-sorted slice with linear interpolation.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!((0.0..=100.0).contains(&pct), "percentile must be in [0,100]");
    assert!(!sorted.is_empty(), "percentile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Fixed-bin histogram over a closed interval, used for the token-score
/// distributions of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// `bins` equal-width bins over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo < hi, "lo must be < hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Add an observation; values outside `[lo, hi]` clamp to the edge bins.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if t <= 0.0 {
            0
        } else if t >= 1.0 {
            bins - 1
        } else {
            ((t * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Inclusive-exclusive bin edges `(left, right)` for bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Render a compact one-line sparkline-ish ASCII bar view (for reports).
    pub fn ascii(&self) -> String {
        const GLYPHS: [char; 8] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let lvl = (c as f64 / max as f64 * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[lvl]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 5.0 + 1.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..400] {
            left.push(x);
        }
        for &x in &xs[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_median_interpolates() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.n, 4);
        let s1 = Summary::from_slice(&[42.0]);
        assert_eq!(s1.median, 42.0);
        assert_eq!(s1.std_dev, 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 10.0);
        assert!((percentile_sorted(&xs, 75.0) - 4.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(0.05); // bin 0
        h.push(0.95); // bin 9
        h.push(-1.0); // clamps to bin 0
        h.push(2.0); // clamps to bin 9
        h.push(0.5); // bin 5
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 5);
        let (l, r) = h.bin_edges(5);
        assert!((l - 0.5).abs() < 1e-12 && (r - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_ascii_is_stable_width() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        assert_eq!(h.ascii().chars().count(), 20);
    }
}
