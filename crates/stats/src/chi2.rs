//! Chi-square distribution functions.
//!
//! SpamBayes combines per-token spam scores with Fisher's method (Equation 4
//! of the paper): the statistic `−2 Σ ln f(w)` is chi-square distributed with
//! `2n` degrees of freedom under the null, so the message score needs the
//! chi-square CDF/survival function.
//!
//! Because the degrees of freedom are always even (`2n` for `n` tokens),
//! SpamBayes uses the closed-form survival series
//! `Q(x | 2n) = e^{−m} Σ_{i<n} m^i / i!` with `m = x/2`; [`chi2q_even`]
//! reproduces it (including its numerically careful term accumulation), and
//! the general-dof [`chi2_cdf`] / [`chi2_sf`] are provided for completeness
//! and for cross-checking in tests.

use crate::special::{gamma_p, gamma_q};

/// CDF of the chi-square distribution with `dof` degrees of freedom:
/// `P(X ≤ x)`.
pub fn chi2_cdf(x: f64, dof: u32) -> f64 {
    assert!(dof > 0, "chi2_cdf requires dof > 0");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(f64::from(dof) / 2.0, x / 2.0)
}

/// Survival function of the chi-square distribution: `P(X ≥ x) = 1 − CDF`.
pub fn chi2_sf(x: f64, dof: u32) -> f64 {
    assert!(dof > 0, "chi2_sf requires dof > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(f64::from(dof) / 2.0, x / 2.0)
}

/// Fast chi-square survival function for even degrees of freedom `2·half_dof`,
/// the exact routine SpamBayes' `chi2Q` implements.
///
/// `chi2q_even(x, n) = e^{−x/2} Σ_{i=0}^{n−1} (x/2)^i / i!`
///
/// For large `x` the result underflows to 0, which is the desired behaviour
/// in Fisher combining (overwhelming evidence). Returns a value in `[0, 1]`.
///
/// Both accumulation regimes update the term incrementally
/// (`term ×= m / i`) rather than recomputing `m^i / i!` per index — the
/// naïve form overflows `m^i` long before `i!` can cancel it — and both
/// stop early once the series has converged: past the largest term
/// (`i > m`) the terms decay strictly geometrically, so once a term can no
/// longer move the sum the remaining `half_dof − i` iterations are dead
/// work. With `max_discriminators`-sized messages this is invisible, but a
/// caller combining tens of thousands of clues (very long messages under a
/// raised cap) would otherwise pay the full `half_dof` loop *and*, on the
/// pre-fix code path, lose the answer to overflow.
pub fn chi2q_even(x: f64, half_dof: u32) -> f64 {
    assert!(half_dof > 0, "chi2q_even requires half_dof > 0");
    if x <= 0.0 {
        return 1.0;
    }
    let m = x / 2.0;
    // exp(-m) goes subnormal at m ≈ 708 (and to 0 at ≈ 745): below that
    // the starting term keeps only a handful of mantissa bits, and every
    // incremental product inherits the damage — the sum converges to a
    // value off in the third decimal. Switch to log space with margin.
    if m > 700.0 {
        return chi2q_even_log(m, half_dof);
    }
    let mut term = (-m).exp();
    let mut sum = term;
    for i in 1..half_dof {
        term *= m / f64::from(i);
        sum += term;
        // Converged: beyond the peak every later term is smaller by at
        // least `m / i < 1`, so nothing representable remains to add.
        if f64::from(i) > m && term < sum * f64::EPSILON {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// Log-space accumulation for `m > 700`: track `ln(e^{−m} m^i / i!)` with
/// the same incremental update (`ln_term += ln m − ln i`) and sum the
/// terms that survive the exp underflow cutoff at full precision.
fn chi2q_even_log(m: f64, half_dof: u32) -> f64 {
    let ln_m = m.ln();
    let mut ln_term = -m; // i = 0: ln(e^{−m} · m⁰/0!)
    let mut sum = ln_term.exp();
    for i in 1..half_dof {
        ln_term += ln_m - f64::from(i).ln();
        sum += ln_term.exp();
        // Past the peak and below the exp(-745) underflow floor: every
        // remaining term exponentiates to exactly 0.
        if f64::from(i) > m && ln_term < -745.0 {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn cdf_known_values() {
        // scipy.stats.chi2.cdf(1.0, 2) = 0.3934693402873666
        assert!(close(chi2_cdf(1.0, 2), 0.393_469_340_287_366_6, 1e-12));
        // chi2.cdf(5.0, 4) = 0.7127025048163542
        assert!(close(chi2_cdf(5.0, 4), 0.712_702_504_816_354_2, 1e-12));
        // chi2.cdf(10.0, 10) = 0.5595067149347875
        assert!(close(chi2_cdf(10.0, 10), 0.559_506_714_934_787_5, 1e-12));
        // Odd dof exercised through the general path:
        // chi2.cdf(3.0, 3) = 0.6083748237289109
        assert!(close(chi2_cdf(3.0, 3), 0.608_374_823_728_910_9, 1e-10));
    }

    #[test]
    fn sf_complements_cdf() {
        for &dof in &[1u32, 2, 3, 8, 20, 100, 300] {
            for &x in &[0.1, 1.0, 5.0, 25.0, 120.0] {
                let s = chi2_cdf(x, dof) + chi2_sf(x, dof);
                assert!(close(s, 1.0, 1e-12), "dof={dof} x={x}: {s}");
            }
        }
    }

    #[test]
    fn even_dof_fast_path_matches_general() {
        for &n in &[1u32, 2, 5, 20, 75, 150] {
            for &x in &[0.0, 0.5, 2.0, 10.0, 40.0, 200.0, 600.0] {
                let fast = chi2q_even(x, n);
                let general = chi2_sf(x, 2 * n);
                assert!(
                    (fast - general).abs() < 1e-9,
                    "n={n} x={x}: fast={fast} general={general}"
                );
            }
        }
    }

    #[test]
    fn chi2q_even_exponential_case() {
        // With 2 dof (half_dof = 1) the survival function is exp(-x/2).
        for &x in &[0.0, 0.4, 1.0, 3.0, 9.0] {
            assert!(close(chi2q_even(x, 1), (-x / 2.0).exp(), 1e-14));
        }
    }

    #[test]
    fn chi2q_even_extreme_inputs() {
        // Overwhelming evidence must underflow to exactly 0, never NaN.
        let v = chi2q_even(1.0e6, 150);
        assert_eq!(v, 0.0);
        // x = 0 is certainty of the null.
        assert_eq!(chi2q_even(0.0, 150), 1.0);
        // Large-but-not-underflowing region stays in [0,1] and finite.
        for &x in &[1400.0, 1490.0, 1600.0, 5000.0] {
            let q = chi2q_even(x, 150);
            assert!((0.0..=1.0).contains(&q), "x={x} q={q}");
            assert!(q.is_finite());
        }
    }

    /// The "very long message" regime: huge even dof, checked against the
    /// general-dof survival function across the distribution's bulk (where
    /// the old naive-term accumulation lost the answer) and both sides of
    /// the `m > 745` log-space boundary.
    #[test]
    fn chi2q_even_large_dof_matches_general() {
        for &n in &[500u32, 2_000, 10_000] {
            let nf = f64::from(n);
            for &x in &[nf, 1.8 * nf, 2.0 * nf, 2.2 * nf, 3.0 * nf] {
                let fast = chi2q_even(x, n);
                let general = chi2_sf(x, 2 * n);
                assert!(
                    (fast - general).abs() < 1e-9 * (1.0 + general.abs()),
                    "n={n} x={x}: fast={fast} general={general}"
                );
                assert!((0.0..=1.0).contains(&fast), "n={n} x={x}: {fast}");
            }
        }
    }

    /// Straddle the log-space switchover (m = x/2 = 700) with dof large
    /// enough that the sum is not yet saturated: both regimes must agree
    /// with the general path and with each other's limits. (The old
    /// switchover at 745 let the direct path start from a *subnormal*
    /// `exp(−m)` — ~3 mantissa bits — and return values off by ~2e-3;
    /// this test pins the fixed boundary.)
    #[test]
    fn chi2q_even_log_space_boundary_is_seamless() {
        for &n in &[400u32, 760, 2_000] {
            let mut prev = f64::INFINITY;
            for &x in &[1380.0, 1399.9, 1400.1, 1480.0, 1500.0, 1600.0] {
                let q = chi2q_even(x, n);
                let general = chi2_sf(x, 2 * n);
                assert!(
                    (q - general).abs() < 1e-9 * (1.0 + general.abs()),
                    "n={n} x={x}: fast={q} general={general}"
                );
                assert!(q <= prev + 1e-12, "not monotone across boundary: n={n} x={x}");
                prev = q;
            }
        }
    }

    /// Precomputed high-precision references on both sides of the m = 700
    /// (x = 1400) log-space switchover. Each Q was computed with 80-digit
    /// decimal arithmetic as `Q = e^{-m} · Σ_{i<n} m^i / i!` with m = x/2
    /// (python `decimal`, prec 80) and rounded to the nearest f64; the x
    /// values are exact binary floats, so both paths are being compared
    /// against the true value of the exact expression they implement, not
    /// against another f64 approximation.
    #[test]
    fn chi2q_even_switchover_matches_high_precision_references() {
        #[rustfmt::skip]
        const REFS: &[(f64, u32, f64)] = &[
            // direct-path side (m <= 700)
            (1396.0, 700, 0.5251417347261353),
            (1399.5, 700, 0.49874357854088724),
            (1400.0, 700, 0.4949737599443175),
            (1396.0, 720, 0.7927326231928974),
            (1399.5, 720, 0.7731961458691528),
            (1400.0, 720, 0.770325565298529),
            (1392.0, 680, 0.26710805928929254),
            // log-space side (m > 700)
            (1400.5, 700, 0.49120528744114006),
            (1404.0, 700, 0.4648917338357162),
            (1400.5, 720, 0.767435439683421),
            (1404.0, 720, 0.7466690644408106),
            (1408.0, 680, 0.1781355157101219),
        ];
        for &(x, n, reference) in REFS {
            let q = chi2q_even(x, n);
            let rel = (q - reference).abs() / reference;
            assert!(
                rel < 1e-12,
                "x={x} n={n}: got {q:.17e}, reference {reference:.17e}, rel err {rel:.2e}"
            );
        }
    }

    /// Monotonicity property across the seam: Q(x) is strictly decreasing
    /// in x, and a fine sweep through x = 1400 must never tick upward —
    /// any discontinuity between the direct and log-space accumulations
    /// would show up as a jump at the switchover.
    #[test]
    fn chi2q_even_fine_sweep_is_monotone_through_the_switchover() {
        for &n in &[680u32, 700, 720] {
            let mut prev = f64::INFINITY;
            let mut x = 1390.0;
            while x <= 1410.0 {
                let q = chi2q_even(x, n);
                assert!(
                    q <= prev + 1e-13,
                    "n={n}: Q({x}) = {q:.17e} exceeds Q({:.2}) = {prev:.17e} across the seam",
                    x - 0.25
                );
                prev = q;
                x += 0.25;
            }
        }
    }

    /// The convergence early-exit: with dof far above the statistic the
    /// series saturates at 1 after ~m terms; the remaining millions of
    /// iterations must be skipped (this test would take seconds without
    /// the exit) without changing the answer.
    #[test]
    fn chi2q_even_early_exit_is_exact() {
        let q = chi2q_even(10.0, 50_000_000);
        assert!((q - 1.0).abs() < 1e-12, "q = {q}");
        // And in the log-space regime.
        let q = chi2q_even(1600.0, 50_000_000);
        assert!((q - 1.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn chi2q_even_monotone_decreasing_in_x() {
        for &n in &[1u32, 10, 150] {
            let mut prev = 1.0;
            for i in 0..500 {
                let x = i as f64;
                let q = chi2q_even(x, n);
                assert!(q <= prev + 1e-12, "n={n} x={x}");
                prev = q;
            }
        }
    }

    #[test]
    fn chi2q_even_monotone_increasing_in_dof() {
        // More degrees of freedom shift mass right: survival grows with n.
        for &x in &[1.0, 10.0, 50.0] {
            let mut prev = 0.0;
            for n in 1..100u32 {
                let q = chi2q_even(x, n);
                assert!(q >= prev - 1e-12, "x={x} n={n}");
                prev = q;
            }
        }
    }
}
