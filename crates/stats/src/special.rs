//! Special functions: log-gamma and the regularized incomplete gamma
//! functions, implemented from scratch.
//!
//! These are the only transcendental functions the reproduction needs beyond
//! `libm`: the chi-square CDF in SpamBayes' Fisher combining step (Equation 4
//! of the paper) is a regularized incomplete gamma evaluated at half the
//! degrees of freedom.
//!
//! Implementations follow the classic Lanczos / series / continued-fraction
//! decomposition (cf. Numerical Recipes §6.1–6.2), tuned for `f64`.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7, n = 9 coefficients; absolute
/// error is below 1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_72,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`, monotonically increasing in `x`.
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise, the standard numerically stable split.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series representation of `P(a, x)`; converges fast for `x < a + 1`.
///
/// Near the `x ≈ a` boundary convergence needs ~`√(70·a)` terms, so the
/// iteration cap scales with `a` (a flat 500 silently truncated the series
/// for `a ≳ 3500`, i.e. chi-square dof ≳ 7000 — the "very long message"
/// regime of `chi2::chi2q_even`'s boundary tests).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let max_iter = 500 + (70.0 * a).sqrt() as usize;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..max_iter {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz algorithm);
/// converges fast for `x ≥ a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    // Like the series, Lentz iterations grow with `a` near `x ≈ a`.
    let max_iter = 500 + (70.0 * a).sqrt() as usize;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=max_iter {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = -x + a * x.ln() - ln_gamma(a);
    (log_prefix.exp() * h).clamp(0.0, 1.0)
}

/// Log of the factorial, `ln(n!)`, exact table for small `n`, `ln_gamma`
/// otherwise. Used by count-based samplers in `dist`.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE: [f64; 11] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln(2!)
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
    ];
    if n < TABLE.len() as u64 {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(0.5) = √π; Γ(5) = 24; Γ(10) = 362880.
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12));
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(close(ln_gamma(10.0), 362_880.0f64.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        for &x in &[0.1, 0.7, 1.3, 2.5, 7.9, 33.0, 150.5] {
            assert!(
                close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11),
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert!(gamma_p(3.0, 1e9) > 1.0 - 1e-12);
        assert!(close(gamma_q(3.0, 0.0), 1.0, 1e-15));
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 − e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(
                close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12),
                "P(1,{x})"
            );
        }
        // P(0.5, x) = erf(√x); erf(1) ≈ 0.8427007929497149
        assert!(close(gamma_p(0.5, 1.0), 0.842_700_792_949_714_9, 1e-10));
        // mpmath: gammainc(2.5, 0, 3.0)/gamma(2.5) = 0.6937810815867216
        assert!(close(gamma_p(2.5, 3.0), 0.693_781_081_586_721_6, 1e-10));
        // scipy.special.gammainc(10, 10) = 0.5420702855281478
        assert!(close(gamma_p(10.0, 10.0), 0.542_070_285_528_147_8, 1e-10));
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 7.0, 40.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!(close(s, 1.0, 1e-12), "P+Q at a={a} x={x} gives {s}");
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        for &a in &[0.5, 1.0, 3.0, 12.0] {
            let mut prev = 0.0;
            for i in 1..200 {
                let x = i as f64 * 0.25;
                let p = gamma_p(a, x);
                assert!(p >= prev - 1e-14, "non-monotone at a={a} x={x}");
                prev = p;
            }
        }
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let mut acc = 0.0f64;
        for n in 1..=20u64 {
            acc += (n as f64).ln();
            assert!(close(ln_factorial(n), acc, 1e-12), "n={n}");
        }
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
