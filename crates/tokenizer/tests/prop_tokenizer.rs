//! Property tests: tokenization is total and its outputs obey the size and
//! shape rules regardless of input.

use proptest::prelude::*;
use sb_email::Email;
use sb_tokenizer::{Tokenizer, TokenizerOptions};

proptest! {
    #[test]
    fn never_panics_on_arbitrary_bodies(body in "\\PC{0,600}") {
        let mut e = Email::new();
        e.set_body(body);
        let _ = Tokenizer::new().tokenize(&e);
    }

    #[test]
    fn never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut e = Email::new();
        e.set_body(String::from_utf8_lossy(&bytes).into_owned());
        let _ = Tokenizer::new().tokenize(&e);
    }

    #[test]
    fn never_panics_on_arbitrary_headers(
        name in "[A-Za-z][A-Za-z0-9-]{0,15}",
        value in "\\PC{0,100}",
        body in "[ -~]{0,100}",
    ) {
        let mut e = Email::new();
        e.push_header(name, value);
        e.set_body(body);
        let _ = Tokenizer::new().tokenize(&e);
    }

    #[test]
    fn plain_word_tokens_respect_length_bounds(body in "([a-z]{1,20} ){0,30}") {
        let mut e = Email::new();
        e.set_body(body);
        let opts = TokenizerOptions::default();
        for tok in Tokenizer::new().tokenize(&e) {
            if !tok.contains(':') {
                let n = tok.chars().count();
                prop_assert!(
                    n >= opts.min_word_size && n <= opts.max_word_size,
                    "token {tok:?} has length {n}"
                );
            } else {
                prop_assert!(tok.starts_with("skip:"), "unexpected prefixed token {tok:?}");
            }
        }
    }

    #[test]
    fn token_set_is_sorted_and_unique(body in "\\PC{0,300}") {
        let mut e = Email::new();
        e.set_body(body);
        let set = Tokenizer::new().token_set(&e);
        for w in set.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly ascending: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn set_semantics_idempotent_under_body_repetition(body in "([a-z]{3,10} ){1,20}") {
        // Repeating a body must not change the token set — the property the
        // attacks rely on: one occurrence of a dictionary word is enough.
        let mut once = Email::new();
        once.set_body(body.clone());
        let mut thrice = Email::new();
        thrice.set_body(format!("{body} {body} {body}"));
        let tk = Tokenizer::new();
        prop_assert_eq!(tk.token_set(&once), tk.token_set(&thrice));
    }

    #[test]
    fn tokens_never_contain_whitespace(body in "\\PC{0,300}") {
        let mut e = Email::new();
        e.set_body(body);
        // These SpamBayes-inherited prefixes contain a literal space; the
        // remainder of such tokens must still be whitespace-free.
        const SPACED_PREFIXES: [&str; 4] =
            ["skip:", "subject:skip:", "email name:", "email addr:"];
        for tok in Tokenizer::new().tokenize(&e) {
            let rest = SPACED_PREFIXES
                .iter()
                .find_map(|p| tok.strip_prefix(p))
                .unwrap_or(&tok);
            if tok.starts_with("skip:") || tok.starts_with("subject:skip:") {
                // skip tokens are "skip:<char> <bucket>"; tail is digits.
                prop_assert!(rest.split(' ').count() <= 2, "token {tok:?}");
            } else {
                prop_assert!(!rest.contains(char::is_whitespace), "token {tok:?}");
            }
        }
    }
}
