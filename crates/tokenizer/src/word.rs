//! Word-level token rules (SpamBayes `tokenize_word` equivalents).

use crate::options::TokenizerOptions;

/// Outcome of pushing one raw word through the word rules.
pub(crate) fn tokenize_word(word: &str, opts: &TokenizerOptions, out: &mut Vec<String>) {
    let trimmed = trim_punct(word);
    if trimmed.is_empty() {
        return;
    }
    // Embedded mail address?
    if opts.crack_addresses && trimmed.contains('@') {
        if let Some((local, domain)) = split_address(trimmed) {
            out.push(format!("email name:{}", fold(local, opts)));
            out.push(format!("email addr:{}", fold(domain, opts)));
            return;
        }
    }
    let len = trimmed.chars().count();
    if len < opts.min_word_size {
        return; // too short: contributes nothing (SpamBayes drops it)
    }
    if len > opts.max_word_size {
        if opts.generate_long_skips {
            // SpamBayes: "skip:%c %d" with the length bucketed to tens.
            let first = trimmed.chars().next().unwrap_or('?');
            out.push(format!("skip:{} {}", first, len / 10 * 10));
        }
        return;
    }
    out.push(fold(trimmed, opts));
}

/// Case folding per options.
pub(crate) fn fold(s: &str, opts: &TokenizerOptions) -> String {
    if opts.lowercase {
        s.to_lowercase()
    } else {
        s.to_owned()
    }
}

/// Strip leading/trailing punctuation (quotes, brackets, sentence marks) but
/// keep interior punctuation ("don't", "e-mail", "u.s.a" survive).
pub(crate) fn trim_punct(word: &str) -> &str {
    word.trim_matches(|c: char| {
        c.is_ascii_punctuation() && c != '$' // '$' is famously spammy; keep it
    })
}

/// Split `local@domain`, requiring non-empty halves and a dot in the domain
/// or a short bare host.
pub(crate) fn split_address(word: &str) -> Option<(&str, &str)> {
    let at = word.find('@')?;
    let (local, rest) = word.split_at(at);
    let domain = &rest[1..];
    if local.is_empty() || domain.is_empty() || domain.contains('@') {
        return None;
    }
    Some((local, domain))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(word: &str) -> Vec<String> {
        let mut out = Vec::new();
        tokenize_word(word, &TokenizerOptions::default(), &mut out);
        out
    }

    #[test]
    fn normal_word_is_lowercased() {
        assert_eq!(run("Hello"), vec!["hello"]);
    }

    #[test]
    fn short_words_dropped() {
        assert!(run("a").is_empty());
        assert!(run("ab").is_empty());
        assert_eq!(run("abc"), vec!["abc"]);
    }

    #[test]
    fn long_words_become_skip_tokens() {
        let t = run("supercalifragilistic"); // 20 chars
        assert_eq!(t, vec!["skip:s 20"]);
        let t = run("abcdefghijklm"); // 13 chars
        assert_eq!(t, vec!["skip:a 10"]);
    }

    #[test]
    fn twelve_char_word_kept_thirteen_skipped() {
        assert_eq!(run("abcdefghijkl"), vec!["abcdefghijkl"]);
        assert_eq!(run("abcdefghijklm"), vec!["skip:a 10"]);
    }

    #[test]
    fn punctuation_trimmed_but_interior_kept() {
        assert_eq!(run("(bid,"), vec!["bid"]);
        assert_eq!(run("don't"), vec!["don't"]);
        assert_eq!(run("\"e-mail\""), vec!["e-mail"]);
    }

    #[test]
    fn dollar_sign_survives() {
        assert_eq!(run("$100k"), vec!["$100k"]);
    }

    #[test]
    fn addresses_crack_into_name_and_domain() {
        let t = run("Alice.Smith@Example.COM");
        assert_eq!(t, vec!["email name:alice.smith", "email addr:example.com"]);
    }

    #[test]
    fn malformed_address_falls_through_to_word_rules() {
        // "@" with empty local part is not an address; too short anyway.
        assert!(run("@b").is_empty());
        // Trailing '@' is edge punctuation: trimmed, then ordinary word rules.
        assert_eq!(run("weird@"), vec!["weird"]);
    }

    #[test]
    fn skip_generation_can_be_disabled() {
        let opts = TokenizerOptions {
            generate_long_skips: false,
            ..Default::default()
        };
        let mut out = Vec::new();
        tokenize_word("supercalifragilistic", &opts, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn case_sensitivity_option() {
        let opts = TokenizerOptions {
            lowercase: false,
            ..Default::default()
        };
        let mut out = Vec::new();
        tokenize_word("Hello", &opts, &mut out);
        assert_eq!(out, vec!["Hello"]);
    }

    #[test]
    fn unicode_words_counted_by_chars_not_bytes() {
        // 6 characters, 12 bytes: must be treated as length 6.
        assert_eq!(run("привет"), vec!["привет"]);
    }
}
