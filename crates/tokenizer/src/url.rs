//! URL decomposition (SpamBayes `crack_urls` equivalent).
//!
//! URLs are strong spam signals; SpamBayes splits them into protocol and
//! component tokens rather than treating the whole URL as one rare token.

use crate::options::TokenizerOptions;
use crate::word::fold;

/// Scan `text` for URLs; push `proto:`/`url:` tokens for each and return the
/// text with URLs blanked out so word tokenization doesn't see them twice.
pub(crate) fn crack_urls(text: &str, opts: &TokenizerOptions, out: &mut Vec<String>) -> String {
    let mut result = String::with_capacity(text.len());
    let mut rest = text;
    loop {
        match find_url(rest) {
            Some((start, end, scheme)) => {
                result.push_str(&rest[..start]);
                result.push(' ');
                let url = &rest[start..end];
                emit_url_tokens(url, scheme, opts, out);
                rest = &rest[end..];
            }
            None => {
                result.push_str(rest);
                break;
            }
        }
    }
    result
}

/// Locate the next URL: `(start, end, scheme)`. Recognizes explicit schemes
/// (`http://`, `https://`, `ftp://`) and bare `www.` hosts.
fn find_url(text: &str) -> Option<(usize, usize, &'static str)> {
    const SCHEMES: [(&str, &str); 3] = [("http://", "http"), ("https://", "https"), ("ftp://", "ftp")];
    let mut best: Option<(usize, usize, &'static str)> = None;
    for (prefix, scheme) in SCHEMES {
        if let Some(pos) = find_ascii_case_insensitive(text, prefix) {
            if best.is_none_or(|(b, _, _)| pos < b) {
                let end = url_end(text, pos);
                best = Some((pos, end, scheme));
            }
        }
    }
    // Bare "www." host, only at a word boundary.
    if let Some(pos) = find_ascii_case_insensitive(text, "www.") {
        let at_boundary = pos == 0
            || text[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_whitespace() || c == '(' || c == '<' || c == '"');
        if at_boundary && best.is_none_or(|(b, _, _)| pos < b) {
            let end = url_end(text, pos);
            best = Some((pos, end, "http"));
        }
    }
    best
}

/// ASCII-case-insensitive substring search.
fn find_ascii_case_insensitive(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    let hb = haystack.as_bytes();
    let nb = needle.as_bytes();
    'outer: for i in 0..=(hb.len() - nb.len()) {
        for j in 0..nb.len() {
            if !hb[i + j].eq_ignore_ascii_case(&nb[j]) {
                continue 'outer;
            }
        }
        return Some(i);
    }
    None
}

/// A URL ends at whitespace or a closing delimiter.
fn url_end(text: &str, start: usize) -> usize {
    text[start..]
        .find(|c: char| c.is_whitespace() || c == '>' || c == ')' || c == '"' || c == '\'')
        .map(|off| start + off)
        .unwrap_or(text.len())
}

/// Emit tokens for one URL.
fn emit_url_tokens(url: &str, scheme: &'static str, opts: &TokenizerOptions, out: &mut Vec<String>) {
    out.push(format!("proto:{scheme}"));
    // Strip the scheme prefix if present; bare www. hosts keep their "www"
    // label (SpamBayes emits url:www for them too).
    let rest = url.split_once("://").map_or(url, |x| x.1);
    // host[:port][/path...]
    let (host_port, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => (rest, ""),
    };
    let host = host_port.split(':').next().unwrap_or(host_port);
    for label in host.split('.') {
        let label = label.trim_matches(|c: char| c.is_ascii_punctuation());
        if !label.is_empty() {
            out.push(format!("url:{}", fold(label, opts)));
        }
    }
    for seg in path.split(['/', '?', '&', '=']) {
        let seg = seg.trim_matches(|c: char| c.is_ascii_punctuation());
        if !seg.is_empty() && seg.len() <= 40 {
            out.push(format!("url:{}", fold(seg, opts)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crack(text: &str) -> (Vec<String>, String) {
        let mut out = Vec::new();
        let cleaned = crack_urls(text, &TokenizerOptions::default(), &mut out);
        (out, cleaned)
    }

    #[test]
    fn http_url_decomposed() {
        let (tokens, cleaned) = crack("visit http://Pills.Example.COM/buy/now today");
        assert!(tokens.contains(&"proto:http".to_owned()));
        assert!(tokens.contains(&"url:pills".to_owned()));
        assert!(tokens.contains(&"url:example".to_owned()));
        assert!(tokens.contains(&"url:com".to_owned()));
        assert!(tokens.contains(&"url:buy".to_owned()));
        assert!(tokens.contains(&"url:now".to_owned()));
        assert!(!cleaned.contains("http://"));
        assert!(cleaned.contains("visit"));
        assert!(cleaned.contains("today"));
    }

    #[test]
    fn https_and_ftp_schemes() {
        let (t1, _) = crack("https://secure.example.org");
        assert!(t1.contains(&"proto:https".to_owned()));
        let (t2, _) = crack("ftp://files.example.org");
        assert!(t2.contains(&"proto:ftp".to_owned()));
    }

    #[test]
    fn bare_www_recognized_at_boundary() {
        let (tokens, _) = crack("go to www.example.com now");
        assert!(tokens.contains(&"proto:http".to_owned()));
        assert!(tokens.contains(&"url:example".to_owned()));
    }

    #[test]
    fn www_mid_word_not_a_url() {
        let (tokens, cleaned) = crack("swww.ord");
        assert!(tokens.is_empty());
        assert_eq!(cleaned, "swww.ord");
    }

    #[test]
    fn url_ends_at_closing_delimiters() {
        let (tokens, cleaned) = crack("(see http://example.org/page) rest");
        assert!(tokens.contains(&"url:page".to_owned()));
        assert!(cleaned.contains(") rest"));
    }

    #[test]
    fn multiple_urls_all_cracked() {
        let (tokens, _) = crack("http://a.com and http://b.net");
        assert!(tokens.contains(&"url:a".to_owned()));
        assert!(tokens.contains(&"url:b".to_owned()));
        assert_eq!(tokens.iter().filter(|t| *t == "proto:http").count(), 2);
    }

    #[test]
    fn port_stripped_from_host() {
        let (tokens, _) = crack("http://example.org:8080/x");
        assert!(tokens.contains(&"url:example".to_owned()));
        assert!(!tokens.iter().any(|t| t.contains("8080")));
    }

    #[test]
    fn no_urls_leaves_text_untouched() {
        let (tokens, cleaned) = crack("plain words only");
        assert!(tokens.is_empty());
        assert_eq!(cleaned, "plain words only");
    }
}
