//! Tokenizer configuration.
//!
//! Mirrors the SpamBayes `Options` knobs that affect tokenization. The paper
//! notes (footnote 1) that tokenization is the *primary difference* between
//! SpamBayes, BogoFilter and SpamAssassin's learner — so these options are
//! the lever for emulating the other filters' behaviour.

use serde::{Deserialize, Serialize};

/// Options controlling token generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizerOptions {
    /// Words shorter than this are dropped (SpamBayes: 3).
    pub min_word_size: usize,
    /// Words longer than this become `skip:` tokens (SpamBayes: 12).
    pub max_word_size: usize,
    /// Emit `skip:<c> <len-bucket>` tokens for over-long words.
    pub generate_long_skips: bool,
    /// Lowercase word tokens (SpamBayes folds case for plain words).
    pub lowercase: bool,
    /// Decompose URLs into `proto:` / `url:` tokens.
    pub crack_urls: bool,
    /// Decompose mail addresses into `email name:` / `email addr:` tokens.
    pub crack_addresses: bool,
    /// Tokenize `Subject:` words with a `subject:` prefix.
    pub tokenize_subject: bool,
    /// Tokenize address headers (`From`, `To`, `Cc`, `Sender`, `Reply-To`).
    pub tokenize_address_headers: bool,
    /// Emit `message-id:@domain` for the Message-Id header.
    pub tokenize_message_id: bool,
    /// Emit value tokens for `Content-Type` / `X-Mailer`.
    pub tokenize_mailer_headers: bool,
    /// Tokenize `Received:` host names (off by default, like SpamBayes'
    /// conservative configuration).
    pub tokenize_received: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        Self {
            min_word_size: 3,
            max_word_size: 12,
            generate_long_skips: true,
            lowercase: true,
            crack_urls: true,
            crack_addresses: true,
            tokenize_subject: true,
            tokenize_address_headers: true,
            tokenize_message_id: true,
            tokenize_mailer_headers: true,
            tokenize_received: false,
        }
    }
}

impl TokenizerOptions {
    /// A body-only profile: ignores every header. Useful for experiments
    /// isolating the paper's "attacker controls bodies, not headers"
    /// assumption (§2.2).
    pub fn body_only() -> Self {
        Self {
            tokenize_subject: false,
            tokenize_address_headers: false,
            tokenize_message_id: false,
            tokenize_mailer_headers: false,
            tokenize_received: false,
            ..Self::default()
        }
    }

    /// A BogoFilter-flavoured profile: same learner, slightly different
    /// token rules (no skip tokens, case-sensitive), per the paper's
    /// footnote 1. Provided for the "other filters may also be vulnerable"
    /// extension experiments.
    pub fn bogofilter_flavor() -> Self {
        Self {
            generate_long_skips: false,
            lowercase: false,
            ..Self::default()
        }
    }
}
