//! # sb-tokenizer — SpamBayes-style tokenization
//!
//! Converts an [`sb_email::Email`] into the token stream the learner
//! consumes. The rules reproduce the behaviours of the SpamBayes tokenizer
//! that matter to the paper's attacks:
//!
//! * body words split on whitespace, edge punctuation trimmed, lowercased;
//! * words shorter than 3 characters dropped; words longer than 12 become
//!   `skip:<first-char> <length-bucket>` tokens;
//! * URLs decomposed into `proto:`/`url:` component tokens;
//! * mail addresses into `email name:` / `email addr:` tokens;
//! * selected headers mined with per-header prefixes (`subject:`,
//!   `from:addr:`, `message-id:@…`, …).
//!
//! The learner uses **set semantics** — a token counts once per message no
//! matter how often it repeats (this is why the paper's attack emails need
//! only *contain* each dictionary word once). [`Tokenizer::token_set`]
//! implements that reduction; [`Tokenizer::tokenize`] preserves the raw
//! stream for diagnostics and token-volume accounting (§4.2 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod header;
pub mod options;
pub mod url;
pub mod word;

pub use options::TokenizerOptions;

use sb_email::Email;

/// The tokenizer: [`TokenizerOptions`] plus the tokenization entry points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tokenizer {
    opts: TokenizerOptions,
}

impl Tokenizer {
    /// Tokenizer with SpamBayes-default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizer with explicit options.
    pub fn with_options(opts: TokenizerOptions) -> Self {
        Self { opts }
    }

    /// The active options.
    pub fn options(&self) -> &TokenizerOptions {
        &self.opts
    }

    /// Tokenize headers + body, preserving duplicates and document order.
    pub fn tokenize(&self, email: &Email) -> Vec<String> {
        let mut out = Vec::new();
        header::tokenize_headers(email, &self.opts, &mut out);
        self.tokenize_text(email.body(), &mut out);
        out
    }

    /// Tokenize free text (no headers) into `out`.
    pub fn tokenize_text(&self, text: &str, out: &mut Vec<String>) {
        let cleaned: std::borrow::Cow<'_, str> = if self.opts.crack_urls {
            std::borrow::Cow::Owned(url::crack_urls(text, &self.opts, out))
        } else {
            std::borrow::Cow::Borrowed(text)
        };
        for raw in cleaned.split_whitespace() {
            word::tokenize_word(raw, &self.opts, out);
        }
    }

    /// Tokenize with set semantics: sorted, deduplicated. This is what the
    /// learner trains and classifies on.
    pub fn token_set(&self, email: &Email) -> Vec<String> {
        let mut tokens = self.tokenize(email);
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }

    /// Number of raw (non-deduplicated) tokens; used by the §4.2
    /// token-volume accounting.
    pub fn token_count(&self, email: &Email) -> usize {
        self.tokenize(email).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Email;

    #[test]
    fn body_and_headers_both_tokenized() {
        let e = Email::builder()
            .subject("Urgent offer")
            .from_addr("seller@spam.example")
            .body("Buy cheap pills now http://pills.example/buy")
            .build();
        let t = Tokenizer::new().tokenize(&e);
        assert!(t.contains(&"subject:urgent".to_owned()));
        assert!(t.contains(&"from:addr:spam.example".to_owned()));
        assert!(t.contains(&"cheap".to_owned()));
        assert!(t.contains(&"pills".to_owned()));
        assert!(t.contains(&"proto:http".to_owned()));
        assert!(t.contains(&"url:pills".to_owned()));
    }

    #[test]
    fn token_set_deduplicates() {
        let mut e = Email::new();
        e.set_body("spam spam spam eggs");
        let tk = Tokenizer::new();
        assert_eq!(tk.tokenize(&e).len(), 4);
        let set = tk.token_set(&e);
        assert_eq!(set, vec!["eggs".to_owned(), "spam".to_owned()]);
    }

    #[test]
    fn token_set_is_sorted() {
        let mut e = Email::new();
        e.set_body("zebra apple mango");
        let set = Tokenizer::new().token_set(&e);
        let mut sorted = set.clone();
        sorted.sort();
        assert_eq!(set, sorted);
    }

    #[test]
    fn headerless_attack_email_has_only_body_tokens() {
        let mut e = Email::new();
        e.set_body("lexicon words flood inbox");
        let t = Tokenizer::new().tokenize(&e);
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|tok| !tok.contains(':')));
    }

    #[test]
    fn empty_email_yields_no_tokens() {
        assert!(Tokenizer::new().tokenize(&Email::new()).is_empty());
    }

    #[test]
    fn url_cracking_disableable() {
        let opts = TokenizerOptions {
            crack_urls: false,
            ..Default::default()
        };
        let mut e = Email::new();
        e.set_body("see http://example.org/x");
        let t = Tokenizer::with_options(opts).tokenize(&e);
        assert!(!t.iter().any(|tok| tok.starts_with("proto:")));
    }

    #[test]
    fn token_count_counts_duplicates() {
        let mut e = Email::new();
        e.set_body("a b c word word word");
        // "a" "b" "c" dropped as too short; three "word"s counted.
        assert_eq!(Tokenizer::new().token_count(&e), 3);
    }

    #[test]
    fn multiline_bodies_tokenize_across_lines() {
        let mut e = Email::new();
        e.set_body("first line\nsecond line\r\nthird line");
        let set = Tokenizer::new().token_set(&e);
        assert!(set.contains(&"first".to_owned()));
        assert!(set.contains(&"second".to_owned()));
        assert!(set.contains(&"third".to_owned()));
        assert!(set.contains(&"line".to_owned()));
    }
}
