//! Header tokenization.
//!
//! SpamBayes mines specific headers with per-header token prefixes so that,
//! e.g., the word "money" in a subject line and in a body are distinct
//! evidence. The paper's attacks deliberately *cannot* exploit most of this:
//! attack emails carry empty headers (dictionary attack) or headers copied
//! from a random spam (focused attack) — see §2.2 / §4.1.

use crate::options::TokenizerOptions;
use crate::word::{fold, split_address, tokenize_word, trim_punct};
use sb_email::Email;

/// Headers treated as address lists.
const ADDRESS_HEADERS: [&str; 5] = ["From", "To", "Cc", "Sender", "Reply-To"];

/// Emit all header-derived tokens for a message.
pub(crate) fn tokenize_headers(email: &Email, opts: &TokenizerOptions, out: &mut Vec<String>) {
    for (name, value) in email.headers() {
        let lname = name.to_ascii_lowercase();
        match lname.as_str() {
            "subject" if opts.tokenize_subject => {
                for word in value.split_whitespace() {
                    let mut words = Vec::new();
                    tokenize_word(word, opts, &mut words);
                    for w in words {
                        out.push(format!("subject:{w}"));
                    }
                }
            }
            "message-id" if opts.tokenize_message_id => {
                if let Some((_, domain)) = value
                    .trim_matches(['<', '>'])
                    .split_once('@')
                    .map(|(l, d)| (l, d.trim_matches('>')))
                {
                    out.push(format!("message-id:@{}", fold(domain, opts)));
                } else {
                    out.push("message-id:invalid".to_owned());
                }
            }
            "content-type" if opts.tokenize_mailer_headers => {
                let main = value.split(';').next().unwrap_or(value).trim();
                if !main.is_empty() {
                    out.push(format!("content-type:{}", fold(main, opts)));
                }
            }
            "x-mailer" if opts.tokenize_mailer_headers => {
                out.push(format!("x-mailer:{}", fold(value.trim(), opts)));
            }
            "received" if opts.tokenize_received => {
                for word in value.split_whitespace() {
                    let w = trim_punct(word);
                    if w.contains('.') && !w.contains('@') && w.len() >= 4 {
                        out.push(format!("received:{}", fold(w, opts)));
                    }
                }
            }
            _ if opts.tokenize_address_headers
                && ADDRESS_HEADERS.iter().any(|h| h.eq_ignore_ascii_case(name)) =>
            {
                tokenize_address_header(&lname, value, opts, out);
            }
            _ => {}
        }
    }
}

/// `From: "Display Name" <local@domain>` →
/// `from:name:display`, `from:name:name`, `from:addr:domain`.
fn tokenize_address_header(lname: &str, value: &str, opts: &TokenizerOptions, out: &mut Vec<String>) {
    for part in value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // Extract <addr> if present; the rest is display name.
        let (display, addr) = match (part.find('<'), part.rfind('>')) {
            (Some(l), Some(r)) if l < r => (&part[..l], &part[l + 1..r]),
            _ => ("", part),
        };
        if let Some((_local, domain)) = split_address(addr.trim()) {
            out.push(format!("{lname}:addr:{}", fold(domain, opts)));
        }
        for word in display.split_whitespace() {
            let w = trim_punct(word);
            if !w.is_empty() {
                out.push(format!("{lname}:name:{}", fold(w, opts)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Email;

    fn tokens(email: &Email) -> Vec<String> {
        let mut out = Vec::new();
        tokenize_headers(email, &TokenizerOptions::default(), &mut out);
        out
    }

    #[test]
    fn subject_words_prefixed() {
        let e = Email::builder().subject("Cheap Pills Today").build();
        let t = tokens(&e);
        assert!(t.contains(&"subject:cheap".to_owned()));
        assert!(t.contains(&"subject:pills".to_owned()));
        assert!(t.contains(&"subject:today".to_owned()));
    }

    #[test]
    fn subject_word_rules_apply() {
        // Short word dropped, long word becomes skip.
        let e = Email::builder().subject("ab supercalifragilistic").build();
        let t = tokens(&e);
        assert!(!t.iter().any(|x| x.contains(":ab")));
        assert!(t.contains(&"subject:skip:s 20".to_owned()));
    }

    #[test]
    fn from_header_cracked() {
        let e = Email::builder()
            .from_addr("\"Eve Attacker\" <eve@evil.example>")
            .build();
        let t = tokens(&e);
        assert!(t.contains(&"from:addr:evil.example".to_owned()));
        assert!(t.contains(&"from:name:eve".to_owned()));
        assert!(t.contains(&"from:name:attacker".to_owned()));
    }

    #[test]
    fn bare_address_in_to_header() {
        let e = Email::builder().to_addr("victim@corp.example").build();
        let t = tokens(&e);
        assert!(t.contains(&"to:addr:corp.example".to_owned()));
    }

    #[test]
    fn multiple_recipients_split_on_comma() {
        let e = Email::builder()
            .to_addr("a@x.org, b@y.org")
            .build();
        let t = tokens(&e);
        assert!(t.contains(&"to:addr:x.org".to_owned()));
        assert!(t.contains(&"to:addr:y.org".to_owned()));
    }

    #[test]
    fn message_id_domain_token() {
        let e = Email::builder()
            .header("Message-Id", "<abc123@mail.example.org>")
            .build();
        let t = tokens(&e);
        assert!(t.contains(&"message-id:@mail.example.org".to_owned()));
    }

    #[test]
    fn invalid_message_id_noted() {
        let e = Email::builder().header("Message-Id", "garbage").build();
        assert!(tokens(&e).contains(&"message-id:invalid".to_owned()));
    }

    #[test]
    fn content_type_main_value_only() {
        let e = Email::builder()
            .header("Content-Type", "text/HTML; charset=utf-8")
            .build();
        let t = tokens(&e);
        assert!(t.contains(&"content-type:text/html".to_owned()));
        assert!(!t.iter().any(|x| x.contains("charset")));
    }

    #[test]
    fn received_skipped_by_default() {
        let e = Email::builder()
            .header("Received", "from relay.example.org by mx.corp.example")
            .build();
        assert!(tokens(&e).is_empty());
    }

    #[test]
    fn received_hosts_when_enabled() {
        let opts = TokenizerOptions {
            tokenize_received: true,
            ..Default::default()
        };
        let e = Email::builder()
            .header("Received", "from relay.example.org by mx.corp.example")
            .build();
        let mut out = Vec::new();
        tokenize_headers(&e, &opts, &mut out);
        assert!(out.contains(&"received:relay.example.org".to_owned()));
        assert!(out.contains(&"received:mx.corp.example".to_owned()));
    }

    #[test]
    fn empty_headers_produce_no_tokens() {
        assert!(tokens(&Email::new()).is_empty());
    }

    #[test]
    fn header_tokenization_fully_disableable() {
        let e = Email::builder()
            .subject("Hello World")
            .from_addr("a@b.c")
            .build();
        let mut out = Vec::new();
        tokenize_headers(&e, &TokenizerOptions::body_only(), &mut out);
        assert!(out.is_empty());
    }
}
