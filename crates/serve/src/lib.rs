//! # sb-serve — multi-tenant filter serving
//!
//! The serving layer the ROADMAP's north star calls for: one warm,
//! shared, **read-only base model** per org, with every user's personal
//! training expressed as a small overlay delta — per-user state is a
//! delta, not a filter clone. Three layers:
//!
//! * [`mmap`] / [`model`] — load a packed model image
//!   (`sb_filter::image`) by `mmap` (read-to-`Vec` fallback) and serve it
//!   through [`MmapDb`], an `ScoreDb` implementation whose count lookups
//!   are offset reads into the mapped bytes. All existing scoring and
//!   RONI code works against it unchanged.
//! * [`tenant`] — overlay *stacks*: an ordered list of
//!   [`OverlayLayer`] deltas (org patch over base, user delta over that)
//!   combined read-only by [`StackView`], plus a [`SyncMemo`] of
//!   generation-stamped score slots so one tenant's overlay serves many
//!   concurrent probe threads.
//! * [`registry`] — [`TenantRegistry`]: `TenantId → overlay stack`
//!   bookkeeping with per-tenant train/untrain (mutating only the top
//!   delta) and batch classification.
//!
//! ## The bit-identity contract
//!
//! At every layer, serving verdicts are **bit-identical** to a standalone
//! [`sb_filter::TokenDb`] trained with the same mail:
//!
//! * `pack → mmap-load → score` equals scoring the source `TokenDb`
//!   (counts are exact `u32`s; both paths compute
//!   `token_score_from_counts` + `ln_pair` on equal inputs);
//! * a tenant's stacked-overlay verdicts equal a `TokenDb` that trained
//!   the base mail, then each layer's mail, sequentially.
//!
//! Both halves are property-tested in `tests/prop_serve.rs`. This is what
//! makes the overlay architecture safe to deploy: moving a user from a
//! filter clone to a delta changes *where* their counts live, not a
//! single verdict. It also bounds poisoning blast radius — a poisoned
//! tenant delta perturbs that tenant's stack only, never the shared base.
//!
//! ## Safety
//!
//! The only `unsafe` in the workspace lives in [`mmap`] (the `mmap` /
//! `munmap` calls and the mapped-slice view), each block with a
//! `// SAFETY:` argument. `sb-filter` itself stays
//! `#![forbid(unsafe_code)]`; this crate is deny-listed in
//! `sb-lint.toml`'s fail-closed rule, so every serving path returns
//! typed [`ServeError`]s instead of panicking.

#![warn(missing_docs)]

pub mod bench;
pub mod mmap;
pub mod model;
pub mod registry;
pub mod tenant;

pub use bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport};
pub use mmap::ImageBytes;
pub use model::{BaseModel, MmapDb};
pub use registry::{Tenant, TenantId, TenantRegistry};
pub use tenant::{OverlayLayer, StackView, SyncMemo};

use sb_filter::ImageError;

/// Errors from the serving layer. Serving paths fail closed: corrupt
/// images, unknown tenants, and underflowing untrains all surface here,
/// never as panics.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying I/O failure (opening or reading a model image).
    Io(std::io::Error),
    /// The model image failed validation (see [`sb_filter::ImageError`]).
    Image(ImageError),
    /// The image's rows did not intern to dense sequential ids — the
    /// serving interner was not fresh.
    InternMismatch {
        /// Image row that broke the `row i ⇔ TokenId(i)` invariant.
        row: usize,
    },
    /// Operation addressed a tenant id the registry does not hold.
    UnknownTenant(u32),
    /// Tenant creation collided with an existing tenant id.
    TenantExists(u32),
    /// An untrain would drive an effective count below zero — the
    /// message was never trained into this tenant's stack (or base).
    Underflow {
        /// Tenant whose stack rejected the untrain.
        tenant: u32,
    },
    /// A lock was poisoned by a panicking writer; the registry refuses
    /// to serve potentially half-written tenant state.
    Poisoned,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Image(e) => write!(f, "model image: {e}"),
            ServeError::InternMismatch { row } => {
                write!(f, "image row {row} interned to a non-dense id")
            }
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            ServeError::TenantExists(id) => write!(f, "tenant {id} already exists"),
            ServeError::Underflow { tenant } => {
                write!(f, "untrain underflow in tenant {tenant}'s overlay stack")
            }
            ServeError::Poisoned => write!(f, "tenant state lock poisoned"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ImageError> for ServeError {
    fn from(e: ImageError) -> Self {
        ServeError::Image(e)
    }
}
