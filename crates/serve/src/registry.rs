//! [`TenantRegistry`]: the serving façade — one shared base model, many
//! tenants, each a small overlay stack.
//!
//! The registry owns an `Arc`'d [`BaseModel`] (usually an
//! [`crate::MmapDb`] over a packed image), an optional **org patch**
//! layer shared read-only by every tenant (frozen at construction — the
//! stacking middle layer, e.g. an org-wide correction batch shipped
//! between image repacks), and a map of per-tenant [`Tenant`] states.
//! A tenant's serving stack is therefore up to 2 layers deep:
//!
//! ```text
//! user delta   (tenant-private, mutable via train/untrain)
//! org patch    (shared, frozen)
//! base image   (shared, mmap'd, immutable)
//! ```
//!
//! ## Locking
//!
//! Tenants live behind a registry-level `RwLock` map (tenant add/remove
//! is rare) of per-tenant `RwLock`s: classification takes the tenant lock
//! in *read* mode — many probe threads classify the same tenant
//! concurrently, sharing its [`SyncMemo`] lock-free — while train/untrain
//! takes it in write mode and is the only writer of the delta. All lock
//! poisoning surfaces as [`ServeError::Poisoned`] (a panicking writer may
//! have left half-applied counts; serving them would violate the
//! bit-identity contract), never as a propagated panic.

use crate::model::BaseModel;
use crate::tenant::{OverlayLayer, StackView, SyncMemo};
use crate::ServeError;
use sb_email::Label;
use sb_filter::classify::score_token_ids;
use sb_filter::{FilterOptions, Scored};
use sb_intern::{par, AsIdSlice, FxHashMap, Interner, TokenId};
use std::sync::{Arc, RwLock};

/// A tenant's identity within one registry (a user of the org the base
/// image serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// One tenant's serving state: the private delta plus the score memo its
/// probe threads share. Lives behind the registry's per-tenant lock.
#[derive(Debug)]
pub struct Tenant {
    delta: OverlayLayer,
    memo: SyncMemo,
}

impl Tenant {
    /// The tenant's private overlay delta (read-only; mutate through the
    /// registry so memo capacity tracks the interner).
    pub fn delta(&self) -> &OverlayLayer {
        &self.delta
    }
}

/// The multi-tenant serving registry (see module docs).
pub struct TenantRegistry<B: BaseModel> {
    base: Arc<B>,
    /// The shared, frozen middle layer (empty = absent; an empty layer
    /// contributes nothing, so the stack is effectively 1-deep then).
    org_patch: OverlayLayer,
    opts: FilterOptions,
    tenants: RwLock<FxHashMap<u32, Arc<RwLock<Tenant>>>>,
}

impl<B: BaseModel> std::fmt::Debug for TenantRegistry<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.tenants.read().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("TenantRegistry")
            .field("tenants", &n)
            .field("org_patch_tokens", &self.org_patch.len())
            .finish()
    }
}

impl<B: BaseModel> TenantRegistry<B> {
    /// A registry over `base` with no org patch.
    pub fn new(base: Arc<B>, opts: FilterOptions) -> Self {
        Self::with_org_patch(base, OverlayLayer::new(), opts)
    }

    /// A registry over `base` with a frozen org-wide patch layer every
    /// tenant's stack includes beneath its own delta.
    pub fn with_org_patch(base: Arc<B>, org_patch: OverlayLayer, opts: FilterOptions) -> Self {
        Self {
            base,
            org_patch,
            opts,
            tenants: RwLock::new(FxHashMap::default()),
        }
    }

    /// The shared base model.
    pub fn base(&self) -> &Arc<B> {
        &self.base
    }

    /// The frozen org patch layer.
    pub fn org_patch(&self) -> &OverlayLayer {
        &self.org_patch
    }

    /// The interner every tenant's ids resolve against (the base's).
    pub fn interner(&self) -> &Interner {
        self.base.interner()
    }

    /// The options every stack serves.
    pub fn options(&self) -> &FilterOptions {
        &self.opts
    }

    /// Register a new tenant with an empty delta.
    pub fn add_tenant(&self, id: TenantId) -> Result<(), ServeError> {
        let mut map = self.tenants.write().map_err(|_| ServeError::Poisoned)?;
        if map.contains_key(&id.0) {
            return Err(ServeError::TenantExists(id.0));
        }
        map.insert(
            id.0,
            Arc::new(RwLock::new(Tenant {
                delta: OverlayLayer::new(),
                memo: SyncMemo::new(self.base.interner().len()),
            })),
        );
        Ok(())
    }

    /// Drop a tenant (its delta and memo). Unknown ids are a typed error.
    pub fn remove_tenant(&self, id: TenantId) -> Result<(), ServeError> {
        let mut map = self.tenants.write().map_err(|_| ServeError::Poisoned)?;
        match map.remove(&id.0) {
            Some(_) => Ok(()),
            None => Err(ServeError::UnknownTenant(id.0)),
        }
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().map(|m| m.len()).unwrap_or(0)
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered tenant ids, ascending (sorted so callers iterating the
    /// fleet are deterministic regardless of hash-map order).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = match self.tenants.read() {
            Ok(map) => map.keys().map(|&k| TenantId(k)).collect(),
            Err(_) => Vec::new(),
        };
        ids.sort_unstable();
        ids
    }

    fn tenant(&self, id: TenantId) -> Result<Arc<RwLock<Tenant>>, ServeError> {
        let map = self.tenants.read().map_err(|_| ServeError::Poisoned)?;
        map.get(&id.0)
            .cloned()
            .ok_or(ServeError::UnknownTenant(id.0))
    }

    /// Train one message (a deduplicated id set against
    /// [`TenantRegistry::interner`]) into `id`'s private delta. The
    /// shared base and org patch are never touched; the tenant's memo is
    /// invalidated by the delta's generation bump and re-extended to the
    /// interner's current length.
    pub fn train(&self, id: TenantId, ids: &[TokenId], label: Label) -> Result<(), ServeError> {
        let tenant = self.tenant(id)?;
        let mut t = tenant.write().map_err(|_| ServeError::Poisoned)?;
        t.delta.train_ids(ids, label);
        let want = self.base.interner().len();
        t.memo.ensure_capacity(want);
        Ok(())
    }

    /// Exactly remove one previously trained message from `id`'s delta.
    /// Only the tenant's own training is removable — an untrain reaching
    /// into the shared base or org patch is an [`ServeError::Underflow`]
    /// refusal that mutates nothing.
    pub fn untrain(&self, id: TenantId, ids: &[TokenId], label: Label) -> Result<(), ServeError> {
        let tenant = self.tenant(id)?;
        let mut t = tenant.write().map_err(|_| ServeError::Poisoned)?;
        t.delta
            .untrain_ids(ids, label)
            .map_err(|_| ServeError::Underflow { tenant: id.0 })
    }

    /// Run `f` against `id`'s current serving stack (org patch under user
    /// delta, memo attached) under the tenant read lock — the primitive
    /// `classify_ids_batch` and the bit-identity tests build on.
    pub fn with_stack<R>(
        &self,
        id: TenantId,
        f: impl FnOnce(&StackView<'_, B>) -> R,
    ) -> Result<R, ServeError> {
        let tenant = self.tenant(id)?;
        let t = tenant.read().map_err(|_| ServeError::Poisoned)?;
        let layers: [&OverlayLayer; 2] = [&self.org_patch, &t.delta];
        let stack = StackView::with_memo(self.base.as_ref(), &layers, &t.memo);
        Ok(f(&stack))
    }

    /// Classify one pre-interned id set through `id`'s stack.
    pub fn classify_ids(&self, id: TenantId, ids: &[TokenId]) -> Result<Scored, ServeError> {
        self.with_stack(id, |stack| score_token_ids(ids, stack, &self.opts))
    }

    /// Classify a batch of pre-interned id sets through `id`'s stack, in
    /// parallel (scoped workers, results in input order, chunk sizing per
    /// `SB_CHUNK`). The tenant's [`SyncMemo`] is shared lock-free across
    /// the workers, so each distinct token's score is computed once per
    /// stack generation for the whole batch.
    pub fn classify_ids_batch(
        &self,
        id: TenantId,
        batch: &[impl AsIdSlice + Sync],
    ) -> Result<Vec<Scored>, ServeError> {
        self.classify_ids_batch_with_threads(id, batch, par::default_threads())
    }

    /// [`TenantRegistry::classify_ids_batch`] with an explicit worker
    /// count (1 = sequential; results are identical either way).
    pub fn classify_ids_batch_with_threads(
        &self,
        id: TenantId,
        batch: &[impl AsIdSlice + Sync],
        threads: usize,
    ) -> Result<Vec<Scored>, ServeError> {
        self.with_stack(id, |stack| {
            par::parallel_chunks(batch, threads, |_, chunk| {
                chunk
                    .iter()
                    .map(|ids| score_token_ids(ids.ids(), stack, &self.opts))
                    .collect()
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_filter::TokenDb;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn base_db(interner: &Interner) -> TokenDb {
        let mut db = TokenDb::with_interner(interner.clone());
        for i in 0..6 {
            db.train(&toks(&["cheap", "pills", &format!("s{i}")]), Label::Spam);
            db.train(&toks(&["meeting", "agenda", &format!("h{i}")]), Label::Ham);
        }
        db
    }

    fn registry(interner: &Interner) -> TenantRegistry<TokenDb> {
        let base = Arc::new(base_db(interner));
        let mut org = OverlayLayer::new();
        org.train_ids(
            &interner.intern_set(&toks(&["quarterly", "report"])),
            Label::Ham,
        );
        TenantRegistry::with_org_patch(base, org, FilterOptions::default())
    }

    #[test]
    fn tenant_lifecycle_and_typed_errors() {
        let interner = Interner::new();
        let reg = registry(&interner);
        assert!(reg.is_empty());
        reg.add_tenant(TenantId(3)).unwrap();
        reg.add_tenant(TenantId(1)).unwrap();
        assert!(matches!(
            reg.add_tenant(TenantId(3)),
            Err(ServeError::TenantExists(3))
        ));
        assert_eq!(reg.tenant_ids(), vec![TenantId(1), TenantId(3)]);
        assert!(matches!(
            reg.classify_ids(TenantId(9), &[]),
            Err(ServeError::UnknownTenant(9))
        ));
        reg.remove_tenant(TenantId(3)).unwrap();
        assert!(matches!(
            reg.remove_tenant(TenantId(3)),
            Err(ServeError::UnknownTenant(3))
        ));
        assert_eq!(reg.len(), 1);
    }

    /// Per-tenant training is isolated: tenant A's delta never moves
    /// tenant B's verdicts — the poisoning blast-radius property.
    #[test]
    fn tenant_deltas_are_isolated() {
        let interner = Interner::new();
        let reg = registry(&interner);
        reg.add_tenant(TenantId(0)).unwrap();
        reg.add_tenant(TenantId(1)).unwrap();

        let probe = interner.intern_set(&toks(&["meeting", "agenda", "trigger"]));
        let before = reg.classify_ids(TenantId(1), &probe).unwrap();

        // Poison tenant 0 heavily: the trigger token becomes spammy there.
        let poison = interner.intern_set(&toks(&["trigger", "meeting"]));
        for _ in 0..50 {
            reg.train(TenantId(0), &poison, Label::Spam).unwrap();
        }
        let after = reg.classify_ids(TenantId(1), &probe).unwrap();
        assert_eq!(before.score.to_bits(), after.score.to_bits());
        assert_eq!(before, after);
        // And tenant 0's own view did move.
        let poisoned = reg.classify_ids(TenantId(0), &probe).unwrap();
        assert_ne!(poisoned.score.to_bits(), before.score.to_bits());
    }

    /// The registry stack (org patch + user delta) matches a standalone
    /// TokenDb trained base → org → user, message for message.
    #[test]
    fn registry_verdicts_match_standalone_db() {
        let interner = Interner::new();
        let reg = registry(&interner);
        reg.add_tenant(TenantId(7)).unwrap();
        let user_mail = interner.intern_set(&toks(&["viagra", "cheap", "now"]));
        reg.train(TenantId(7), &user_mail, Label::Spam).unwrap();

        let mut standalone = base_db(&interner);
        standalone.train_ids(
            &interner.intern_set(&toks(&["quarterly", "report"])),
            Label::Ham,
        );
        standalone.train_ids(&user_mail, Label::Spam);

        let batch: Vec<Vec<sb_intern::TokenId>> = [
            vec!["cheap", "viagra"],
            vec!["meeting", "agenda"],
            vec!["quarterly", "report", "now"],
        ]
        .iter()
        .map(|words| interner.intern_set(&toks(words)))
        .collect();

        let got = reg.classify_ids_batch(TenantId(7), &batch).unwrap();
        let opts = FilterOptions::default();
        for (ids, scored) in batch.iter().zip(&got) {
            let want = score_token_ids(ids, &standalone, &opts);
            assert_eq!(scored.score.to_bits(), want.score.to_bits());
            assert_eq!(*scored, want);
        }
    }

    /// Untrain scope: a tenant can remove its own training but not reach
    /// into the base or the org patch.
    #[test]
    fn untrain_scope_is_the_tenant_delta() {
        let interner = Interner::new();
        let reg = registry(&interner);
        reg.add_tenant(TenantId(2)).unwrap();
        let mail = interner.intern_set(&toks(&["cheap", "offer"]));
        reg.train(TenantId(2), &mail, Label::Spam).unwrap();
        reg.untrain(TenantId(2), &mail, Label::Spam).unwrap();
        // Again: the delta is empty now, even though the *base* trained
        // "cheap" many times — that mail is not the tenant's to forget.
        assert!(matches!(
            reg.untrain(TenantId(2), &mail, Label::Spam),
            Err(ServeError::Underflow { tenant: 2 })
        ));
        // Org-patch mail is equally out of reach.
        let org_mail = interner.intern_set(&toks(&["quarterly", "report"]));
        assert!(matches!(
            reg.untrain(TenantId(2), &org_mail, Label::Ham),
            Err(ServeError::Underflow { tenant: 2 })
        ));
    }

    /// Many probe threads classify one tenant concurrently through the
    /// shared memo, bit-identically to a sequential run.
    #[test]
    fn concurrent_probes_share_one_tenant() {
        let interner = Interner::new();
        let reg = registry(&interner);
        reg.add_tenant(TenantId(0)).unwrap();
        reg.train(
            TenantId(0),
            &interner.intern_set(&toks(&["cheap", "now"])),
            Label::Spam,
        )
        .unwrap();

        let batch: Vec<Vec<sb_intern::TokenId>> = (0..64)
            .map(|i| {
                interner.intern_set(&toks(&[
                    "cheap",
                    "meeting",
                    if i % 2 == 0 { "pills" } else { "agenda" },
                ]))
            })
            .collect();
        let sequential = reg
            .classify_ids_batch_with_threads(TenantId(0), &batch, 1)
            .unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        reg.classify_ids_batch_with_threads(TenantId(0), &batch, 2)
                            .unwrap()
                    })
                })
                .collect();
            for h in handles {
                let got = h.join().unwrap();
                for (g, w) in got.iter().zip(&sequential) {
                    assert_eq!(g.score.to_bits(), w.score.to_bits());
                }
                assert_eq!(got, sequential);
            }
        });
    }
}
