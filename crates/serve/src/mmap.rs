//! Loading model image bytes: `mmap` on unix, read-to-`Vec` everywhere
//! else (and as a runtime fallback).
//!
//! The packed image format (`sb_filter::image`) was designed so that a
//! server never materializes the model: the counts array and string
//! arena are offset-indexable in place, so mapping the file *is* loading
//! it — the kernel pages counts in on demand and shares the clean pages
//! across every process serving the same org image. [`ImageBytes`]
//! abstracts over the two sources; everything downstream sees `&[u8]`.
//!
//! This module contains the only `unsafe` code in the workspace. The
//! bindings call `mmap`/`munmap` directly (libc is already linked via
//! `std` on every unix target — no new dependency), and the safety
//! argument for each block is local and spelled out inline.
//!
//! Set `SB_NO_MMAP=1` to force the read fallback (e.g. on filesystems
//! with broken mmap semantics); the bytes served are identical either
//! way, so this is purely an operational switch.

use crate::ServeError;
use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    //! Minimal raw bindings: just enough of the POSIX mapping API.
    //! Types follow the 64-bit unix ABI (`size_t` = `usize`,
    //! `off_t` = `i64`).

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

/// Model image bytes, either owned or memory-mapped. Dereferences to
/// `&[u8]`; the mapping (if any) is released on drop.
pub enum ImageBytes {
    /// Bytes read into memory (the portability fallback, `SB_NO_MMAP`,
    /// zero-length files, and non-unix targets).
    Owned(Vec<u8>),
    /// A live read-only private mapping.
    #[cfg(unix)]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *const u8,
        /// Mapping length in bytes (the file length).
        len: usize,
    },
}

// SAFETY: a `Mapped` value is a read-only MAP_PRIVATE mapping of an
// immutable model image; no API hands out `&mut` into it and the fd is
// closed after mapping (POSIX keeps the mapping valid). Shared reads
// from multiple threads are therefore data-race-free, and ownership may
// move across threads freely — exactly the `Vec<u8>` semantics the
// `Owned` variant already has.
#[cfg(unix)]
unsafe impl Send for ImageBytes {}
#[cfg(unix)]
unsafe impl Sync for ImageBytes {}

impl ImageBytes {
    /// Load a model image file, mapping it when possible.
    ///
    /// Falls back to an owned read when the target is not unix, the file
    /// is empty (zero-length mappings are an `mmap` error), `SB_NO_MMAP`
    /// is set, or the `mmap` call itself fails.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "image larger than the address space",
            ))
        })?;
        // The env read only picks the load mechanism; the bytes served
        // are identical, so no simulation result can depend on it.
        if len == 0 || std::env::var_os("SB_NO_MMAP").is_some() {
            return Self::read_owned(&mut file, len);
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let fd = file.as_raw_fd();
            // SAFETY: fd is a valid open file descriptor for the whole
            // call; addr = null lets the kernel pick a free region;
            // len > 0 was checked above. A PROT_READ + MAP_PRIVATE
            // mapping of a regular file has no aliasing obligations on
            // our side — the kernel either returns a fresh region of
            // `len` bytes or MAP_FAILED, which we check before use.
            let ptr = unsafe {
                sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, fd, 0)
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(ImageBytes::Mapped { ptr, len });
            }
            // MAP_FAILED (e.g. a filesystem without mmap support): fall
            // through to the owned read — serving correctness does not
            // depend on the mapping, only cold-load speed does.
        }
        Self::read_owned(&mut file, len)
    }

    fn read_owned(file: &mut File, len: usize) -> Result<Self, ServeError> {
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(ImageBytes::Owned(bytes))
    }

    /// The image bytes, whichever way they were loaded.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ImageBytes::Owned(v) => v,
            #[cfg(unix)]
            ImageBytes::Mapped { ptr, len } => {
                // SAFETY: (ptr, len) came from a successful mmap that is
                // released only in Drop, so the region is valid for reads
                // for the lifetime of `self`; the mapping is PROT_READ +
                // MAP_PRIVATE, so no writer exists and the bytes are
                // plain initialized u8s.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// True when the bytes are served by a live mapping (telemetry for
    /// `repro serve-bench` and `model inspect`).
    pub fn is_mapped(&self) -> bool {
        match self {
            ImageBytes::Owned(_) => false,
            #[cfg(unix)]
            ImageBytes::Mapped { .. } => true,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for ImageBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for ImageBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageBytes::Owned(v) => write!(f, "ImageBytes::Owned({} bytes)", v.len()),
            #[cfg(unix)]
            ImageBytes::Mapped { len, .. } => write!(f, "ImageBytes::Mapped({len} bytes)"),
        }
    }
}

#[cfg(unix)]
impl Drop for ImageBytes {
    fn drop(&mut self) {
        if let ImageBytes::Mapped { ptr, len } = self {
            // SAFETY: (ptr, len) is exactly the region a successful mmap
            // returned, unmapped only here; no `&[u8]` view outlives
            // `self` (as_slice ties the borrow to &self), so nothing can
            // read through the mapping after this call.
            unsafe {
                sys::munmap(ptr.cast_mut(), *len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("sb-serve-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn load_serves_exact_file_bytes() {
        let want: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("exact", &want);
        let img = ImageBytes::load(&path).unwrap();
        assert_eq!(&*img, &want[..]);
        #[cfg(unix)]
        assert!(img.is_mapped() || std::env::var_os("SB_NO_MMAP").is_some());
        drop(img);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_loads_as_owned() {
        let path = temp_file("empty", b"");
        let img = ImageBytes::load(&path).unwrap();
        assert!(img.is_empty());
        assert!(!img.is_mapped());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("sb-serve-definitely-missing");
        assert!(matches!(
            ImageBytes::load(&path),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn mapping_survives_file_handle_close_and_threads() {
        let want: Vec<u8> = b"abcdef".repeat(2000);
        let path = temp_file("threads", &want);
        let img = ImageBytes::load(&path).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(&*img, &want[..]));
            }
        });
        std::fs::remove_file(path).ok();
    }
}
