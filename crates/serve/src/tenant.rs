//! Overlay stacks: persistent per-tenant deltas over a shared read-only
//! base, combined read-only by [`StackView`] and served to concurrent
//! probe threads through a [`SyncMemo`].
//!
//! Where [`sb_filter::CandidateDelta`] is the *measurement* delta — one
//! immutable candidate message, built per RONI probe and thrown away —
//! an [`OverlayLayer`] is the *serving* delta: it accumulates a tenant's
//! whole personal training history (arbitrary per-token counts from many
//! train/untrain calls) and lives as long as the tenant does. Layers
//! stack: a [`StackView`] lays an ordered list of layers over any
//! [`BaseModel`] (org patch over the packed base, user delta over that),
//! and scoring consults them newest-to-oldest additively — effective
//! counts are `base + Σ layers`, effective class totals likewise.
//!
//! ## Bit-identity
//!
//! A stack's scores are bit-identical to a standalone
//! [`sb_filter::TokenDb`] that trained the base mail and then every
//! layer's mail: both paths evaluate
//! `token_score_from_counts(NS_eff, NH_eff, counts_eff, opts)` and the
//! same [`sb_filter::ln_pair`] clamp on equal `u32` inputs, and integer
//! addition is associative — *which* layer a count lives in cannot move
//! the sum. Property-tested in `tests/prop_serve.rs`
//! (`stacked_overlays_equal_sequential_training`).
//!
//! ## Concurrency
//!
//! [`StackView`] is `Sync` when its base is: scoring is read-only, and
//! the optional [`SyncMemo`] memoizes through the same lock-free
//! generation-stamped atomic-slot discipline as the `TokenDb` cache —
//! racing fills are benign duplicates of a pure function. Every layer
//! mutation bumps that layer's generation, so a stack's *combined*
//! generation stamps memo slots: a train/untrain anywhere in the stack
//! silently invalidates every cached score in O(1).

use crate::model::BaseModel;
use sb_email::Label;
use sb_filter::score::token_score_from_counts;
use sb_filter::{ln_pair, FilterOptions, ScoreDb, TokenCounts};
use sb_intern::{FxHashMap, Interner, TokenId};
use std::sync::atomic::{AtomicU64, Ordering};

/// A persistent training delta: the per-token counts and per-class
/// message totals a tenant's own mail contributed on top of whatever it
/// stacks on. Mutable only through [`OverlayLayer::train_ids`] /
/// [`OverlayLayer::untrain_ids`]; every mutation bumps the generation
/// that stamps downstream [`SyncMemo`] slots.
#[derive(Debug, Clone, Default)]
pub struct OverlayLayer {
    counts: FxHashMap<TokenId, TokenCounts>,
    d_spam: u32,
    d_ham: u32,
    /// Bumped on every successful mutation (starts at 0).
    generation: u64,
}

/// An untrain asked this layer to forget counts it never trained — the
/// typed, fail-closed refusal ([`crate::ServeError::Underflow`] at the
/// registry surface). The layer is left unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerUnderflow {
    /// First offending token (`None` when the class total itself would
    /// underflow).
    pub token: Option<TokenId>,
}

impl std::fmt::Display for LayerUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.token {
            Some(id) => write!(f, "untrain underflows token id {}", id.0),
            None => write!(f, "untrain underflows the class message total"),
        }
    }
}

impl std::error::Error for LayerUnderflow {}

impl OverlayLayer {
    /// An empty delta (contributes nothing until trained).
    pub fn new() -> Self {
        Self::default()
    }

    /// Train one message's token *set* (deduplicated ids, as
    /// `Interner::intern_set` produces) under `label` — the layer-local
    /// mirror of [`sb_filter::TokenDb::train_ids`].
    pub fn train_ids(&mut self, ids: &[TokenId], label: Label) {
        self.train_ids_many(ids, label, 1);
    }

    /// Train `multiplicity` identical messages at once.
    pub fn train_ids_many(&mut self, ids: &[TokenId], label: Label, multiplicity: u32) {
        if multiplicity == 0 {
            return;
        }
        for &id in ids {
            let c = self.counts.entry(id).or_default();
            match label {
                Label::Spam => c.spam += multiplicity,
                Label::Ham => c.ham += multiplicity,
            }
        }
        match label {
            Label::Spam => self.d_spam += multiplicity,
            Label::Ham => self.d_ham += multiplicity,
        }
        self.generation += 1;
    }

    /// Exactly remove one previously trained message from *this layer*.
    ///
    /// Scope is deliberate: a tenant may only forget mail its own delta
    /// trained — mail trained into the shared base (or a lower layer)
    /// belongs to every tenant and is immutable here. Validates the whole
    /// message first and mutates only on success, so a refused untrain
    /// leaves the layer byte-identical.
    pub fn untrain_ids(&mut self, ids: &[TokenId], label: Label) -> Result<(), LayerUnderflow> {
        match label {
            Label::Spam if self.d_spam == 0 => return Err(LayerUnderflow { token: None }),
            Label::Ham if self.d_ham == 0 => return Err(LayerUnderflow { token: None }),
            _ => {}
        }
        for &id in ids {
            let have = self.counts.get(&id).copied().unwrap_or_default();
            let class_count = match label {
                Label::Spam => have.spam,
                Label::Ham => have.ham,
            };
            if class_count == 0 {
                return Err(LayerUnderflow { token: Some(id) });
            }
        }
        for &id in ids {
            if let Some(c) = self.counts.get_mut(&id) {
                match label {
                    Label::Spam => c.spam -= 1,
                    Label::Ham => c.ham -= 1,
                }
                if c.spam == 0 && c.ham == 0 {
                    self.counts.remove(&id);
                }
            }
        }
        match label {
            Label::Spam => self.d_spam -= 1,
            Label::Ham => self.d_ham -= 1,
        }
        self.generation += 1;
        Ok(())
    }

    /// The counts this layer adds for `id` (zero when untouched).
    #[inline]
    pub fn added(&self, id: TokenId) -> TokenCounts {
        self.counts.get(&id).copied().unwrap_or_default()
    }

    /// The `(ΔNS, ΔNH)` class-total shift this layer applies.
    pub fn class_shift(&self) -> (u32, u32) {
        (self.d_spam, self.d_ham)
    }

    /// Distinct tokens this layer touches.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the layer contributes nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.d_spam == 0 && self.d_ham == 0
    }

    /// Mutation counter (starts at 0; bumps on every successful
    /// train/untrain). Feeds the stack's combined memo stamp.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// One lock-free memo slot, the [`SyncMemo`] unit: the stamp carries the
/// stack's combined generation (0 = never filled; combined generations
/// start at 1), published `Release` after the value like every other
/// score cache in the workspace.
#[derive(Default)]
struct MemoSlot {
    stamp_f: AtomicU64,
    f: AtomicU64,
    stamp_ln: AtomicU64,
    ln_f: AtomicU64,
    ln_1mf: AtomicU64,
}

/// A `Sync` score memo for one tenant's stack: dense slots indexed by
/// `TokenId`, shared lock-free by every probe thread classifying through
/// the same [`StackView`].
///
/// Invalidation is by *stamp*, not by clearing: slots are valid only for
/// the combined stack generation that filled them, so any layer mutation
/// (which bumps its generation, hence the combination) obsoletes the
/// whole memo in O(1) without touching a byte. The memo must therefore be
/// bound to **one** logical stack whose combined generation only grows —
/// the registry owns exactly one per tenant.
///
/// Capacity is fixed between [`SyncMemo::ensure_capacity`] calls (growing
/// a `Vec` is not lock-free); ids beyond capacity are computed directly,
/// never cached, so capacity is purely a performance knob. The registry
/// re-extends to the interner's length on every (write-locked) train.
#[derive(Default)]
pub struct SyncMemo {
    slots: Vec<MemoSlot>,
}

impl std::fmt::Debug for SyncMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SyncMemo({} slots)", self.slots.len())
    }
}

impl SyncMemo {
    /// A memo with `capacity` dense slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| MemoSlot::default()).collect(),
        }
    }

    /// Current slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Grow to at least `capacity` slots (never shrinks). Requires `&mut`
    /// — callers serialize growth behind their tenant write lock; probe
    /// threads only ever hold `&SyncMemo`.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        while self.slots.len() < capacity {
            self.slots.push(MemoSlot::default());
        }
    }
}

/// A read-only combined view over a base and an ordered overlay stack,
/// implementing [`ScoreDb`] — every scoring, δ(E)-selection, and Fisher
/// path works against it unchanged.
///
/// Layer order in `layers` is bottom-up (`layers[0]` sits directly on the
/// base); scoring is additive, so order only matters for bookkeeping and
/// documentation, never for the numbers.
#[derive(Debug, Clone, Copy)]
pub struct StackView<'a, B: BaseModel + ?Sized> {
    base: &'a B,
    layers: &'a [&'a OverlayLayer],
    memo: Option<&'a SyncMemo>,
    /// Effective per-class totals (base + every layer), entering Eq. 1
    /// for every token.
    n_spam: u32,
    n_ham: u32,
    /// Memo stamp: 1 + Σ layer generations — monotone in any mutation.
    stamp: u64,
}

impl<'a, B: BaseModel + ?Sized> StackView<'a, B> {
    /// Combine `layers` (bottom-up) over `base`, unmemoized.
    pub fn new(base: &'a B, layers: &'a [&'a OverlayLayer]) -> Self {
        let mut n_spam = base.base_n_spam();
        let mut n_ham = base.base_n_ham();
        let mut stamp = 1u64;
        for layer in layers {
            let (ds, dh) = layer.class_shift();
            n_spam += ds;
            n_ham += dh;
            stamp += layer.generation();
        }
        Self {
            base,
            layers,
            memo: None,
            n_spam,
            n_ham,
            stamp,
        }
    }

    /// [`StackView::new`] with a shared score memo (see [`SyncMemo`] for
    /// the binding contract).
    pub fn with_memo(base: &'a B, layers: &'a [&'a OverlayLayer], memo: &'a SyncMemo) -> Self {
        Self {
            memo: Some(memo),
            ..Self::new(base, layers)
        }
    }

    /// The base model under the stack.
    pub fn base(&self) -> &'a B {
        self.base
    }

    /// Stack depth (number of overlay layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Effective `NS` (base plus every layer).
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// Effective `NH` (base plus every layer).
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Effective counts for a token: base plus every layer's addition.
    #[inline]
    pub fn counts_by_id(&self, id: TokenId) -> TokenCounts {
        let mut c = self.base.base_counts(id);
        for layer in self.layers {
            let add = layer.added(id);
            c.spam += add.spam;
            c.ham += add.ham;
        }
        c
    }

    /// The stack's uncached score — what the memo slots are filled with.
    #[inline]
    fn compute_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        token_score_from_counts(self.n_spam, self.n_ham, self.counts_by_id(id), opts)
    }
}

impl<B: BaseModel + ?Sized> ScoreDb for StackView<'_, B> {
    fn interner(&self) -> &Interner {
        self.base.interner()
    }

    fn score_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        let Some(slot) = self.memo.and_then(|m| m.slots.get(id.index())) else {
            return self.compute_f(id, opts);
        };
        if slot.stamp_f.load(Ordering::Acquire) == self.stamp {
            return f64::from_bits(slot.f.load(Ordering::Relaxed));
        }
        let f = self.compute_f(id, opts);
        slot.f.store(f.to_bits(), Ordering::Relaxed);
        slot.stamp_f.store(self.stamp, Ordering::Release);
        f
    }

    fn score_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        let Some(slot) = self.memo.and_then(|m| m.slots.get(id.index())) else {
            return ln_pair(f);
        };
        if slot.stamp_ln.load(Ordering::Acquire) == self.stamp {
            return (
                f64::from_bits(slot.ln_f.load(Ordering::Relaxed)),
                f64::from_bits(slot.ln_1mf.load(Ordering::Relaxed)),
            );
        }
        let (ln_f, ln_1mf) = ln_pair(f);
        slot.ln_f.store(ln_f.to_bits(), Ordering::Relaxed);
        slot.ln_1mf.store(ln_1mf.to_bits(), Ordering::Relaxed);
        slot.stamp_ln.store(self.stamp, Ordering::Release);
        (ln_f, ln_1mf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_filter::classify::score_token_ids;
    use sb_filter::TokenDb;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn base_db(interner: &Interner) -> TokenDb {
        let mut db = TokenDb::with_interner(interner.clone());
        for i in 0..8 {
            db.train(&toks(&["cheap", "pills", &format!("s{i}")]), Label::Spam);
            db.train(&toks(&["meeting", "agenda", &format!("h{i}")]), Label::Ham);
        }
        db
    }

    /// The contract: a 2-deep stack scores bit-identically to one TokenDb
    /// trained base → org → user sequentially.
    #[test]
    fn two_deep_stack_matches_sequential_training() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let base = base_db(&interner);

        let org_mail = interner.intern_set(&toks(&["quarterly", "cheap", "report"]));
        let user_spam = interner.intern_set(&toks(&["viagra", "cheap"]));
        let user_ham = interner.intern_set(&toks(&["meeting", "viagra", "minutes"]));

        let mut org = OverlayLayer::new();
        org.train_ids(&org_mail, Label::Ham);
        let mut user = OverlayLayer::new();
        user.train_ids(&user_spam, Label::Spam);
        user.train_ids(&user_ham, Label::Ham);

        let mut sequential = base.clone();
        sequential.train_ids(&org_mail, Label::Ham);
        sequential.train_ids(&user_spam, Label::Spam);
        sequential.train_ids(&user_ham, Label::Ham);

        let layers: Vec<&OverlayLayer> = vec![&org, &user];
        let stack = StackView::new(&base, &layers);
        assert_eq!(stack.depth(), 2);
        assert_eq!(stack.n_spam(), sequential.n_spam());
        assert_eq!(stack.n_ham(), sequential.n_ham());

        let probe = interner.intern_set(&toks(&[
            "cheap", "viagra", "meeting", "quarterly", "minutes", "unseen",
        ]));
        for &id in &probe {
            assert_eq!(stack.counts_by_id(id), sequential.counts_by_id(id));
            assert_eq!(
                stack.score_f(id, &opts).to_bits(),
                sequential.cached_f(id, &opts).to_bits()
            );
        }
        let via_stack = score_token_ids(&probe, &stack, &opts);
        let via_seq = score_token_ids(&probe, &sequential, &opts);
        assert_eq!(via_stack.score.to_bits(), via_seq.score.to_bits());
        assert_eq!(via_stack, via_seq);
    }

    /// Memoized and unmemoized stacks agree bit-for-bit, and a layer
    /// mutation invalidates the memo (stamps move).
    #[test]
    fn memo_agrees_and_invalidates_on_mutation() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let base = base_db(&interner);
        let mut user = OverlayLayer::new();
        let mail = interner.intern_set(&toks(&["cheap", "offer"]));
        user.train_ids(&mail, Label::Spam);

        let probe = interner.intern_set(&toks(&["cheap", "offer", "meeting"]));
        let memo = SyncMemo::new(interner.len());

        {
            let layers = [&user];
            let plain = StackView::new(&base, &layers);
            let memoized = StackView::with_memo(&base, &layers, &memo);
            for &id in &probe {
                let want = plain.score_f(id, &opts);
                assert_eq!(memoized.score_f(id, &opts).to_bits(), want.to_bits());
                // Second read served from the filled slot.
                assert_eq!(memoized.score_f(id, &opts).to_bits(), want.to_bits());
                let lns = memoized.score_lns(id, want);
                assert_eq!(lns, plain.score_lns(id, want));
            }
        }

        // Mutate the layer: stale slots must not serve.
        user.train_ids(&mail, Label::Spam);
        let layers = [&user];
        let plain = StackView::new(&base, &layers);
        let memoized = StackView::with_memo(&base, &layers, &memo);
        for &id in &probe {
            assert_eq!(
                memoized.score_f(id, &opts).to_bits(),
                plain.score_f(id, &opts).to_bits()
            );
        }
    }

    /// Untrain is exact and fail-closed: removing trained mail restores
    /// the previous state; removing anything else is a typed refusal that
    /// mutates nothing.
    #[test]
    fn untrain_is_exact_and_fail_closed() {
        let interner = Interner::new();
        let mail = interner.intern_set(&toks(&["a", "b"]));
        let other = interner.intern_set(&toks(&["c"]));

        let mut layer = OverlayLayer::new();
        layer.train_ids(&mail, Label::Spam);
        let snapshot = layer.clone();

        // Never-trained message: refused, untouched.
        let err = layer.untrain_ids(&other, Label::Spam).unwrap_err();
        assert_eq!(err.token, Some(other[0]));
        assert_eq!(layer.class_shift(), snapshot.class_shift());
        assert_eq!(layer.len(), snapshot.len());

        // Wrong label: the class total is empty.
        let err = layer.untrain_ids(&mail, Label::Ham).unwrap_err();
        assert_eq!(err.token, None);

        // Exact removal empties the layer.
        layer.untrain_ids(&mail, Label::Spam).unwrap();
        assert!(layer.is_empty());
        assert_eq!(layer.added(mail[0]), TokenCounts::default());
    }

    /// Ids beyond the memo's capacity are computed directly — correctness
    /// never depends on capacity.
    #[test]
    fn memo_capacity_is_only_a_performance_knob() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let base = base_db(&interner);
        let user = OverlayLayer::new();
        let layers = [&user];
        let memo = SyncMemo::new(1);
        let memoized = StackView::with_memo(&base, &layers, &memo);
        let plain = StackView::new(&base, &layers);
        for tok in ["cheap", "meeting", "brand-new"] {
            let id = interner.intern(tok);
            assert_eq!(
                memoized.score_f(id, &opts).to_bits(),
                plain.score_f(id, &opts).to_bits()
            );
        }
        let mut memo = memo;
        memo.ensure_capacity(interner.len());
        assert_eq!(memo.capacity(), interner.len());
    }

    /// A stack over an empty layer list is exactly the base.
    #[test]
    fn empty_stack_is_the_base() {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let base = base_db(&interner);
        let layers: [&OverlayLayer; 0] = [];
        let stack = StackView::new(&base, &layers);
        let id = interner.get("cheap").unwrap();
        assert_eq!(stack.n_spam(), base.n_spam());
        assert_eq!(stack.counts_by_id(id), base.counts_by_id(id));
        assert_eq!(
            stack.score_f(id, &opts).to_bits(),
            base.cached_f(id, &opts).to_bits()
        );
    }
}
