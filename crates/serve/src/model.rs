//! [`MmapDb`]: a read-only [`ScoreDb`] served straight from packed image
//! bytes.
//!
//! Where [`sb_filter::TokenDb`] owns a dense `Vec<TokenCounts>`, an
//! `MmapDb` *is* the image: every count lookup is two little-endian
//! `u32` reads at `HEADER_LEN + 8·id` into the (usually mapped) bytes.
//! The only materialized state is the serving [`Interner`] — built once
//! at load by interning the arena strings in row order, so that
//! **image row `i` ⇔ `TokenId(i)`** and ids can index the counts array
//! directly — and a score cache.
//!
//! The cache is the immutable-base degenerate case of `TokenDb`'s
//! generation-stamped slots: a base model never mutates, so a slot's
//! stamp is simply *filled / not filled* (stamp 0 = empty, 1 = filled,
//! `Release`-published after the value like the original). Scores are
//! pure in (counts, options), so racing fills are benign duplicates.
//!
//! `FilterOptions` are fixed at construction for the same reason
//! `TokenDb` invalidates on `set_options`: cached `f(w)` values bake the
//! options in. Serving a different configuration means opening another
//! `MmapDb` (cheap — the kernel shares the mapped pages).

use crate::mmap::ImageBytes;
use crate::ServeError;
use sb_filter::image::{ImageView, HEADER_LEN};
use sb_filter::score::token_score_from_counts;
use sb_filter::{ln_pair, FilterOptions, ScoreDb, TokenCounts, TokenDb};
use sb_intern::{Interner, TokenId};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a tenant overlay stacks on: any read-only source of per-id
/// counts and class totals sharing an [`Interner`].
///
/// Implementations must be **immutable while served** — `StackView`
/// memo slots and `MmapDb` cache slots are stamped once and trusted for
/// the base's lifetime, so a mutating base would serve stale scores.
/// The two implementations hold the invariant structurally: [`MmapDb`]
/// has no mutating API at all, and a [`TokenDb`] base is owned by an
/// `Arc` the registry never hands out mutably.
pub trait BaseModel: ScoreDb + Send + Sync {
    /// Counts for a token id (zero if unseen).
    fn base_counts(&self, id: TokenId) -> TokenCounts;

    /// `NS`: spam messages trained into the base.
    fn base_n_spam(&self) -> u32;

    /// `NH`: ham messages trained into the base.
    fn base_n_ham(&self) -> u32;
}

impl BaseModel for TokenDb {
    fn base_counts(&self, id: TokenId) -> TokenCounts {
        self.counts_by_id(id)
    }

    fn base_n_spam(&self) -> u32 {
        self.n_spam()
    }

    fn base_n_ham(&self) -> u32 {
        self.n_ham()
    }
}

/// One score-cache slot (see module docs; stamp 1 = filled).
#[derive(Default)]
struct Slot {
    stamp_f: AtomicU64,
    f: AtomicU64,
    stamp_ln: AtomicU64,
    ln_f: AtomicU64,
    ln_1mf: AtomicU64,
}

/// A packed model image served in place (see module docs).
pub struct MmapDb {
    bytes: ImageBytes,
    interner: Interner,
    opts: FilterOptions,
    n_spam: u32,
    n_ham: u32,
    n_tokens: usize,
    cache: Vec<Slot>,
}

impl std::fmt::Debug for MmapDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapDb")
            .field("bytes", &self.bytes)
            .field("n_spam", &self.n_spam)
            .field("n_ham", &self.n_ham)
            .field("n_tokens", &self.n_tokens)
            .finish()
    }
}

impl MmapDb {
    /// Map (or read) and validate a packed image file, building the
    /// serving interner.
    pub fn open(path: &Path, opts: FilterOptions) -> Result<Self, ServeError> {
        Self::from_bytes(ImageBytes::load(path)?, opts)
    }

    /// Serve an already-loaded image. Validates the full image
    /// ([`ImageView::parse`]) and interns the arena in row order on a
    /// **fresh** interner, establishing `row i ⇔ TokenId(i)`.
    pub fn from_bytes(bytes: ImageBytes, opts: FilterOptions) -> Result<Self, ServeError> {
        let view = ImageView::parse(&bytes)?;
        let interner = Interner::new();
        for i in 0..view.n_tokens() {
            let id = interner.intern(view.token(i));
            // A fresh interner hands out sequential ids and parse
            // guarantees strictly sorted (hence unique) rows, so this
            // only fires if one of those invariants breaks.
            if id.index() != i {
                return Err(ServeError::InternMismatch { row: i });
            }
        }
        let n_tokens = view.n_tokens();
        let (n_spam, n_ham) = (view.n_spam(), view.n_ham());
        let cache = (0..n_tokens).map(|_| Slot::default()).collect();
        Ok(Self {
            bytes,
            interner,
            opts,
            n_spam,
            n_ham,
            n_tokens,
            cache,
        })
    }

    /// The serving interner (`TokenId(i)` ⇔ image row `i`; tokens unseen
    /// by the base intern onward from `n_tokens`).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The options the cache was built for.
    pub fn options(&self) -> &FilterOptions {
        &self.opts
    }

    /// `NS`: spam messages in the packed model.
    pub fn n_spam(&self) -> u32 {
        self.n_spam
    }

    /// `NH`: ham messages in the packed model.
    pub fn n_ham(&self) -> u32 {
        self.n_ham
    }

    /// Distinct tokens in the packed model.
    pub fn n_tokens(&self) -> usize {
        self.n_tokens
    }

    /// Whether the image is served by a live mapping (vs. the owned
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Image size in bytes.
    pub fn image_len(&self) -> usize {
        self.bytes.len()
    }

    /// Counts for a token id: an offset read into the image. Ids at or
    /// beyond `n_tokens` (interned after load, or from another source)
    /// are unseen — zero counts, like `TokenDb`.
    #[inline]
    pub fn counts_by_id(&self, id: TokenId) -> TokenCounts {
        let i = id.index();
        if i >= self.n_tokens {
            return TokenCounts::default();
        }
        let bytes = self.bytes.as_slice();
        let off = HEADER_LEN + 8 * i;
        let mut spam = [0u8; 4];
        let mut ham = [0u8; 4];
        // sb-lint: allow(panic-path, "i < n_tokens was checked above, and parse proved HEADER_LEN + 8·n_tokens <= len")
        spam.copy_from_slice(&bytes[off..off + 4]);
        // sb-lint: allow(panic-path, "i < n_tokens was checked above, and parse proved HEADER_LEN + 8·n_tokens <= len")
        ham.copy_from_slice(&bytes[off + 4..off + 8]);
        TokenCounts {
            spam: u32::from_le_bytes(spam),
            ham: u32::from_le_bytes(ham),
        }
    }

    /// The cached `f(w)` (Eq. 2) of a token under the fixed options —
    /// lock-free, fill-once (the base is immutable; see module docs).
    #[inline]
    pub fn cached_f(&self, id: TokenId) -> f64 {
        let Some(slot) = self.cache.get(id.index()) else {
            // Unseen token: zero counts make Eq. 2 collapse to the prior
            // x, exactly as `token_score_from_counts` would compute.
            return self.opts.unknown_word_prob;
        };
        if slot.stamp_f.load(Ordering::Acquire) == 1 {
            return f64::from_bits(slot.f.load(Ordering::Relaxed));
        }
        let f = token_score_from_counts(self.n_spam, self.n_ham, self.counts_by_id(id), &self.opts);
        slot.f.store(f.to_bits(), Ordering::Relaxed);
        slot.stamp_f.store(1, Ordering::Release);
        f
    }

    /// The cached `(ln f, ln(1 − f))` pair (same fill-once discipline).
    #[inline]
    pub fn cached_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        let Some(slot) = self.cache.get(id.index()) else {
            return ln_pair(f);
        };
        if slot.stamp_ln.load(Ordering::Acquire) == 1 {
            return (
                f64::from_bits(slot.ln_f.load(Ordering::Relaxed)),
                f64::from_bits(slot.ln_1mf.load(Ordering::Relaxed)),
            );
        }
        let (ln_f, ln_1mf) = ln_pair(f);
        slot.ln_f.store(ln_f.to_bits(), Ordering::Relaxed);
        slot.ln_1mf.store(ln_1mf.to_bits(), Ordering::Relaxed);
        slot.stamp_ln.store(1, Ordering::Release);
        (ln_f, ln_1mf)
    }
}

impl ScoreDb for MmapDb {
    fn interner(&self) -> &Interner {
        MmapDb::interner(self)
    }

    fn score_f(&self, id: TokenId, opts: &FilterOptions) -> f64 {
        debug_assert!(
            *opts == self.opts,
            "MmapDb serves the options it was opened with"
        );
        let _ = opts;
        self.cached_f(id)
    }

    fn score_lns(&self, id: TokenId, f: f64) -> (f64, f64) {
        self.cached_lns(id, f)
    }
}

impl BaseModel for MmapDb {
    fn base_counts(&self, id: TokenId) -> TokenCounts {
        self.counts_by_id(id)
    }

    fn base_n_spam(&self) -> u32 {
        self.n_spam
    }

    fn base_n_ham(&self) -> u32 {
        self.n_ham
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_email::Label;
    use sb_filter::classify::score_token_ids;
    use sb_filter::image::pack;

    fn trained_db() -> TokenDb {
        let interner = Interner::new();
        let mut db = TokenDb::with_interner(interner);
        db.train(
            &["cheap".into(), "pills".into(), "now".into()],
            Label::Spam,
        );
        db.train(&["cheap".into(), "meeting".into()], Label::Ham);
        db.train(&["agenda".into(), "meeting".into()], Label::Ham);
        db
    }

    fn mmap_from(db: &TokenDb, opts: FilterOptions) -> MmapDb {
        MmapDb::from_bytes(ImageBytes::Owned(pack(db)), opts).unwrap()
    }

    #[test]
    fn counts_match_source_by_string() {
        let db = trained_db();
        let m = mmap_from(&db, FilterOptions::default());
        assert_eq!(m.n_spam(), db.n_spam());
        assert_eq!(m.n_ham(), db.n_ham());
        assert_eq!(m.n_tokens(), db.n_tokens());
        for (tok, c) in db.iter() {
            let id = m.interner().get(&tok).unwrap();
            assert_eq!(m.counts_by_id(id), c, "token {tok:?}");
        }
    }

    #[test]
    fn scores_are_bit_identical_to_source() {
        let opts = FilterOptions::default();
        let db = trained_db();
        let m = mmap_from(&db, opts);
        let probe = ["cheap", "pills", "meeting", "unseen-token"];
        // Resolve each interner's own ids for the same strings.
        let db_ids: Vec<TokenId> = probe.iter().map(|t| db.interner().intern(t)).collect();
        let m_ids: Vec<TokenId> = probe.iter().map(|t| m.interner().intern(t)).collect();
        let want = score_token_ids(&db_ids, &db, &opts);
        let got = score_token_ids(&m_ids, &m, &opts);
        assert_eq!(got.score.to_bits(), want.score.to_bits());
        assert_eq!(got.verdict, want.verdict);
        assert_eq!(got.n_clues, want.n_clues);
    }

    #[test]
    fn cached_and_uncached_scores_agree() {
        let opts = FilterOptions::default();
        let db = trained_db();
        let m = mmap_from(&db, opts);
        for (tok, _) in db.iter() {
            let id = m.interner().get(&tok).unwrap();
            let cold = token_score_from_counts(m.n_spam(), m.n_ham(), m.counts_by_id(id), &opts);
            assert_eq!(m.cached_f(id).to_bits(), cold.to_bits());
            // Second read comes from the cache.
            assert_eq!(m.cached_f(id).to_bits(), cold.to_bits());
        }
    }

    #[test]
    fn ids_beyond_image_are_unseen() {
        let db = trained_db();
        let opts = FilterOptions::default();
        let m = mmap_from(&db, opts);
        let fresh = m.interner().intern("brand-new-token");
        assert_eq!(m.counts_by_id(fresh), TokenCounts::default());
        assert_eq!(m.cached_f(fresh), opts.unknown_word_prob);
    }

    #[test]
    fn corrupt_bytes_surface_typed_errors() {
        let mut img = pack(&trained_db());
        let mid = img.len() / 2;
        img[mid] ^= 0x10;
        match MmapDb::from_bytes(ImageBytes::Owned(img), FilterOptions::default()) {
            Err(ServeError::Image(_)) => {}
            other => panic!("expected ServeError::Image, got {other:?}"),
        }
    }

    #[test]
    fn open_maps_a_real_file() {
        let db = trained_db();
        let path = std::env::temp_dir().join(format!("sb-serve-model-{}.img", std::process::id()));
        std::fs::write(&path, pack(&db)).unwrap();
        let m = MmapDb::open(&path, FilterOptions::default()).unwrap();
        assert_eq!(m.n_tokens(), db.n_tokens());
        drop(m);
        std::fs::remove_file(path).ok();
    }
}
