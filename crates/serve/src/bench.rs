//! `repro serve-bench`: the end-to-end serving benchmark and its
//! bit-identity audit.
//!
//! One run demonstrates the whole PR-10 architecture on one machine:
//!
//! 1. **Pack** — train a paper-scale base [`TokenDb`] from the synthetic
//!    TREC corpus and pack it to a model image on disk.
//! 2. **Load** — time the legacy text-dump parse against the `mmap`
//!    image load ([`MmapDb::open`]): the headline "one warm image, not a
//!    parse per process" number.
//! 3. **Serve** — register N tenants over the shared image (plus a
//!    frozen org patch, so every stack is 2 layers deep), train each
//!    tenant's private delta, and drive M-threaded
//!    `classify_ids_batch` probe traffic through every tenant.
//! 4. **Audit** — before timing, every tenant's verdicts over the probe
//!    set are compared bit-for-bit against a standalone `TokenDb`
//!    trained with the same mail (base → org patch → tenant delta,
//!    sequentially). A mismatch count other than zero fails the run.
//!
//! Telemetry (load times, aggregate messages/sec, the audit tally) is
//! appended as one JSON line to `BENCH_pr10.json`, same family as the
//! rig's `BENCH_pr9.json` lines. All wall-clock reads here are operator
//! telemetry — nothing feeds a verdict, a digest, or simulation state.

use crate::model::MmapDb;
use crate::registry::{TenantId, TenantRegistry};
use crate::tenant::OverlayLayer;
use crate::ServeError;
use sb_corpus::{CorpusConfig, TrecCorpus};
use sb_email::Label;
use sb_filter::classify::score_token_ids;
use sb_filter::{image, load_db, save_db, FilterOptions, TokenDb};
use sb_intern::{par, Interner, TokenId};
use sb_tokenizer::Tokenizer;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for one serve-bench run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Corpus / traffic seed (everything derives from it).
    pub seed: u64,
    /// Number of tenants registered over the shared image (≥ 1; the
    /// acceptance floor is 4).
    pub tenants: u32,
    /// Worker threads driving each tenant's probe batch.
    pub threads: usize,
    /// Messages trained into the shared base (paper-scale default
    /// 10,000 — the corpus size of the paper's dictionary experiments).
    pub base_messages: usize,
    /// Messages in the frozen org patch layer.
    pub org_messages: usize,
    /// Messages trained into each tenant's private delta.
    pub tenant_messages: usize,
    /// Probe messages classified per tenant (the same traffic for every
    /// tenant — org-wide vocabulary, per-tenant verdicts).
    pub probe_messages: usize,
    /// Directory the packed image (and nothing else) is written to.
    pub out: PathBuf,
    /// Telemetry sink (`None` = don't write).
    pub bench_path: Option<PathBuf>,
}

impl ServeBenchConfig {
    /// Paper-scale defaults at `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            tenants: 8,
            threads: par::default_threads(),
            base_messages: 10_000,
            org_messages: 32,
            tenant_messages: 40,
            probe_messages: 1_500,
            out: PathBuf::from("reports"),
            bench_path: Some(PathBuf::from("BENCH_pr10.json")),
        }
    }
}

/// What one serve-bench run measured.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Distinct tokens in the packed base.
    pub base_tokens: usize,
    /// Packed image size in bytes.
    pub image_bytes: usize,
    /// Whether the image was served by a live mapping.
    pub mapped: bool,
    /// Wall time of the legacy text-dump parse (`load_db`).
    pub text_load_ms: f64,
    /// Wall time of the image load (`MmapDb::open`, validation and
    /// serving-interner build included).
    pub image_load_ms: f64,
    /// Tenants served.
    pub tenants: u32,
    /// Worker threads per batch.
    pub threads: usize,
    /// Total probe messages classified in the timed pass.
    pub messages: usize,
    /// Wall time of the timed serving pass.
    pub serve_ms: f64,
    /// `messages / serve_ms`, scaled to per-second.
    pub msgs_per_sec: f64,
    /// Per-tenant verdicts compared against the standalone databases.
    pub verdicts_checked: usize,
    /// Bit-level disagreements (must be 0; non-zero fails the caller).
    pub mismatches: usize,
}

impl ServeBenchReport {
    /// The `BENCH_pr10.json` line (newline-terminated).
    pub fn json_line(&self, cfg: &ServeBenchConfig) -> String {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"bench\":\"serve\",\"seed\":{},\"tenants\":{},\"threads\":{},\
             \"base_messages\":{},\"base_tokens\":{},\"image_bytes\":{},\"mapped\":{},\
             \"text_load_ms\":{:.1},\"image_load_ms\":{:.1},\"load_speedup\":{:.1},\
             \"messages\":{},\"serve_ms\":{:.1},\"msgs_per_sec\":{:.1},\
             \"verdicts_checked\":{},\"mismatches\":{}}}",
            cfg.seed,
            self.tenants,
            self.threads,
            cfg.base_messages,
            self.base_tokens,
            self.image_bytes,
            self.mapped,
            self.text_load_ms,
            self.image_load_ms,
            if self.image_load_ms > 0.0 {
                self.text_load_ms / self.image_load_ms
            } else {
                0.0
            },
            self.messages,
            self.serve_ms,
            self.msgs_per_sec,
            self.verdicts_checked,
            self.mismatches
        );
        line.push('\n');
        line
    }
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1000.0
}

/// Tokenize an email and intern the set against `interner`.
fn intern_email(
    tokenizer: &Tokenizer,
    interner: &Interner,
    email: &sb_email::Email,
) -> Vec<TokenId> {
    interner.intern_set(&tokenizer.token_set(email))
}

/// Run the benchmark (see module docs). Bit-identity mismatches are
/// reported, not panicked on; I/O and image problems surface as typed
/// [`ServeError`]s.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> Result<ServeBenchReport, ServeError> {
    let opts = FilterOptions::default();
    let tokenizer = Tokenizer::new();

    // ---- pack: paper-scale base model --------------------------------
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(cfg.base_messages, 0.5), cfg.seed);
    let base_interner = Interner::new();
    let mut base_db = TokenDb::with_interner(base_interner.clone());
    for msg in corpus.emails() {
        base_db.train(&tokenizer.token_set(&msg.email), msg.label);
    }

    // ---- load: text parse vs image map -------------------------------
    let mut dump = Vec::new();
    save_db(&base_db, &mut dump).map_err(|e| match e {
        sb_filter::PersistError::Io(io) => ServeError::Io(io),
        other => ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    })?;
    // sb-lint: allow(wall-clock, "load-time telemetry for BENCH_pr10.json; never feeds verdicts or simulation state")
    let t0 = Instant::now();
    let reparsed = load_db(std::io::Cursor::new(dump)).map_err(|e| {
        ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            e.to_string(),
        ))
    })?;
    let text_load_ms = ms(t0);
    drop(reparsed);

    std::fs::create_dir_all(&cfg.out)?;
    let image_path = cfg.out.join("serve_base.img");
    let img = image::pack(&base_db);
    let image_bytes = img.len();
    std::fs::write(&image_path, &img)?;
    drop(img);

    // sb-lint: allow(wall-clock, "load-time telemetry for BENCH_pr10.json; never feeds verdicts or simulation state")
    let t0 = Instant::now();
    let mmap_db = MmapDb::open(&image_path, opts)?;
    let image_load_ms = ms(t0);
    let base_tokens = mmap_db.n_tokens();
    let mapped = mmap_db.is_mapped();
    let serve_interner = mmap_db.interner().clone();

    // ---- serve: org patch + per-tenant deltas over the shared image --
    // Fresh-mail counters partition deterministically: org patch takes
    // k ∈ [0, org), tenant t takes [1e6 + t·n, 1e6 + (t+1)·n), probes
    // take [2e6, 2e6 + probes) — disjoint by construction, keyed only on
    // logical ids (never threads), so reruns are bit-identical.
    let org_mail: Vec<sb_email::Email> = (0..cfg.org_messages as u64)
        .map(|k| corpus.fresh_ham(k))
        .collect();
    let mut org_patch = OverlayLayer::new();
    for email in &org_mail {
        org_patch.train_ids(&intern_email(&tokenizer, &serve_interner, email), Label::Ham);
    }
    let registry = TenantRegistry::with_org_patch(Arc::new(mmap_db), org_patch, opts);

    let tenant_mail: Vec<Vec<(sb_email::Email, Label)>> = (0..cfg.tenants)
        .map(|t| {
            (0..cfg.tenant_messages as u64)
                .map(|j| {
                    let k = 1_000_000 + u64::from(t) * cfg.tenant_messages as u64 + j;
                    // Odd tenants skew spammy, even tenants hammy, so the
                    // audit sees genuinely different per-tenant models.
                    if (j + u64::from(t)) % 3 == 0 {
                        (corpus.fresh_spam(k), Label::Spam)
                    } else {
                        (corpus.fresh_ham(k), Label::Ham)
                    }
                })
                .collect()
        })
        .collect();
    for (t, mail) in tenant_mail.iter().enumerate() {
        let id = TenantId(t as u32);
        registry.add_tenant(id)?;
        for (email, label) in mail {
            registry.train(id, &intern_email(&tokenizer, &serve_interner, email), *label)?;
        }
    }

    let probe_mail: Vec<sb_email::Email> = (0..cfg.probe_messages as u64)
        .map(|k| {
            if k % 2 == 0 {
                corpus.fresh_ham(2_000_000 + k)
            } else {
                corpus.fresh_spam(2_000_000 + k)
            }
        })
        .collect();
    let probe_ids: Vec<Vec<TokenId>> = probe_mail
        .iter()
        .map(|e| intern_email(&tokenizer, &serve_interner, e))
        .collect();

    // ---- audit: bit-identity vs standalone per-tenant TokenDbs -------
    let mut verdicts_checked = 0usize;
    let mut mismatches = 0usize;
    for (t, mail) in tenant_mail.iter().enumerate() {
        let mut standalone = base_db.clone();
        for email in &org_mail {
            standalone.train(&tokenizer.token_set(email), Label::Ham);
        }
        for (email, label) in mail {
            standalone.train(&tokenizer.token_set(email), *label);
        }
        let standalone_probe: Vec<Vec<TokenId>> = probe_mail
            .iter()
            .map(|e| intern_email(&tokenizer, &base_interner, e))
            .collect();
        let got = registry.classify_ids_batch_with_threads(
            TenantId(t as u32),
            &probe_ids,
            cfg.threads,
        )?;
        for (ids, scored) in standalone_probe.iter().zip(&got) {
            let want = score_token_ids(ids, &standalone, &opts);
            verdicts_checked += 1;
            if scored.score.to_bits() != want.score.to_bits() || scored.verdict != want.verdict {
                mismatches += 1;
            }
        }
    }

    // ---- throughput: the timed serving pass --------------------------
    // sb-lint: allow(wall-clock, "throughput telemetry for BENCH_pr10.json; never feeds verdicts or simulation state")
    let t0 = Instant::now();
    for t in 0..cfg.tenants {
        let _ = registry.classify_ids_batch_with_threads(TenantId(t), &probe_ids, cfg.threads)?;
    }
    let serve_ms = ms(t0);
    let messages = cfg.tenants as usize * probe_ids.len();
    let msgs_per_sec = if serve_ms > 0.0 {
        messages as f64 * 1000.0 / serve_ms
    } else {
        0.0
    };

    let report = ServeBenchReport {
        base_tokens,
        image_bytes,
        mapped,
        text_load_ms,
        image_load_ms,
        tenants: cfg.tenants,
        threads: cfg.threads,
        messages,
        serve_ms,
        msgs_per_sec,
        verdicts_checked,
        mismatches,
    };

    if let Some(bench) = &cfg.bench_path {
        use std::io::Write as _;
        let line = report.json_line(cfg);
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(bench)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("warning: could not append {}: {e}", bench.display());
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: 4 tenants over one packed image, zero
    /// bit-identity mismatches, sane telemetry. (CI-sized; the CLI runs
    /// the paper-scale defaults.)
    #[test]
    fn mini_serve_bench_round_trips() {
        let out = std::env::temp_dir().join(format!("sb-serve-bench-{}", std::process::id()));
        let cfg = ServeBenchConfig {
            tenants: 4,
            threads: 2,
            base_messages: 200,
            org_messages: 4,
            tenant_messages: 6,
            probe_messages: 40,
            out: out.clone(),
            bench_path: None,
            ..ServeBenchConfig::new(42)
        };
        let report = run_serve_bench(&cfg).unwrap();
        assert_eq!(report.mismatches, 0, "bit-identity audit failed");
        assert_eq!(report.verdicts_checked, 4 * 40);
        assert_eq!(report.messages, 4 * 40);
        assert!(report.base_tokens > 0);
        assert!(report.image_bytes > image::HEADER_LEN);
        let line = report.json_line(&cfg);
        assert!(line.starts_with("{\"bench\":\"serve\""));
        assert!(line.ends_with("}\n"));
        std::fs::remove_dir_all(out).ok();
    }
}
