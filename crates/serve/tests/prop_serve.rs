//! Property tests for the serving layer's bit-identity contract.
//!
//! Two halves (mirroring the crate docs): `pack → mmap-load → score`
//! equals scoring the source `TokenDb`, and a 2-deep overlay stack
//! (org patch over base under tenant delta) equals one `TokenDb` that
//! trained the same mail sequentially. Plus fail-closed corruption:
//! any byte flip or truncation of an image is a typed error, never a
//! panic, never a silently different model.

use proptest::prelude::*;
use sb_email::Label;
use sb_filter::classify::score_token_ids;
use sb_filter::{image, FilterOptions, TokenDb};
use sb_intern::{Interner, TokenId};
use sb_serve::{MmapDb, OverlayLayer, ServeError, TenantId, TenantRegistry};
use std::sync::Arc;

/// Small alphabet keeps token collisions (shared counts) likely.
fn token() -> impl Strategy<Value = String> {
    "[a-e]{3,5}"
}

fn token_set() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(token(), 0..8).prop_map(|s| s.into_iter().collect())
}

fn mail() -> impl Strategy<Value = Vec<(Vec<String>, bool)>> {
    proptest::collection::vec((token_set(), any::<bool>()), 0..8)
}

fn label(is_spam: bool) -> Label {
    if is_spam {
        Label::Spam
    } else {
        Label::Ham
    }
}

fn train_all(db: &mut TokenDb, mail: &[(Vec<String>, bool)]) {
    for (set, is_spam) in mail {
        db.train(set, label(*is_spam));
    }
}

fn intern(interner: &Interner, set: &[String]) -> Vec<TokenId> {
    interner.intern_set(set)
}

/// Write `bytes` to a unique temp file, run `f`, clean up.
fn with_temp_image<R>(tag: &str, bytes: &[u8], f: impl FnOnce(&std::path::Path) -> R) -> R {
    let path = std::env::temp_dir().join(format!(
        "sb-prop-serve-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, bytes).unwrap();
    let r = f(&path);
    std::fs::remove_file(&path).ok();
    r
}

proptest! {
    /// pack → mmap-load → score is bit-identical to the source TokenDb,
    /// across interners (the image rebuilds its own dense interner).
    #[test]
    fn pack_mmap_load_score_bit_identity(
        base in mail(),
        probes in proptest::collection::vec(token_set(), 1..6),
    ) {
        let opts = FilterOptions::default();
        let mut db = TokenDb::new();
        train_all(&mut db, &base);
        let img = image::pack(&db);
        let served = with_temp_image("identity", &img, |path| {
            MmapDb::open(path, opts)
        }).unwrap();
        prop_assert_eq!(served.n_tokens(), db.n_tokens());
        for probe in &probes {
            let want = score_token_ids(&intern(db.interner(), probe), &db, &opts);
            let got = score_token_ids(&intern(served.interner(), probe), &served, &opts);
            prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            prop_assert_eq!(got.verdict, want.verdict);
        }
    }

    /// Any single-byte flip or truncation fails closed with a typed
    /// error — no panic, and never a quietly different model.
    #[test]
    fn corrupted_images_yield_typed_errors(
        base in mail(),
        seed in any::<u64>(),
        truncate in any::<bool>(),
    ) {
        let opts = FilterOptions::default();
        let mut db = TokenDb::new();
        train_all(&mut db, &base);
        let img = image::pack(&db);
        let corrupted = if truncate {
            // Drop at least one byte (an empty file is also covered).
            img[..(seed as usize) % img.len()].to_vec()
        } else {
            let mut c = img.clone();
            let i = (seed as usize) % c.len();
            c[i] ^= 1 + (seed >> 32) as u8 % 255;
            c
        };
        let res = with_temp_image("corrupt", &corrupted, |path| {
            MmapDb::open(path, opts)
        });
        match res {
            Err(ServeError::Image(_)) => {}
            Err(other) => prop_assert!(false, "expected ImageError, got {other}"),
            Ok(_) => prop_assert!(false, "corrupted image parsed successfully"),
        }
    }

    /// A 2-deep overlay stack (frozen org patch + mutable tenant delta)
    /// over a shared base serves verdicts bit-identical to a standalone
    /// TokenDb — with its own interner — that trained base mail, then
    /// org mail, then the tenant's mail, sequentially. Repeat classify
    /// exercises the memo; its bits must not move either.
    #[test]
    fn two_deep_stack_equals_sequential_training(
        base in mail(),
        org in proptest::collection::vec(token_set(), 0..4),
        tenants in proptest::collection::vec(mail(), 1..3),
        probes in proptest::collection::vec(token_set(), 1..5),
    ) {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let mut shared = TokenDb::with_interner(interner.clone());
        train_all(&mut shared, &base);
        let mut org_patch = OverlayLayer::new();
        for set in &org {
            org_patch.train_ids(&intern(&interner, set), Label::Ham);
        }
        let registry =
            TenantRegistry::with_org_patch(Arc::new(shared), org_patch, opts);
        for (t, mail) in tenants.iter().enumerate() {
            let id = TenantId(t as u32);
            registry.add_tenant(id).unwrap();
            for (set, is_spam) in mail {
                registry.train(id, &intern(&interner, set), label(*is_spam)).unwrap();
            }
        }
        for (t, mail) in tenants.iter().enumerate() {
            let mut standalone = TokenDb::new();
            train_all(&mut standalone, &base);
            for set in &org {
                standalone.train(set, Label::Ham);
            }
            train_all(&mut standalone, mail);
            for probe in &probes {
                let want =
                    score_token_ids(&intern(standalone.interner(), probe), &standalone, &opts);
                let ids = intern(&interner, probe);
                let cold = registry.classify_ids(TenantId(t as u32), &ids).unwrap();
                let warm = registry.classify_ids(TenantId(t as u32), &ids).unwrap();
                prop_assert_eq!(cold.score.to_bits(), want.score.to_bits());
                prop_assert_eq!(cold.verdict, want.verdict);
                prop_assert_eq!(warm.score.to_bits(), want.score.to_bits());
                prop_assert_eq!(warm.verdict, want.verdict);
            }
        }
    }

    /// Tenant untrain is exact: training a message into a delta and
    /// untraining it restores every probe verdict bit.
    #[test]
    fn tenant_untrain_restores_verdict_bits(
        base in mail(),
        extra in token_set(),
        extra_spam in any::<bool>(),
        probes in proptest::collection::vec(token_set(), 1..5),
    ) {
        let opts = FilterOptions::default();
        let interner = Interner::new();
        let mut shared = TokenDb::with_interner(interner.clone());
        train_all(&mut shared, &base);
        let registry = TenantRegistry::new(Arc::new(shared), opts);
        let id = TenantId(7);
        registry.add_tenant(id).unwrap();
        let probe_ids: Vec<Vec<TokenId>> =
            probes.iter().map(|p| intern(&interner, p)).collect();
        let before: Vec<_> = probe_ids
            .iter()
            .map(|ids| registry.classify_ids(id, ids).unwrap())
            .collect();
        let extra_ids = intern(&interner, &extra);
        registry.train(id, &extra_ids, label(extra_spam)).unwrap();
        registry.untrain(id, &extra_ids, label(extra_spam)).unwrap();
        for (ids, want) in probe_ids.iter().zip(&before) {
            let got = registry.classify_ids(id, ids).unwrap();
            prop_assert_eq!(got.score.to_bits(), want.score.to_bits());
            prop_assert_eq!(got.verdict, want.verdict);
        }
        // A second identical untrain must fail typed (never trained).
        if !extra_ids.is_empty() {
            prop_assert!(matches!(
                registry.untrain(id, &extra_ids, label(extra_spam)),
                Err(ServeError::Underflow { tenant: 7 })
            ));
        }
    }
}
