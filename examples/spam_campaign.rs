//! Indiscriminate campaign: sweep the dictionary attack's contamination
//! level and watch the filter degrade (the paper's Figure 1 mechanism),
//! then put RONI in front of training and watch it recover.
//!
//! ```text
//! cargo run --release --example spam_campaign [--dict usenet|aspell|optimal]
//! ```

use spambayes_repro::core::{
    attack_count_for_fraction, AttackGenerator, DictionaryAttack, DictionaryKind, RoniConfig,
    RoniDefense,
};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::experiments::Confusion;
use spambayes_repro::filter::{FilterOptions, SpamBayes};
use spambayes_repro::stats::rng::Xoshiro256pp;
use spambayes_repro::email::Label;

const INBOX: usize = 2_000;

fn main() {
    let kind = match std::env::args().nth(2).as_deref() {
        Some("aspell") => DictionaryKind::Aspell,
        Some("optimal") => DictionaryKind::Optimal,
        _ => DictionaryKind::UsenetTop(90_000),
    };
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(INBOX, 0.5), 31337);
    let attack = DictionaryAttack::new(kind);
    println!(
        "campaign: {} attack against a {INBOX}-message inbox\n",
        attack.name()
    );

    // Fresh evaluation traffic, disjoint from training.
    let eval: Vec<(spambayes_repro::email::Email, Label)> = (0..150)
        .map(|k| (corpus.fresh_ham(k), Label::Ham))
        .chain((0..150).map(|k| (corpus.fresh_spam(k), Label::Spam)))
        .collect();

    let mut base = SpamBayes::new();
    for msg in corpus.emails() {
        base.train(&msg.email, msg.label);
    }

    println!("{:<10} {:>10} {:>14} {:>16}", "fraction", "attacks", "ham lost %", "ham-as-spam %");
    let mut rng = Xoshiro256pp::new(1);
    for frac in [0.0, 0.001, 0.005, 0.01, 0.05, 0.10] {
        let n = attack_count_for_fraction(INBOX, frac);
        let mut filter = base.clone();
        for (tokens, count) in attack.generate(n, &mut rng).token_groups(filter.tokenizer()) {
            filter.train_tokens(&tokens, Label::Spam, count);
        }
        let mut conf = Confusion::new();
        for (email, label) in &eval {
            conf.record(*label, filter.verdict(email));
        }
        println!(
            "{:<10.3} {:>10} {:>14.1} {:>16.1}",
            frac,
            n,
            conf.ham_misclassified() * 100.0,
            conf.ham_as_spam() * 100.0
        );
    }

    // Now the same campaign, but every incoming message is screened by
    // RONI before being admitted to training.
    println!("\nwith RONI screening (threshold {}):", RoniConfig::default().reject_threshold);
    let roni = RoniDefense::new(
        RoniConfig::default(),
        corpus.dataset(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(2),
    );
    let attack_tokens = base.tokenizer().token_set(attack.prototype());
    let m = roni.measure(&attack_tokens);
    println!(
        "  attack email impact: {:.1} ham lost per 25 -> rejected: {}",
        m.mean_ham_impact, m.rejected
    );
    if m.rejected {
        // Nothing reaches training; the filter stays at its baseline.
        let mut conf = Confusion::new();
        for (email, label) in &eval {
            conf.record(*label, base.verdict(email));
        }
        println!(
            "  filter under RONI keeps baseline quality: {:.1}% ham lost, {:.1}% spam caught",
            conf.ham_misclassified() * 100.0,
            conf.spam_correct() * 100.0
        );
    }
}
