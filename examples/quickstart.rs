//! Quickstart: train a SpamBayes filter on a synthetic inbox, poison it
//! with a dictionary attack, watch it break, and repair it with RONI.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spambayes_repro::core::{
    AttackGenerator, DictionaryAttack, DictionaryKind, RoniConfig, RoniDefense,
};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::filter::{FilterOptions, SpamBayes, Verdict};
use spambayes_repro::stats::rng::Xoshiro256pp;
use spambayes_repro::email::Label;

fn main() {
    // 1. A 600-message inbox at 50% spam, deterministic from a seed.
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(600, 0.5), 42);
    println!(
        "corpus: {} messages ({} ham / {} spam)",
        corpus.dataset().len(),
        corpus.dataset().n_ham(),
        corpus.dataset().n_spam()
    );

    // 2. Train the filter.
    let mut filter = SpamBayes::new();
    for msg in corpus.emails() {
        filter.train(&msg.email, msg.label);
    }

    // 3. It works: fresh ham is delivered, fresh spam is filtered.
    let fresh_ham = corpus.fresh_ham(0);
    let fresh_spam = corpus.fresh_spam(0);
    println!("fresh ham   -> {}", filter.classify(&fresh_ham).verdict);
    println!("fresh spam  -> {}", filter.classify(&fresh_spam).verdict);
    assert_eq!(filter.verdict(&fresh_ham), Verdict::Ham);

    // 4. The attacker sends 6 dictionary-attack emails (1% of the inbox),
    //    which the victim dutifully trains as spam.
    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
    let batch = attack.generate(6, &mut Xoshiro256pp::new(7));
    println!(
        "\ninjecting {} attack emails ({} tokens each)...",
        batch.len(),
        attack.lexicon_len()
    );
    let mut poisoned = filter.clone();
    for (tokens, n) in batch.token_groups(poisoned.tokenizer()) {
        poisoned.train_tokens(&tokens, Label::Spam, n);
    }

    // 5. The same fresh ham is now lost.
    let verdict = poisoned.classify(&fresh_ham);
    println!(
        "fresh ham   -> {} (score {:.3}) — the filter is broken",
        verdict.verdict, verdict.score
    );
    assert_ne!(verdict.verdict, Verdict::Ham);

    // 6. RONI to the rescue: screen candidates before training.
    let roni = RoniDefense::new(
        RoniConfig::default(),
        corpus.dataset(),
        FilterOptions::default(),
        &mut Xoshiro256pp::new(8),
    );
    let attack_tokens = poisoned.tokenizer().token_set(attack.prototype());
    let normal_spam_tokens = poisoned.tokenizer().token_set(&fresh_spam);
    let m_attack = roni.measure(&attack_tokens);
    let m_normal = roni.measure(&normal_spam_tokens);
    println!(
        "\nRONI impact: attack email {:.1} ham lost (rejected: {}), \
         ordinary spam {:.1} (rejected: {})",
        m_attack.mean_ham_impact, m_attack.rejected, m_normal.mean_ham_impact, m_normal.rejected
    );
    assert!(m_attack.rejected);
    assert!(!m_normal.rejected);
    println!("RONI keeps the attack out of the training set. Filter survives.");
}
