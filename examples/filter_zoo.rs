//! Filter zoo: does the paper's attack transfer beyond SpamBayes?
//!
//! §7 claims the attacks "should also apply to other spam filtering
//! systems based on similar learning algorithms, such as BogoFilter and
//! the Bayesian component of SpamAssassin", while §1 notes SpamAssassin
//! "uses the learner only as one component of a broader filtering
//! strategy". This example trains six filters on the same inbox, runs the
//! same Usenet dictionary attack against all of them, and prints who
//! survives.
//!
//! ```text
//! cargo run --release --example filter_zoo
//! ```

use spambayes_repro::core::{attack_count_for_fraction, AttackGenerator, DictionaryAttack, DictionaryKind};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::email::Label;
use spambayes_repro::filter::{SpamBayes, Verdict};
use spambayes_repro::stats::rng::Xoshiro256pp;
use spambayes_repro::variants::{
    BogoFilter, GrahamFilter, MultinomialNb, SaBayes, SaFull, StatFilter,
};

fn zoo() -> Vec<Box<dyn StatFilter>> {
    vec![
        Box::new(SpamBayes::new()),
        Box::new(GrahamFilter::new()),
        Box::new(BogoFilter::new()),
        Box::new(SaBayes::new()),
        Box::new(SaFull::new()),
        Box::new(MultinomialNb::new()),
    ]
}

fn main() {
    // One inbox, one attack, six filters.
    let train_size = 1_000;
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(train_size + 200, 0.5), 77);
    let (train, test) = corpus.emails().split_at(train_size);

    let attack = DictionaryAttack::new(DictionaryKind::UsenetTop(25_000));
    let n_attack = attack_count_for_fraction(train_size, 0.05);
    let batch = attack.generate(n_attack, &mut Xoshiro256pp::new(9));
    let (proto, copies) = &batch.groups()[0];

    println!(
        "== {} training messages, {}-word Usenet attack x{} (5% of training) ==\n",
        train_size,
        attack.lexicon_len(),
        copies
    );
    println!(
        "{:<12} | {:>10} | {:>10} | {:>12} | verdict on clean ham",
        "filter", "ham lost", "ham->spam", "spam caught"
    );
    println!("{}", "-".repeat(70));

    for mut filter in zoo() {
        for msg in train {
            filter.train(&msg.email, msg.label);
        }
        filter.train_many(proto, Label::Spam, *copies);

        let (mut ham_lost, mut ham_spam, mut n_ham) = (0, 0, 0);
        let (mut spam_ok, mut n_spam) = (0, 0);
        for msg in test {
            let v = filter.classify(&msg.email).verdict;
            match msg.label {
                Label::Ham => {
                    n_ham += 1;
                    if v != Verdict::Ham {
                        ham_lost += 1;
                    }
                    if v == Verdict::Spam {
                        ham_spam += 1;
                    }
                }
                Label::Spam => {
                    n_spam += 1;
                    if v == Verdict::Spam {
                        spam_ok += 1;
                    }
                }
            }
        }
        let fresh = corpus.fresh_ham(0);
        println!(
            "{:<12} | {:>9.1}% | {:>9.1}% | {:>11.1}% | {}",
            filter.name(),
            100.0 * ham_lost as f64 / n_ham as f64,
            100.0 * ham_spam as f64 / n_ham as f64,
            100.0 * spam_ok as f64 / n_spam as f64,
            filter.classify(&fresh).verdict,
        );
    }

    println!(
        "\nEvery pure statistical learner loses ham to the poisoned vocabulary;\n\
         sa-full survives because its static rules are invariant to training\n\
         contamination and bound the Bayes component to 3.7 of 5.0 points."
    );
}
