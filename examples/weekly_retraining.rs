//! Weekly retraining: the paper's §2.1 deployment story, end to end over
//! the SMTP-lite substrate.
//!
//! An organization of five users filters everything through one shared
//! SpamBayes instance and retrains it every Sunday on the week's mail.
//! A spammer runs a Usenet dictionary campaign against it. We run the
//! same four weeks three times — undefended, RONI-screened, and with the
//! dynamic threshold — and print the week-by-week damage.
//!
//! ```text
//! cargo run --release --example weekly_retraining
//! ```

use spambayes_repro::core::{DictionaryAttack, DictionaryKind};
use spambayes_repro::corpus::CorpusConfig;
use spambayes_repro::mailflow::{
    AttackPlan, DefensePolicy, FaultConfig, MailOrg, OrgConfig, OrgReport, TrafficMix,
};

fn org(defense: DefensePolicy, attack: bool, seed: u64) -> OrgConfig {
    OrgConfig {
        users: (0..5).map(|i| format!("user{i}@corp.example")).collect(),
        days: 28,
        retrain_every: 7,
        traffic: TrafficMix {
            ham_per_day: 20,
            spam_per_day: 20,
        },
        // A slightly lossy wire: the SMTP client's retransmissions cope.
        faults: FaultConfig {
            drop_chance: 0.01,
            corrupt_chance: 0.01,
        },
        user_traffic: Vec::new(),
        defense,
        bootstrap_size: 300,
        corpus: CorpusConfig::with_size(300, 0.5),
        attacks: attack
            .then(|| {
                AttackPlan::new(
                    3,
                    8,
                    Box::new(DictionaryAttack::new(DictionaryKind::UsenetTop(5_000))),
                )
            })
            .into_iter()
            .collect(),
        // One shard per available worker (SB_THREADS honored): the weekly
        // numbers are bit-identical to a single-shard run, just faster.
        shards: 0,
        fault_plan: spambayes_repro::mailflow::FaultPlan::default(),
        seed,
    }
}

fn show(label: &str, report: &OrgReport) {
    println!("\n--- {label} ---");
    println!("week | ham misrouted | ham->spam | spam caught | screened | usable?");
    for w in &report.weeks {
        println!(
            "  {}  |     {:5.1}%    |   {:5.1}%  |    {:5.1}%   |   {:4}   | {}",
            w.week,
            w.ham_misrouted * 100.0,
            w.ham_as_spam * 100.0,
            w.spam_caught * 100.0,
            w.screened_out,
            if w.filter_useless { "NO" } else { "yes" }
        );
    }
    println!(
        "delivered {} messages, {} failed on the wire ({} dropped / {} corrupted chunks)",
        report.total_delivered,
        report.total_failed,
        report.fault_stats.dropped,
        report.fault_stats.corrupted
    );
}

fn main() {
    let seed = 2008;

    println!("== four weeks at corp.example: one filter, weekly retraining ==");

    let clean = MailOrg::new(org(DefensePolicy::None, false, seed)).run();
    show("no attack (baseline)", &clean);

    let hit = MailOrg::new(org(DefensePolicy::None, true, seed)).run();
    show("dictionary campaign, no defense", &hit);

    let roni = MailOrg::new(org(DefensePolicy::Roni, true, seed)).run();
    show("dictionary campaign, RONI screening at retrain", &roni);

    let thr = MailOrg::new(org(DefensePolicy::DynamicThreshold { strict: false }, true, seed)).run();
    show("dictionary campaign, dynamic thresholds at retrain", &thr);

    // The shape the paper predicts, asserted.
    assert!(
        hit.weeks[1].ham_misrouted > clean.weeks[1].ham_misrouted + 0.2,
        "attack failed to detonate at the first retrain"
    );
    assert!(
        roni.worst_week_ham_misrouted() < hit.worst_week_ham_misrouted() / 2.0,
        "RONI failed to protect the org"
    );
    println!(
        "\nsummary: worst-week ham misrouted — baseline {:.1}%, undefended {:.1}%, \
         RONI {:.1}%, threshold {:.1}%",
        clean.worst_week_ham_misrouted() * 100.0,
        hit.worst_week_ham_misrouted() * 100.0,
        roni.worst_week_ham_misrouted() * 100.0,
        thr.worst_week_ham_misrouted() * 100.0,
    );
    println!("the attack detonates at the retrain boundary; RONI defuses it.");
}
