//! Contract sniping: the paper's motivating story for the focused attack
//! (§3.3). A malicious contractor knows roughly what a competitor's bid
//! email will say, and poisons the victim's spam filter so the bid never
//! arrives.
//!
//! ```text
//! cargo run --release --example contract_sniping [guess_prob]
//! ```

use spambayes_repro::core::{AttackGenerator, FocusedAttack};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::filter::SpamBayes;
use spambayes_repro::stats::rng::Xoshiro256pp;
use spambayes_repro::email::{Email, Label};

fn main() {
    let guess_prob: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("guess_prob must be a float in [0,1]"))
        .unwrap_or(0.5);

    // The victim: a procurement office with a trained filter.
    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(2_000, 0.5), 2008);
    let mut filter = SpamBayes::new();
    for msg in corpus.emails() {
        filter.train(&msg.email, msg.label);
    }

    // The bid email the victim is about to receive (the attacker has seen
    // the template: company names, product names, employee names…).
    let bid: Email = corpus.fresh_ham(17);
    println!("target bid email: {:?}", bid.subject().unwrap_or("<none>"));
    let before = filter.classify(&bid);
    println!(
        "before attack: {} (score {:.3})",
        before.verdict, before.score
    );

    // The attacker guesses each word of the bid with probability p and
    // sends 120 attack emails (6% of the 2,000-message inbox), headers
    // cloned from a real spam so they blend in (§4.1).
    let donor = corpus.fresh_spam(3);
    let attack = FocusedAttack::new(&bid, guess_prob, Some(donor));
    let mut rng = Xoshiro256pp::new(99);
    let batch = attack.generate(120, &mut rng);
    println!(
        "\nattacker guesses {:.0}% of the bid's {} tokens; sends {} attack emails",
        guess_prob * 100.0,
        attack.target_tokens().len(),
        batch.len()
    );
    for (tokens, n) in batch.token_groups(filter.tokenizer()) {
        filter.train_tokens(&tokens, Label::Spam, n);
    }

    // The bid arrives.
    let (after, clues) = filter.classify_with_clues(&bid);
    println!(
        "after attack:  {} (score {:.3})",
        after.verdict, after.score
    );

    // Show the most-shifted evidence, like the paper's Figure 4.
    println!("\nstrongest evidence against the bid now:");
    for clue in clues.iter().filter(|c| c.score > 0.9).take(8) {
        println!("  {:<20} f(w) = {:.3}", clue.token, clue.score);
    }
    match after.verdict {
        spambayes_repro::filter::Verdict::Ham => {
            println!("\nthe bid survived — try a higher guess probability")
        }
        v => println!("\nthe bid is classified {v}: the victim never sees it"),
    }
}
