//! Defense shootout: no-defense vs RONI vs dynamic thresholds, against both
//! of the paper's attacks — including the paper's key negative results
//! (RONI cannot see the focused attack, §5.1; the dynamic threshold dumps
//! spam into unsure, §5.2).
//!
//! Includes a label-noise fault-injection knob: real training data has
//! mislabeled messages, and a defense that only works on pristine labels is
//! not much of a defense.
//!
//! ```text
//! cargo run --release --example defense_shootout [label_noise in 0..0.2]
//! ```

use spambayes_repro::core::{
    attack_count_for_fraction, calibrate, AttackGenerator, DictionaryAttack, DictionaryKind,
    FocusedAttack, RoniConfig, RoniDefense, ThresholdConfig, TrainItem,
};
use spambayes_repro::corpus::{CorpusConfig, TrecCorpus};
use spambayes_repro::experiments::Confusion;
use spambayes_repro::filter::{FilterOptions, SpamBayes, Verdict};
use spambayes_repro::stats::rng::Xoshiro256pp;
use rand::Rng;
use spambayes_repro::email::Label;
use std::sync::Arc;

const INBOX: usize = 2_000;
const ATTACK_FRACTION: f64 = 0.05;

fn main() {
    let label_noise: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>().expect("label_noise must be a float"))
        .unwrap_or(0.0)
        .clamp(0.0, 0.2);

    let corpus = TrecCorpus::generate(&CorpusConfig::with_size(INBOX, 0.5), 777);
    let mut rng = Xoshiro256pp::new(3);

    // Optionally flip some training labels (fault injection).
    let mut items: Vec<TrainItem> = Vec::new();
    let tokenizer = spambayes_repro::tokenizer::Tokenizer::new();
    for msg in corpus.emails() {
        let mut label = msg.label;
        if label_noise > 0.0 && rng.random::<f64>() < label_noise {
            label = label.flip();
        }
        items.push(TrainItem::new(tokenizer.token_set(&msg.email), label));
    }
    if label_noise > 0.0 {
        println!("label noise: {:.0}% of training labels flipped\n", label_noise * 100.0);
    }

    // The two attacks.
    let dict = DictionaryAttack::new(DictionaryKind::UsenetTop(90_000));
    let n_attack = attack_count_for_fraction(INBOX, ATTACK_FRACTION);
    let dict_tokens = Arc::new(tokenizer.token_set(dict.prototype()));

    let target = corpus.fresh_ham(5);
    let target_tokens = tokenizer.token_set(&target);
    let focused = FocusedAttack::new(&target, 0.5, Some(corpus.fresh_spam(5)));
    let focused_batch = focused.generate(n_attack, &mut rng);
    let (focused_tokens, _) = focused_batch.token_groups(&tokenizer).remove(0);
    let focused_tokens = Arc::new(focused_tokens);

    // Fresh evaluation traffic.
    let eval: Vec<(Vec<String>, Label)> = (10..110)
        .map(|k| (tokenizer.token_set(&corpus.fresh_ham(k)), Label::Ham))
        .chain((10..110).map(|k| (tokenizer.token_set(&corpus.fresh_spam(k)), Label::Spam)))
        .collect();

    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>16}",
        "defense x attack", "ham lost %", "spam unsure %", "spam caught %", "target verdict"
    );

    for (attack_name, attack_tokens) in
        [("dictionary", &dict_tokens), ("focused", &focused_tokens)]
    {
        // --- no defense ------------------------------------------------
        let mut plain = SpamBayes::new();
        for it in &items {
            plain.train_ids(&it.ids, it.label, 1);
        }
        plain.train_tokens(attack_tokens, Label::Spam, n_attack);
        report(&format!("no-defense x {attack_name}"), &plain, &eval, &target_tokens);

        // --- RONI ------------------------------------------------------
        let roni = RoniDefense::new(
            RoniConfig::default(),
            corpus.dataset(),
            FilterOptions::default(),
            &mut Xoshiro256pp::new(4),
        );
        let measurement = roni.measure(attack_tokens);
        let mut defended = SpamBayes::new();
        for it in &items {
            defended.train_ids(&it.ids, it.label, 1);
        }
        if !measurement.rejected {
            // RONI let the attack through (the paper's §5.1 negative result
            // for the focused attack).
            defended.train_tokens(attack_tokens, Label::Spam, n_attack);
        }
        report(
            &format!(
                "roni({}) x {attack_name}",
                if measurement.rejected { "rejects" } else { "misses" }
            ),
            &defended,
            &eval,
            &target_tokens,
        );

        // --- dynamic threshold ------------------------------------------
        let mut contaminated = items.clone();
        // One shared Arc for all copies: calibrate() groups identical
        // attack emails by pointer to train them via one multiplicity pass.
        let attack_ids = Arc::new(sb_filter::Interner::global().intern_set(attack_tokens));
        for _ in 0..n_attack {
            contaminated.push(TrainItem::from_ids(Arc::clone(&attack_ids), Label::Spam));
        }
        let cal = calibrate(
            &contaminated,
            ThresholdConfig::loose(),
            FilterOptions::default(),
            &mut Xoshiro256pp::new(5),
        );
        let mut conf = Confusion::new();
        for (tokens, label) in &eval {
            conf.record(*label, cal.classify_tokens(tokens).verdict);
        }
        let tv = cal.classify_tokens(&target_tokens).verdict;
        print_row(
            &format!("threshold-.10 x {attack_name}"),
            &conf,
            tv,
        );
    }

    println!(
        "\nthe paper's findings hold: RONI stops the dictionary attack cold but cannot\n\
         see the focused attack; the dynamic threshold saves ham at the cost of\n\
         pushing spam into the unsure folder."
    );
}

fn report(name: &str, filter: &SpamBayes, eval: &[(Vec<String>, Label)], target: &[String]) {
    let mut conf = Confusion::new();
    for (tokens, label) in eval {
        conf.record(*label, filter.classify_tokens(tokens).verdict);
    }
    print_row(name, &conf, filter.classify_tokens(target).verdict);
}

fn print_row(name: &str, conf: &Confusion, target_verdict: Verdict) {
    println!(
        "{:<22} {:>12.1} {:>12.1} {:>14.1} {:>16}",
        name,
        conf.ham_misclassified() * 100.0,
        conf.spam_as_unsure() * 100.0,
        conf.spam_correct() * 100.0,
        target_verdict.to_string()
    );
}
